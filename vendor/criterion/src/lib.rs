//! Offline stand-in for `criterion`.
//!
//! A minimal wall-clock benchmarking harness exposing the same names the
//! workspace's benches use (`Criterion`, `benchmark_group`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `Throughput`,
//! `criterion_group!`, `criterion_main!`). Reports median ns/iter (and
//! derived throughput) to stdout; no statistical analysis, plots, or
//! baseline storage.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

pub struct Bencher {
    /// Median nanoseconds per iteration, filled by `iter`.
    ns_per_iter: f64,
    sample_size: usize,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up and per-iteration cost estimate.
        let warmup_start = Instant::now();
        let mut warmup_iters = 0u64;
        while warmup_start.elapsed() < Duration::from_millis(120) {
            black_box(routine());
            warmup_iters += 1;
        }
        let est_ns = (warmup_start.elapsed().as_nanos() as f64 / warmup_iters as f64).max(1.0);
        // Aim for ~25ms per sample, at least one iteration.
        let iters_per_sample = ((25_000_000.0 / est_ns) as u64).clamp(1, 10_000_000);

        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            samples.push(start.elapsed().as_nanos() as f64 / iters_per_sample as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        self.ns_per_iter = samples[samples.len() / 2];
    }

    /// Real-criterion-style custom timing: the routine receives an
    /// iteration count and returns the measured duration for that many
    /// iterations (letting the bench exclude setup from the clock).
    pub fn iter_custom<F: FnMut(u64) -> Duration>(&mut self, mut routine: F) {
        // Warm-up batch doubles as the per-iteration cost estimate.
        let est_ns = (routine(1).as_nanos() as f64).max(1.0);
        // Aim for ~25ms per sample, at least one iteration.
        let iters_per_sample = ((25_000_000.0 / est_ns) as u64).clamp(1, 10_000_000);

        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let elapsed = routine(iters_per_sample);
            samples.push(elapsed.as_nanos() as f64 / iters_per_sample as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        self.ns_per_iter = samples[samples.len() / 2];
    }
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    group_name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    fn run_one(&mut self, name: &str, f: impl FnOnce(&mut Bencher)) {
        let mut b = Bencher {
            ns_per_iter: 0.0,
            sample_size: self.sample_size,
        };
        f(&mut b);
        let full = format!("{}/{}", self.group_name, name);
        let mut line = format!("{full:<48} {:>14.1} ns/iter", b.ns_per_iter);
        if let Some(t) = self.throughput {
            let (count, unit) = match t {
                Throughput::Elements(n) => (n as f64, "elem/s"),
                Throughput::Bytes(n) => (n as f64, "B/s"),
            };
            if b.ns_per_iter > 0.0 {
                line.push_str(&format!(
                    "  {:>14.0} {unit}",
                    count / (b.ns_per_iter * 1e-9)
                ));
            }
        }
        println!("{line}");
        self.criterion.results.push((full, b.ns_per_iter));
    }

    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        let name = name.into();
        self.run_one(&name, f);
        self
    }

    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        let name = id.name.clone();
        self.run_one(&name, |b| f(b, input));
        self
    }

    pub fn finish(&mut self) {}
}

#[derive(Default)]
pub struct Criterion {
    /// (benchmark name, median ns/iter) for every completed benchmark.
    pub results: Vec<(String, f64)>,
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let group_name = name.into();
        println!("\n== group: {group_name} ==");
        BenchmarkGroup {
            criterion: self,
            group_name,
            sample_size: 10,
            throughput: None,
        }
    }

    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        let name: String = name.into();
        let mut group = BenchmarkGroup {
            criterion: self,
            group_name: "bench".to_string(),
            sample_size: 10,
            throughput: None,
        };
        group.run_one(&name, f);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
