//! Derive macros for the offline `serde` stand-in.
//!
//! Implemented directly on `proc_macro::TokenStream` (no `syn`/`quote`,
//! which would need network access to fetch). The parser understands the
//! subset of Rust type definitions this workspace actually derives on:
//!
//! - structs with named fields, tuple structs, unit structs
//! - enums with unit / tuple / struct variants
//! - `#[serde(skip)]` on named fields (omitted on serialize, filled with
//!   `Default::default()` on deserialize)
//!
//! Generics are not supported and panic with a clear message.
//!
//! Encoding conventions (must match `vendor/serde/src/lib.rs`):
//! - named struct        -> `Value::Object([(field, value), ..])`
//! - newtype struct      -> inner value
//! - tuple struct (n>1)  -> `Value::Array`
//! - unit struct         -> `Value::Null`
//! - unit enum variant   -> `Value::Str("Name")`
//! - newtype variant     -> `Value::Object([("Name", inner)])`
//! - tuple variant (n>1) -> `Value::Object([("Name", Array)])`
//! - struct variant      -> `Value::Object([("Name", Object)])`

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
    skip: bool,
}

enum Fields {
    Named(Vec<Field>),
    Tuple(usize),
    Unit,
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

// ---------------------------------------------------------------------------
// Token-level parsing helpers
// ---------------------------------------------------------------------------

fn is_punct(tt: &TokenTree, ch: char) -> bool {
    matches!(tt, TokenTree::Punct(p) if p.as_char() == ch)
}

fn is_ident(tt: &TokenTree, name: &str) -> bool {
    matches!(tt, TokenTree::Ident(id) if id.to_string() == name)
}

fn group_tokens(tt: &TokenTree) -> Vec<TokenTree> {
    match tt {
        TokenTree::Group(g) => g.stream().into_iter().collect(),
        _ => panic!("serde_derive: expected a delimited group"),
    }
}

/// Consume leading `#[...]` attributes starting at `*i`; returns whether any
/// of them was `#[serde(skip)]`.
fn skip_attrs(tokens: &[TokenTree], i: &mut usize) -> bool {
    let mut has_skip = false;
    while *i < tokens.len() && is_punct(&tokens[*i], '#') {
        *i += 1;
        let attr = group_tokens(&tokens[*i]);
        *i += 1;
        if !attr.is_empty() && is_ident(&attr[0], "serde") {
            if let Some(TokenTree::Group(inner)) = attr.get(1) {
                let has = inner
                    .stream()
                    .into_iter()
                    .any(|tt| is_ident(&tt, "skip") || is_ident(&tt, "default"));
                if has {
                    has_skip = inner.stream().into_iter().any(|tt| is_ident(&tt, "skip"));
                }
            }
        }
    }
    has_skip
}

/// Consume an optional `pub` / `pub(...)` visibility marker.
fn skip_vis(tokens: &[TokenTree], i: &mut usize) {
    if *i < tokens.len() && is_ident(&tokens[*i], "pub") {
        *i += 1;
        if *i < tokens.len() {
            if let TokenTree::Group(g) = &tokens[*i] {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1;
                }
            }
        }
    }
}

/// Count top-level comma-separated items, treating `<...>` spans as nested so
/// `HashMap<String, usize>` counts as one item.
fn count_top_level_items(tokens: &[TokenTree]) -> usize {
    if tokens.is_empty() {
        return 0;
    }
    let mut angle: i32 = 0;
    let mut items = 1usize;
    for tt in tokens {
        if let TokenTree::Punct(p) = tt {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => items += 1,
                _ => {}
            }
        }
    }
    // A trailing comma would overcount by one.
    if is_punct(tokens.last().unwrap(), ',') {
        items -= 1;
    }
    items
}

fn parse_named_fields(tokens: &[TokenTree]) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        let skip = skip_attrs(tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_vis(tokens, &mut i);
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive: expected field name, got `{other}`"),
        };
        i += 1;
        assert!(
            i < tokens.len() && is_punct(&tokens[i], ':'),
            "serde_derive: expected `:` after field `{name}`"
        );
        i += 1;
        // Skip the type: run to the next top-level comma (angle-bracket aware).
        let mut angle: i32 = 0;
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                match p.as_char() {
                    '<' => angle += 1,
                    '>' => angle -= 1,
                    ',' if angle == 0 => break,
                    _ => {}
                }
            }
            i += 1;
        }
        if i < tokens.len() {
            i += 1; // consume the comma
        }
        fields.push(Field { name, skip });
    }
    fields
}

fn parse_variants(tokens: &[TokenTree]) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        skip_attrs(tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive: expected variant name, got `{other}`"),
        };
        i += 1;
        let fields = if i < tokens.len() {
            match &tokens[i] {
                TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    i += 1;
                    Fields::Tuple(count_top_level_items(&inner))
                }
                TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    i += 1;
                    Fields::Named(parse_named_fields(&inner))
                }
                _ => Fields::Unit,
            }
        } else {
            Fields::Unit
        };
        if i < tokens.len() && is_punct(&tokens[i], ',') {
            i += 1;
        }
        variants.push(Variant { name, fields });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0usize;
    skip_attrs(&tokens, &mut i);
    skip_vis(&tokens, &mut i);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, got `{other}`"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected type name, got `{other}`"),
    };
    i += 1;
    if i < tokens.len() && is_punct(&tokens[i], '<') {
        panic!("serde_derive: generic types are not supported by the offline stand-in (`{name}`)");
    }
    match kind.as_str() {
        "struct" => {
            let fields = if i < tokens.len() {
                match &tokens[i] {
                    TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                        Fields::Named(parse_named_fields(&inner))
                    }
                    TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => {
                        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                        Fields::Tuple(count_top_level_items(&inner))
                    }
                    _ => Fields::Unit,
                }
            } else {
                Fields::Unit
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let inner: Vec<TokenTree> = match &tokens[i] {
                TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                    g.stream().into_iter().collect()
                }
                other => panic!("serde_derive: expected enum body, got `{other}`"),
            };
            Item::Enum {
                name,
                variants: parse_variants(&inner),
            }
        }
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    }
}

// ---------------------------------------------------------------------------
// Serialize codegen
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let mut body = String::new();
    match item {
        Item::Struct { name, fields } => {
            match fields {
                Fields::Named(fs) => {
                    body.push_str("let mut fields: Vec<(String, serde::Value)> = Vec::new();\n");
                    for f in fs {
                        if f.skip {
                            continue;
                        }
                        body.push_str(&format!(
                            "fields.push((\"{n}\".to_string(), serde::Serialize::to_value(&self.{n})));\n",
                            n = f.name
                        ));
                    }
                    body.push_str("serde::Value::Object(fields)\n");
                }
                Fields::Tuple(1) => {
                    body.push_str("serde::Serialize::to_value(&self.0)\n");
                }
                Fields::Tuple(n) => {
                    body.push_str("let mut items: Vec<serde::Value> = Vec::new();\n");
                    for idx in 0..*n {
                        body.push_str(&format!(
                            "items.push(serde::Serialize::to_value(&self.{idx}));\n"
                        ));
                    }
                    body.push_str("serde::Value::Array(items)\n");
                }
                Fields::Unit => body.push_str("serde::Value::Null\n"),
            }
            format!(
                "impl serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> serde::Value {{\n{body}}}\n}}\n"
            )
        }
        Item::Enum { name, variants } => {
            body.push_str("match self {\n");
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => body.push_str(&format!(
                        "{name}::{vn} => serde::Value::Str(\"{vn}\".to_string()),\n"
                    )),
                    Fields::Tuple(1) => body.push_str(&format!(
                        "{name}::{vn}(f0) => serde::Value::Object(vec![(\"{vn}\".to_string(), serde::Serialize::to_value(f0))]),\n"
                    )),
                    Fields::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|k| format!("f{k}")).collect();
                        let pushes: Vec<String> = binders
                            .iter()
                            .map(|b| format!("serde::Serialize::to_value({b})"))
                            .collect();
                        body.push_str(&format!(
                            "{name}::{vn}({bs}) => serde::Value::Object(vec![(\"{vn}\".to_string(), serde::Value::Array(vec![{ps}]))]),\n",
                            bs = binders.join(", "),
                            ps = pushes.join(", ")
                        ));
                    }
                    Fields::Named(fs) => {
                        let binders: Vec<String> =
                            fs.iter().map(|f| f.name.clone()).collect();
                        let pushes: Vec<String> = fs
                            .iter()
                            .filter(|f| !f.skip)
                            .map(|f| {
                                format!(
                                    "(\"{n}\".to_string(), serde::Serialize::to_value({n}))",
                                    n = f.name
                                )
                            })
                            .collect();
                        body.push_str(&format!(
                            "{name}::{vn} {{ {bs} }} => serde::Value::Object(vec![(\"{vn}\".to_string(), serde::Value::Object(vec![{ps}]))]),\n",
                            bs = binders.join(", "),
                            ps = pushes.join(", ")
                        ));
                    }
                }
            }
            body.push_str("}\n");
            format!(
                "impl serde::Serialize for {name} {{\n\
                 #[allow(unused_variables)]\n\
                 fn to_value(&self) -> serde::Value {{\n{body}}}\n}}\n"
            )
        }
    }
}

// ---------------------------------------------------------------------------
// Deserialize codegen
// ---------------------------------------------------------------------------

fn gen_named_ctor(path: &str, fs: &[Field], source: &str) -> String {
    let mut out = format!("Ok({path} {{\n");
    for f in fs {
        if f.skip {
            out.push_str(&format!("{}: std::default::Default::default(),\n", f.name));
        } else {
            out.push_str(&format!(
                "{n}: serde::Deserialize::from_value({source}.get_field(\"{n}\").unwrap_or(&serde::Value::Null))?,\n",
                n = f.name
            ));
        }
    }
    out.push_str("})\n");
    out
}

fn gen_deserialize(item: &Item) -> String {
    let body = match item {
        Item::Struct { name, fields } => match fields {
            Fields::Named(fs) => format!(
                "match v {{\n\
                 serde::Value::Object(_) => {{\n{ctor}}}\n\
                 other => Err(serde::Error(format!(\"expected object for {name}, got {{other:?}}\"))),\n\
                 }}\n",
                ctor = gen_named_ctor(name, fs, "v")
            ),
            Fields::Tuple(1) => {
                format!("Ok({name}(serde::Deserialize::from_value(v)?))\n")
            }
            Fields::Tuple(n) => {
                let items: Vec<String> = (0..*n)
                    .map(|k| format!("serde::Deserialize::from_value(&items[{k}])?"))
                    .collect();
                format!(
                    "match v {{\n\
                     serde::Value::Array(items) if items.len() == {n} => Ok({name}({ctor})),\n\
                     other => Err(serde::Error(format!(\"expected {n}-element array for {name}, got {{other:?}}\"))),\n\
                     }}\n",
                    ctor = items.join(", ")
                )
            }
            Fields::Unit => format!("{{ let _ = v; Ok({name}) }}\n"),
        },
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut payload_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => unit_arms
                        .push_str(&format!("\"{vn}\" => Ok({name}::{vn}),\n")),
                    Fields::Tuple(1) => payload_arms.push_str(&format!(
                        "\"{vn}\" => Ok({name}::{vn}(serde::Deserialize::from_value(inner)?)),\n"
                    )),
                    Fields::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|k| format!("serde::Deserialize::from_value(&items[{k}])?"))
                            .collect();
                        payload_arms.push_str(&format!(
                            "\"{vn}\" => match inner {{\n\
                             serde::Value::Array(items) if items.len() == {n} => Ok({name}::{vn}({ctor})),\n\
                             other => Err(serde::Error(format!(\"expected {n}-element array for {name}::{vn}, got {{other:?}}\"))),\n\
                             }},\n",
                            ctor = items.join(", ")
                        ));
                    }
                    Fields::Named(fs) => {
                        payload_arms.push_str(&format!(
                            "\"{vn}\" => match inner {{\n\
                             serde::Value::Object(_) => {{\n{ctor}}}\n\
                             other => Err(serde::Error(format!(\"expected object for {name}::{vn}, got {{other:?}}\"))),\n\
                             }},\n",
                            ctor = gen_named_ctor(&format!("{name}::{vn}"), fs, "inner")
                        ));
                    }
                }
            }
            format!(
                "match v {{\n\
                 serde::Value::Str(s) => match s.as_str() {{\n\
                 {unit_arms}\
                 _ => Err(serde::Error(format!(\"unknown unit variant `{{s}}` for {name}\"))),\n\
                 }},\n\
                 serde::Value::Object(pairs) if pairs.len() == 1 => {{\n\
                 let (tag, inner) = &pairs[0];\n\
                 match tag.as_str() {{\n\
                 {payload_arms}\
                 _ => Err(serde::Error(format!(\"unknown variant `{{tag}}` for {name}\"))),\n\
                 }}\n\
                 }}\n\
                 other => Err(serde::Error(format!(\"expected variant encoding for {name}, got {{other:?}}\"))),\n\
                 }}\n"
            )
        }
    };
    let name = match item {
        Item::Struct { name, .. } | Item::Enum { name, .. } => name,
    };
    format!(
        "impl serde::Deserialize for {name} {{\n\
         #[allow(unused_variables, clippy::redundant_field_names)]\n\
         fn from_value(v: &serde::Value) -> std::result::Result<Self, serde::Error> {{\n{body}}}\n}}\n"
    )
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive: generated Serialize impl failed to parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive: generated Deserialize impl failed to parse")
}
