//! Offline stand-in for `serde`, built because this workspace must compile
//! with **zero registry access**. It keeps the public *names* the codebase
//! relies on (`serde::Serialize`, `serde::Deserialize`, the derive macros,
//! `#[serde(skip)]`) but swaps serde's visitor-based data model for a much
//! smaller one: every serializable value converts to and from a [`Value`]
//! tree (the JSON data model). `serde_json` in `vendor/serde_json` renders
//! and parses that tree.
//!
//! This is *not* wire-compatible with real serde for exotic types, but it
//! is self-consistent: anything serialized by this crate deserializes back
//! to an equal value, which is all the workspace needs (snapshot
//! round-trips, determinism checks, schema persistence).

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap, HashSet};
use std::hash::Hash;
use std::sync::Arc;

/// The JSON-shaped data model every `Serialize` type lowers to.
///
/// Objects keep insertion order (a `Vec` of pairs, not a map) so struct
/// serialization is deterministic field-by-field.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer too large for `i64`.
    UInt(u64),
    /// Floating point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Look up a key in an object value.
    pub fn get_field(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Deserialization error: a human-readable message.
#[derive(Debug, Clone)]
pub struct Error(pub String);

impl Error {
    /// Build an error from anything displayable.
    pub fn msg(m: impl std::fmt::Display) -> Self {
        Error(m.to_string())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can lower themselves into a [`Value`] tree.
pub trait Serialize {
    /// Convert `self` to the JSON data model.
    fn to_value(&self) -> Value;
}

/// Types that can rebuild themselves from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parse `self` out of the JSON data model.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! int_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Int(i) => <$t>::try_from(*i).map_err(Error::msg),
                    Value::UInt(u) => <$t>::try_from(*u).map_err(Error::msg),
                    Value::Float(f) if f.fract() == 0.0 => Ok(*f as $t),
                    other => Err(Error(format!(
                        "expected integer, got {other:?}"
                    ))),
                }
            }
        }
    )*};
}

int_impl!(i8, i16, i32, i64, isize, u8, u16, u32, usize);

impl Serialize for u64 {
    fn to_value(&self) -> Value {
        if let Ok(i) = i64::try_from(*self) {
            Value::Int(i)
        } else {
            Value::UInt(*self)
        }
    }
}

impl Deserialize for u64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Int(i) => u64::try_from(*i).map_err(Error::msg),
            Value::UInt(u) => Ok(*u),
            other => Err(Error(format!("expected u64, got {other:?}"))),
        }
    }
}

impl Serialize for u128 {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for u128 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => s.parse().map_err(Error::msg),
            Value::Int(i) => u128::try_from(*i).map_err(Error::msg),
            Value::UInt(u) => Ok(*u as u128),
            other => Err(Error(format!("expected u128, got {other:?}"))),
        }
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            Value::UInt(u) => Ok(*u as f64),
            Value::Null => Ok(f64::NAN),
            other => Err(Error(format!("expected number, got {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(Error(format!("expected single-char string, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(()),
            other => Err(Error(format!("expected null, got {other:?}"))),
        }
    }
}

// ---------------------------------------------------------------------------
// Reference / smart-pointer impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Arc<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Arc::new)
    }
}

// ---------------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize + Eq + Hash> Serialize for HashSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Eq + Hash> Deserialize for HashSet<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error(format!("expected array, got {other:?}"))),
        }
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(pairs) => pairs
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(Error(format!("expected object, got {other:?}"))),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(pairs) => pairs
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(Error(format!("expected object, got {other:?}"))),
        }
    }
}

macro_rules! tuple_impl {
    ($(($($name:ident $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Array(items) => {
                        let mut it = items.iter();
                        Ok(($(
                            {
                                let _ = $idx;
                                $name::from_value(
                                    it.next().ok_or_else(|| Error::msg("tuple too short"))?,
                                )?
                            },
                        )+))
                    }
                    other => Err(Error(format!("expected array, got {other:?}"))),
                }
            }
        }
    )*};
}

tuple_impl! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(i64::from_value(&42i64.to_value()).unwrap(), 42);
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        let v: Vec<u8> = Deserialize::from_value(&vec![1u8, 2].to_value()).unwrap();
        assert_eq!(v, vec![1, 2]);
    }

    #[test]
    fn big_u64_survives() {
        let big = u64::MAX - 3;
        assert_eq!(u64::from_value(&big.to_value()).unwrap(), big);
    }
}
