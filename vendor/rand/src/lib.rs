//! Offline stand-in for `rand` 0.8.
//!
//! Deterministic xoshiro256++ generator behind the subset of the rand 0.8
//! API this workspace uses: `SeedableRng::seed_from_u64`, `Rng::{gen,
//! gen_bool, gen_range}` (integer and float ranges, half-open and
//! inclusive), and `seq::SliceRandom::shuffle`.
//!
//! Sequences differ from the real crate (different stream derivation), but
//! are fully deterministic for a given seed, which is what the synthetic
//! dataset generators and tests rely on.

pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Uniform f64 in [0, 1) with 53 random bits.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Unbiased uniform integer in [0, span) via Lemire's method.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (span as u128);
        let lo = m as u64;
        if lo >= span {
            return (m >> 64) as u64;
        }
        // lo < span: possibly in the biased zone — check threshold.
        let threshold = span.wrapping_neg() % span;
        if lo >= threshold {
            return (m >> 64) as u64;
        }
    }
}

// ---------------------------------------------------------------------------
// `rng.gen::<T>()` support
// ---------------------------------------------------------------------------

pub trait StandardSample: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u32 << 24) as f32)
    }
}

// ---------------------------------------------------------------------------
// `rng.gen_range(...)` support
// ---------------------------------------------------------------------------

/// Generic over the output type `T` so call-site inference works the same
/// way as rand 0.8: `let year: u32 = rng.gen_range(1995..2021)` makes the
/// literal range a `Range<u32>`.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! range_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}
range_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + (self.end - self.start) * unit_f64(rng)
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        lo + (hi - lo) * unit_f64(rng)
    }
}

impl SampleRange<f32> for std::ops::Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + (self.end - self.start) * unit_f64(rng) as f32
    }
}

pub trait Rng: RngCore {
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        unit_f64(self) < p
    }

    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

// ---------------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------------

/// xoshiro256++ core, seeded from a u64 via SplitMix64 (same scheme the real
/// rand_xoshiro crate documents for `seed_from_u64`).
#[derive(Clone, Debug)]
pub struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

impl Xoshiro256PlusPlus {
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Xoshiro256PlusPlus {
            s: [next(), next(), next(), next()],
        }
    }
}

impl RngCore for Xoshiro256PlusPlus {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for Xoshiro256PlusPlus {
    fn seed_from_u64(seed: u64) -> Self {
        Xoshiro256PlusPlus::new(seed)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng, Xoshiro256PlusPlus};

    #[derive(Clone, Debug)]
    pub struct SmallRng(Xoshiro256PlusPlus);

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng(Xoshiro256PlusPlus::seed_from_u64(seed))
        }
    }

    #[derive(Clone, Debug)]
    pub struct StdRng(Xoshiro256PlusPlus);

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Distinct stream from SmallRng so swapping types changes values.
            StdRng(Xoshiro256PlusPlus::seed_from_u64(
                seed ^ 0xA5A5_5A5A_DEAD_BEEF,
            ))
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    pub trait SliceRandom {
        type Item;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        fn choose<'a, R: RngCore>(&'a self, rng: &mut R) -> Option<&'a Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            // Fisher–Yates, high-to-low.
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<'a, R: RngCore>(&'a self, rng: &mut R) -> Option<&'a T> {
            if self.is_empty() {
                None
            } else {
                let i = rng.gen_range(0..self.len());
                self.get(i)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64_pub(), b.next_u64_pub());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64_pub(), c.next_u64_pub());
    }

    trait NextPub {
        fn next_u64_pub(&mut self) -> u64;
    }
    impl NextPub for SmallRng {
        fn next_u64_pub(&mut self) -> u64 {
            use super::RngCore;
            self.next_u64()
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..10);
            assert!((3..10).contains(&v));
            let w = rng.gen_range(1..=5u8);
            assert!((1..=5).contains(&w));
            let f = rng.gen_range(-0.5..=0.5);
            assert!((-0.5..=0.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..1000 {
            assert!(rng.gen_bool(1.0));
            assert!(!rng.gen_bool(0.0));
        }
    }

    #[test]
    fn gen_bool_rate_is_plausible() {
        let mut rng = SmallRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_600..3_400).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(13);
        let mut xs: Vec<u32> = (0..50).collect();
        xs.shuffle(&mut rng);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(xs, (0..50).collect::<Vec<_>>());
    }
}
