//! Offline stand-in for `serde_json`.
//!
//! Serializes the stub `serde::Value` tree to real JSON text and parses JSON
//! text back. Supports exactly the surface this workspace uses:
//! `to_string`, `to_string_pretty`, `from_str`, and an `Error` type.

use serde::{Deserialize, Serialize, Value};

#[derive(Debug, Clone)]
pub struct Error(pub String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.0)
    }
}

pub type Result<T> = std::result::Result<T, Error>;

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // `{:?}` prints the shortest representation that round-trips.
                out.push_str(&format!("{f:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => escape_into(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                escape_into(k, out);
                out.push(':');
                write_value(val, out);
            }
            out.push('}');
        }
    }
}

pub fn to_value<T: Serialize>(value: &T) -> Result<Value> {
    Ok(value.to_value())
}

pub fn to_string<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out);
    Ok(out)
}

pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String> {
    fn pretty(v: &Value, indent: usize, out: &mut String) {
        let pad = "  ".repeat(indent);
        let pad_in = "  ".repeat(indent + 1);
        match v {
            Value::Array(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    out.push_str(&pad_in);
                    pretty(item, indent + 1, out);
                }
                out.push('\n');
                out.push_str(&pad);
                out.push(']');
            }
            Value::Object(fields) if !fields.is_empty() => {
                out.push_str("{\n");
                for (i, (k, val)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    out.push_str(&pad_in);
                    escape_into(k, out);
                    out.push_str(": ");
                    pretty(val, indent + 1, out);
                }
                out.push('\n');
                out.push_str(&pad);
                out.push('}');
            }
            other => write_value(other, out),
        }
    }
    let mut out = String::new();
    pretty(&value.to_value(), 0, &mut out);
    Ok(out)
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn parse_literal(&mut self, lit: &str, v: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self.peek().ok_or_else(|| self.err("unterminated string"))?;
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let cp = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect `\uXXXX` low half.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.parse_hex4()?;
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(cp).ok_or_else(|| self.err("invalid \\u escape"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Copy one UTF-8 scalar (multi-byte safe).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| self.err("invalid utf-8"))?,
                    );
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9') | Some(b'.') | Some(b'e') | Some(b'E') | Some(b'+') | Some(b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !text.contains(['.', 'e', 'E']) {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err("invalid number"))
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek().ok_or_else(|| self.err("unexpected end"))? {
            b'n' => self.parse_literal("null", Value::Null),
            b't' => self.parse_literal("true", Value::Bool(true)),
            b'f' => self.parse_literal("false", Value::Bool(false)),
            b'"' => Ok(Value::Str(self.parse_string()?)),
            b'[' => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(self.err("expected `,` or `]`")),
                    }
                }
            }
            b'{' => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let val = self.parse_value()?;
                    fields.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(fields));
                        }
                        _ => return Err(self.err("expected `,` or `}`")),
                    }
                }
            }
            b'-' | b'0'..=b'9' => self.parse_number(),
            other => Err(self.err(&format!("unexpected byte `{}`", other as char))),
        }
    }
}

pub fn parse_value(s: &str) -> Result<Value> {
    let mut p = Parser::new(s);
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let v = parse_value(s)?;
    Ok(T::from_value(&v)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_values() {
        let v = Value::Object(vec![
            ("name".to_string(), Value::Str("a \"b\"\nc".to_string())),
            (
                "items".to_string(),
                Value::Array(vec![Value::Int(-3), Value::Float(0.5), Value::Null]),
            ),
            ("ok".to_string(), Value::Bool(true)),
        ]);
        let mut s = String::new();
        write_value(&v, &mut s);
        let back = parse_value(&s).unwrap();
        let mut s2 = String::new();
        write_value(&back, &mut s2);
        assert_eq!(s, s2);
    }

    #[test]
    fn parses_unicode_escapes() {
        let v = parse_value("\"\\u00e9\\ud83d\\ude00\"").unwrap();
        match v {
            Value::Str(s) => assert_eq!(s, "é😀"),
            _ => panic!("expected string"),
        }
    }

    #[test]
    fn typed_round_trip() {
        let xs: Vec<(String, u64)> = vec![("a".into(), 1), ("b".into(), u64::MAX)];
        let json = to_string(&xs).unwrap();
        let back: Vec<(String, u64)> = from_str(&json).unwrap();
        assert_eq!(xs, back);
    }
}
