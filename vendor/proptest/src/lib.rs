//! Offline stand-in for `proptest`.
//!
//! Random-sampling property testing without shrinking: each strategy is a
//! deterministic sampler (`gen_value`) over a seeded RNG, and `proptest!`
//! runs the body for a fixed number of sampled cases. No shrinking means
//! failures report the raw sampled inputs — acceptable for an offline
//! build where the real crate cannot be fetched.
//!
//! Supported surface (what this workspace uses):
//! - `proptest! { #[test] fn name(pat in strategy, ..) { .. } }` with an
//!   optional `#![proptest_config(..)]` header
//! - `prop_assert!`, `prop_assert_eq!`, `prop_oneof!`, `Just`, `any::<T>()`
//! - `Strategy::{prop_map, prop_flat_map, prop_recursive, boxed}`
//! - ranges (`0u8..4`, `1usize..=8`) and tuples of strategies
//! - `collection::{vec, hash_set}`, `char::range`, `sample::select`
//! - `&str` regex-lite strategies: char classes + `{m,n}` quantifiers
//! - `test_runner::TestRunner::{deterministic, new}` + `run`

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

pub type TestRng = SmallRng;

// ---------------------------------------------------------------------------
// Core strategy trait + object-safe boxing
// ---------------------------------------------------------------------------

pub mod strategy {
    use super::TestRng;
    use std::rc::Rc;

    pub trait Strategy {
        type Value;

        fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }

        /// Depth-bounded recursion: returns a uniform mix over expansion
        /// depths 0..=depth so leaves stay reachable at the top level.
        fn prop_recursive<S, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            f: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            S: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S,
        {
            let mut levels: Vec<BoxedStrategy<Self::Value>> = vec![self.boxed()];
            for _ in 0..depth {
                let mix = Union::new(levels.clone()).boxed();
                levels.push(f(mix).boxed());
            }
            Union::new(levels).boxed()
        }
    }

    pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            self.0.gen_value(rng)
        }
    }

    /// Uniform choice among same-valued strategies (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            use rand::Rng;
            let i = rng.gen_range(0..self.options.len());
            self.options[i].gen_value(rng)
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn gen_value(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.gen_value(rng))
        }
    }

    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, S2> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn gen_value(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.gen_value(rng)).gen_value(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn gen_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

pub use strategy::{BoxedStrategy, Just, Strategy, Union};

// ---------------------------------------------------------------------------
// Primitive strategies: ranges, tuples, `any`, string patterns
// ---------------------------------------------------------------------------

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn gen_value(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.gen_value(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (S0/0)
    (S0/0, S1/1)
    (S0/0, S1/1, S2/2)
    (S0/0, S1/1, S2/2, S3/3)
    (S0/0, S1/1, S2/2, S3/3, S4/4)
}

pub trait Arbitrary: Sized + 'static {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.gen()
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.gen()
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

// --- `&str` regex-lite string strategies ----------------------------------

/// One pattern element: a set of candidate chars plus a repetition range.
struct PatternPart {
    choices: Vec<char>,
    min: usize,
    max: usize,
}

const PRINTABLE_ASCII: std::ops::RangeInclusive<u8> = b' '..=b'~';

fn printable() -> Vec<char> {
    PRINTABLE_ASCII.map(|b| b as char).collect()
}

/// Parse the regex-lite subset used in strategy position: sequences of
/// `.` / `[class]` / literal chars, each with an optional `{m,n}` / `{n}` /
/// `?` / `*` / `+` quantifier. Classes support ranges, negation, and
/// literal members.
fn parse_pattern(pat: &str) -> Vec<PatternPart> {
    let chars: Vec<char> = pat.chars().collect();
    let mut parts = Vec::new();
    let mut i = 0usize;
    while i < chars.len() {
        let choices: Vec<char> = match chars[i] {
            '.' => {
                i += 1;
                printable()
            }
            '[' => {
                i += 1;
                let negated = chars.get(i) == Some(&'^');
                if negated {
                    i += 1;
                }
                let mut set = Vec::new();
                while i < chars.len() && chars[i] != ']' {
                    if chars[i] == '\\' && i + 1 < chars.len() {
                        i += 1;
                        set.push(chars[i]);
                        i += 1;
                    } else if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        let (lo, hi) = (chars[i], chars[i + 2]);
                        assert!(lo <= hi, "bad class range in pattern `{pat}`");
                        for c in lo..=hi {
                            set.push(c);
                        }
                        i += 3;
                    } else {
                        set.push(chars[i]);
                        i += 1;
                    }
                }
                assert!(i < chars.len(), "unterminated class in pattern `{pat}`");
                i += 1; // closing ']'
                if negated {
                    printable()
                        .into_iter()
                        .filter(|c| !set.contains(c))
                        .collect()
                } else {
                    set
                }
            }
            '\\' if i + 1 < chars.len() => {
                let c = chars[i + 1];
                i += 2;
                match c {
                    'd' => ('0'..='9').collect(),
                    'w' => ('a'..='z')
                        .chain('A'..='Z')
                        .chain('0'..='9')
                        .chain(std::iter::once('_'))
                        .collect(),
                    's' => vec![' ', '\t', '\n'],
                    other => vec![other],
                }
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        // Optional quantifier.
        let (min, max) = match chars.get(i) {
            Some('{') => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|p| p + i)
                    .unwrap_or_else(|| panic!("unterminated quantifier in `{pat}`"));
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                if let Some((lo, hi)) = body.split_once(',') {
                    (
                        lo.trim().parse().expect("bad quantifier"),
                        hi.trim().parse().expect("bad quantifier"),
                    )
                } else {
                    let n: usize = body.trim().parse().expect("bad quantifier");
                    (n, n)
                }
            }
            Some('?') => {
                i += 1;
                (0, 1)
            }
            Some('*') => {
                i += 1;
                (0, 8)
            }
            Some('+') => {
                i += 1;
                (1, 8)
            }
            _ => (1, 1),
        };
        assert!(
            !choices.is_empty(),
            "pattern element matches no characters in `{pat}`"
        );
        parts.push(PatternPart { choices, min, max });
    }
    parts
}

impl Strategy for &'static str {
    type Value = String;
    fn gen_value(&self, rng: &mut TestRng) -> String {
        let parts = parse_pattern(self);
        let mut out = String::new();
        for part in &parts {
            let n = rng.gen_range(part.min..=part.max);
            for _ in 0..n {
                out.push(part.choices[rng.gen_range(0..part.choices.len())]);
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Modules: collection / char / sample
// ---------------------------------------------------------------------------

pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::collections::HashSet;
    use std::hash::Hash;

    /// Element-count specification: a fixed size or a half-open range.
    #[derive(Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max_exclusive: *r.end() + 1,
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.size.min..self.size.max_exclusive);
            (0..n).map(|_| self.element.gen_value(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    pub struct HashSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for HashSetStrategy<S>
    where
        S::Value: Eq + Hash,
    {
        type Value = HashSet<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let target = rng.gen_range(self.size.min..self.size.max_exclusive);
            let mut out = HashSet::new();
            // Try to reach the target size; duplicates may fall short, but
            // never below one element when the minimum is at least one.
            for _ in 0..target.max(1) * 4 {
                if out.len() >= target.max(self.size.min) {
                    break;
                }
                out.insert(self.element.gen_value(rng));
            }
            out
        }
    }

    pub fn hash_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S> {
        HashSetStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod char {
    use super::{Strategy, TestRng};
    use rand::Rng;

    pub struct CharRange {
        lo: u32,
        hi: u32,
    }

    impl Strategy for CharRange {
        type Value = char;
        fn gen_value(&self, rng: &mut TestRng) -> char {
            loop {
                let v = rng.gen_range(self.lo..=self.hi);
                if let Some(c) = char::from_u32(v) {
                    return c;
                }
            }
        }
    }

    pub fn range(lo: char, hi: char) -> CharRange {
        assert!(lo <= hi, "char::range: lo must be <= hi");
        CharRange {
            lo: lo as u32,
            hi: hi as u32,
        }
    }
}

pub mod sample {
    use super::{Strategy, TestRng};
    use rand::Rng;

    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            self.options[rng.gen_range(0..self.options.len())].clone()
        }
    }

    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "sample::select: empty options");
        Select { options }
    }
}

// ---------------------------------------------------------------------------
// Test runner
// ---------------------------------------------------------------------------

pub mod test_runner {
    use super::{SeedableRng, SmallRng, Strategy};

    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 128 }
        }
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// A failed property case (no shrinking: raw message only).
    #[derive(Debug, Clone)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "{}", self.0)
        }
    }

    #[derive(Debug)]
    pub struct TestError {
        pub case: u32,
        pub message: String,
    }

    impl std::fmt::Display for TestError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "property failed at case {}: {}", self.case, self.message)
        }
    }

    pub struct TestRunner {
        rng: SmallRng,
        config: ProptestConfig,
    }

    impl TestRunner {
        pub fn new(config: ProptestConfig) -> Self {
            TestRunner {
                rng: SmallRng::seed_from_u64(0x70_61_6e_64_61), // "panda"
                config,
            }
        }

        /// Fixed-seed runner, mirroring `TestRunner::deterministic()`.
        pub fn deterministic() -> Self {
            TestRunner::new(ProptestConfig::default())
        }

        pub fn run<S: Strategy>(
            &mut self,
            strategy: &S,
            test: impl Fn(S::Value) -> Result<(), TestCaseError>,
        ) -> Result<(), TestError> {
            for case in 0..self.config.cases {
                let value = strategy.gen_value(&mut self.rng);
                test(value).map_err(|e| TestError { case, message: e.0 })?;
            }
            Ok(())
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} == {} ({:?} vs {:?})",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)*)));
        }
    }};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[macro_export]
macro_rules! __proptest_tests {
    (($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:pat_param in $strategy:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let mut runner = $crate::test_runner::TestRunner::new($cfg);
            let strategy = ($($strategy,)+);
            runner
                .run(&strategy, |($($arg,)+)| {
                    $body
                    Ok(())
                })
                .unwrap_or_else(|e| panic!("{e}"));
        }
    )*};
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRunner};
    pub use crate::{any, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn string_patterns_respect_shape() {
        let mut runner = TestRunner::deterministic();
        runner
            .run(&"[a-c]{1,3}", |s| {
                prop_assert!((1..=3).contains(&s.len()), "len {}", s.len());
                prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
                Ok(())
            })
            .unwrap();
    }

    #[test]
    fn union_and_map_compose() {
        let s = prop_oneof![Just(1u32), (10u32..20).prop_map(|v| v * 2)];
        let mut runner = TestRunner::deterministic();
        runner
            .run(&s, |v| {
                prop_assert!(v == 1 || (20..40).contains(&v), "v = {v}");
                Ok(())
            })
            .unwrap();
    }

    proptest! {
        /// The macro itself: tuple destructuring + collections.
        #[test]
        fn macro_smoke(
            (a, b) in (0usize..5, 0usize..5),
            xs in crate::collection::vec("[ab]{1,2}", 1..4),
        ) {
            prop_assert!(a < 5 && b < 5);
            prop_assert!(!xs.is_empty() && xs.len() < 4);
        }
    }
}
