//! Product matching end-to-end: the paper's motivating e-commerce
//! scenario ("identify identical products from different suppliers for a
//! unified catalog").
//!
//! Shows the full lifecycle on an Amazon-Google-like task:
//! manual LFs across several attributes, model comparison
//! (majority vote vs Snorkel vs Panda), and the deployment phase on a
//! larger catalog.
//!
//! Run with: `cargo run --example product_matching`

use panda::datasets::{generate, DatasetFamily, GeneratorConfig};
use panda::prelude::*;
use std::sync::Arc;

fn product_lfs(session: &mut PandaSession) {
    // Name similarity with TF-IDF cosine: rare model-code tokens dominate.
    session.upsert_lf(Arc::new(SimilarityLf::new(
        "name_tfidf",
        "name",
        SimilarityConfig {
            preprocess: panda::text::preprocess::standard_pipeline(),
            tokenizer: Tokenizer::Whitespace,
            weighting: Weighting::TfIdf,
            measure: Measure::Cosine,
        },
        0.55,
        0.08,
    )));
    // Model codes must agree (KDL-40V2500 vs KDL40V2500 normalise equal).
    session.upsert_lf(Arc::new(ExtractionLf::new(
        "model_code",
        &["name", "description"],
        panda::lf::builders::ExtractionPolicy::Symmetric,
        panda::text::extract::model_codes,
    )));
    // Prices within 15% support a match; >60% apart refute one.
    session.upsert_lf(Arc::new(NumericToleranceLf::new(
        "price_close",
        "price",
        0.15,
        0.60,
    )));
    // Character-3-gram Jaccard on names catches typos.
    session.upsert_lf(Arc::new(SimilarityLf::new(
        "name_3gram",
        "name",
        SimilarityConfig {
            preprocess: panda::text::preprocess::standard_pipeline(),
            tokenizer: Tokenizer::QGram(3),
            weighting: Weighting::Uniform,
            measure: Measure::Jaccard,
        },
        0.55,
        0.12,
    )));
}

fn main() {
    let task = generate(
        DatasetFamily::AmazonGoogle,
        &GeneratorConfig::new(7).with_entities(300),
    );
    println!(
        "Catalog matching: {} amazon rows vs {} google rows\n",
        task.left.len(),
        task.right.len()
    );

    // Compare the three labeling models on the same LF set.
    println!(
        "{:<18} {:>9} {:>9} {:>9}",
        "model", "precision", "recall", "F1"
    );
    for (name, choice) in [
        ("majority-vote", ModelChoice::Majority),
        ("snorkel", ModelChoice::Snorkel),
        ("panda", ModelChoice::Panda),
    ] {
        let mut session = PandaSession::load(
            task.clone(),
            SessionConfig {
                model: choice,
                ..SessionConfig::default()
            },
        );
        product_lfs(&mut session);
        session.apply();
        let m = session.current_metrics().unwrap();
        println!(
            "{name:<18} {:>9.3} {:>9.3} {:>9.3}",
            m.precision, m.recall, m.f1
        );
    }

    // Development on the small sample, deployment on the full catalog
    // (the paper's two phases).
    let mut dev = PandaSession::load(task, SessionConfig::default());
    product_lfs(&mut dev);
    dev.apply();

    let full_catalog = generate(
        DatasetFamily::AmazonGoogle,
        &GeneratorConfig::new(8).with_entities(1200),
    );
    let deployed = dev.deploy(&full_catalog);
    let dm = deployed.metrics.unwrap();
    println!(
        "\nDeployment on {}x larger catalog: {} candidates, {} predicted matches",
        4,
        deployed.candidates.len(),
        deployed.predicted.len()
    );
    println!(
        "Deployed quality: precision {:.3}  recall {:.3}  F1 {:.3}",
        dm.precision, dm.recall, dm.f1
    );
}
