//! A scripted replay of the paper's demonstration scenario (§3, Steps
//! 1–5), rendering the IDE panels as terminal tables.
//!
//! The browser GUI of the original demo is presentation over exactly this
//! session API; every "click" in the paper corresponds to one method call
//! below.
//!
//! Run with: `cargo run --example interactive_session`

use panda::datasets::{generate, DatasetFamily, GeneratorConfig};
use panda::prelude::*;
use std::sync::Arc;

fn print_em_stats(em: &EmStats) {
    println!("┌─ EM Stats Panel ─────────────────────────────");
    println!("│ left table rows      {:>8}", em.left_rows);
    println!("│ right table rows     {:>8}", em.right_rows);
    println!("│ candidate set size   {:>8}", em.candidate_pairs);
    println!("│ labeling functions   {:>8}", em.n_lfs);
    println!("│ matches found        {:>8}", em.matches_found);
    match em.estimated_precision {
        Some(p) => println!("│ estimated precision  {:>8.3}", p),
        None => println!("│ estimated precision  {:>8}", "NAN"),
    }
    println!("└──────────────────────────────────────────────");
}

fn print_lf_stats(session: &PandaSession) {
    println!("┌─ LF Stats Panel ─────────────────────────────");
    println!(
        "│ {:<16} {:>5} {:>5} {:>6} {:>8} {:>8}",
        "name", "+1", "-1", "abst", "est.FPR", "est.FNR"
    );
    let mut rows = session.lf_stats();
    // The paper's Step 4: sort by estimated FPR, worst first.
    rows.sort_by(|a, b| {
        b.est_fpr
            .unwrap_or(0.0)
            .total_cmp(&a.est_fpr.unwrap_or(0.0))
    });
    for r in rows {
        println!(
            "│ {:<16} {:>5} {:>5} {:>6} {:>8.4} {:>8.4}",
            r.name,
            r.n_match,
            r.n_nonmatch,
            r.n_abstain,
            r.est_fpr.unwrap_or(f64::NAN),
            r.est_fnr.unwrap_or(f64::NAN)
        );
    }
    println!("└──────────────────────────────────────────────");
}

fn print_viewer(rows: &[DataViewerRow], limit: usize) {
    println!("┌─ Data Viewer Panel ──────────────────────────");
    for row in rows.iter().take(limit) {
        let name_col = row.columns.iter().position(|c| c == "name").unwrap_or(0);
        println!(
            "│ #{:<5} likelihood {:.3}  γ {:.3}",
            row.candidate_index,
            row.likelihood.unwrap_or(0.0),
            row.model_gamma.unwrap_or(0.0)
        );
        println!("│   L: {}", row.left_values[name_col]);
        println!("│   R: {}", row.right_values[name_col]);
    }
    println!("└──────────────────────────────────────────────");
}

fn main() {
    // ── Step 1: upload dataset & initialization ─────────────────────────
    println!("== Step 1: load data (blocking + auto-LF discovery) ==");
    let task = generate(
        DatasetFamily::AbtBuy,
        &GeneratorConfig::new(21).with_entities(250),
    );
    let mut session = PandaSession::load(task, SessionConfig::default());
    print_em_stats(&session.em_stats());
    print_lf_stats(&session);

    // ── Step 2: view tuple pairs, develop LF ideas ──────────────────────
    println!("\n== Step 2: 'Show' — smart-sample likely matches the model misses ==");
    let sample = session.smart_sample(5);
    print_viewer(&sample, 5);
    println!("(Names of likely matches overlap heavily → idea: name_overlap LF)");

    // ── Step 3: write the LF — with a deliberately loose threshold ──────
    println!("\n== Step 3: write name_overlap (threshold 0.4) and apply ==");
    session.upsert_lf(Arc::new(SimilarityLf::new(
        "name_overlap",
        "name",
        SimilarityConfig::default_jaccard(),
        0.4,
        0.1,
    )));
    let report = session.apply();
    println!(
        "labeler.apply(): {} applied, {} reused (incremental)",
        report.applied.len(),
        report.reused.len()
    );
    print_lf_stats(&session);

    // ── Step 4: debug LF quality ────────────────────────────────────────
    println!("\n== Step 4: click name_overlap's estimated FPR → inspect, tighten to 0.6 ==");
    let fpr_before = session
        .lf_stats()
        .into_iter()
        .find(|r| r.name == "name_overlap")
        .and_then(|r| r.est_fpr)
        .unwrap_or(f64::NAN);
    let offenders = session.debug_pairs("name_overlap", DebugQuery::LikelyFalsePositives, 3);
    print_viewer(&offenders, 3);
    println!("(These pairs don't share enough words — tighten the threshold.)");
    session.upsert_lf(Arc::new(SimilarityLf::new(
        "name_overlap",
        "name",
        SimilarityConfig::default_jaccard(),
        0.6,
        0.1,
    )));
    session.apply();
    let fpr_after = session
        .lf_stats()
        .into_iter()
        .find(|r| r.name == "name_overlap")
        .and_then(|r| r.est_fpr)
        .unwrap_or(f64::NAN);
    println!("estimated FPR of name_overlap: {fpr_before:.4} → {fpr_after:.4}");

    // ── Step 5: estimate overall EM quality ─────────────────────────────
    println!("\n== Step 5: spot-label sampled predicted matches → estimated precision ==");
    let to_label = session.sample_predicted_matches(10);
    for row in &to_label {
        // The demo user eyeballs each pair; we stand in with gold truth.
        let truth = row.gold.expect("benchmark task has gold");
        session.label_pair(row.candidate_index, truth);
    }
    print_em_stats(&session.em_stats());

    if let Some(m) = session.current_metrics() {
        println!(
            "\nTrue quality (hidden from a real user): P {:.3}  R {:.3}  F1 {:.3}",
            m.precision, m.recall, m.f1
        );
    }
    println!("\nSession event log: {} events", session.events().len());
}
