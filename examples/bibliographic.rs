//! Bibliographic matching (DBLP-Scholar style) + deduplication with the
//! transitivity constraint.
//!
//! Part 1 matches a clean bibliography against a scraped-citation mess
//! (abbreviated authors, abbreviated venues, duplicate entries).
//! Part 2 deduplicates a single citation table — the setting where
//! ZeroER's transitivity constraint (γ_ij·γ_ik ≤ γ_jk) has triangles to
//! act on — and compares the Panda model with and without it.
//!
//! Run with: `cargo run --example bibliographic`

use panda::datasets::{generate, DatasetFamily, GeneratorConfig};
use panda::prelude::*;
use std::sync::Arc;

fn bib_lfs(session: &mut PandaSession) {
    // Character-3-gram Jaccard on titles (typo-robust).
    session.upsert_lf(Arc::new(SimilarityLf::new(
        "title_3gram",
        "title",
        SimilarityConfig {
            preprocess: panda::text::preprocess::standard_pipeline(),
            tokenizer: Tokenizer::QGram(3),
            weighting: Weighting::Uniform,
            measure: Measure::Jaccard,
        },
        0.6,
        0.15,
    )));
    // Stemmed-token Jaccard on titles.
    session.upsert_lf(Arc::new(SimilarityLf::new(
        "title_overlap",
        "title",
        SimilarityConfig {
            preprocess: vec![
                Preprocess::Lowercase,
                Preprocess::StripPunctuation,
                Preprocess::Stem,
                Preprocess::NormalizeWhitespace,
            ],
            tokenizer: Tokenizer::Whitespace,
            weighting: Weighting::Uniform,
            measure: Measure::Jaccard,
        },
        0.75,
        0.15,
    )));
    // Author last names overlap (robust to "J. Smith" vs "James Smith"):
    // Monge-Elkan with Jaro-Winkler inner similarity.
    session.upsert_lf(Arc::new(SimilarityLf::new(
        "authors_me",
        "authors",
        SimilarityConfig {
            preprocess: vec![Preprocess::Lowercase, Preprocess::StripPunctuation],
            tokenizer: Tokenizer::Whitespace,
            weighting: Weighting::Uniform,
            measure: Measure::MongeElkan,
        },
        0.9,
        0.3,
    )));
    // Different publication years refute a match (years are extracted
    // with the regex engine; abstains when either side lacks one).
    session.upsert_lf(Arc::new(ExtractionLf::new(
        "year_unmatch",
        &["year"],
        panda::lf::builders::ExtractionPolicy::UnmatchOnly,
        |text| {
            panda::text::extract::years(text)
                .iter()
                .map(u32::to_string)
                .collect()
        },
    )));
}

fn main() {
    // --- Part 1: two-table matching, clean vs dirty bibliography -------
    let task = generate(
        DatasetFamily::DblpScholar,
        &GeneratorConfig::new(3).with_entities(250),
    );
    println!(
        "DBLP vs Scholar: {} clean rows vs {} scraped rows ({} gold matches)",
        task.left.len(),
        task.right.len(),
        task.gold.as_ref().unwrap().len()
    );
    let mut session = PandaSession::load(task, SessionConfig::default());
    bib_lfs(&mut session);
    session.apply();
    let m = session.current_metrics().unwrap();
    println!(
        "Matching quality: precision {:.3}  recall {:.3}  F1 {:.3}\n",
        m.precision, m.recall, m.f1
    );

    // --- Part 2: single-table dedup, transitivity on vs off ------------
    let dedup = generate(
        DatasetFamily::CoraDedup,
        &GeneratorConfig::new(42)
            .with_entities(120)
            .with_right_dups(5),
    );
    println!(
        "Cora-style dedup: {} rows with duplicate clusters",
        dedup.left.len()
    );
    println!(
        "{:<22} {:>9} {:>9} {:>9}",
        "model", "precision", "recall", "F1"
    );
    for (label, choice) in [
        ("panda", ModelChoice::Panda),
        (
            "panda+transitivity",
            ModelChoice::PandaTransitive(TransitivityMode::SelfJoin),
        ),
    ] {
        let mut s = PandaSession::load(
            dedup.clone(),
            SessionConfig {
                model: choice,
                ..SessionConfig::default()
            },
        );
        bib_lfs(&mut s);
        s.apply();
        let m = s.current_metrics().unwrap();
        println!(
            "{label:<22} {:>9.3} {:>9.3} {:>9.3}",
            m.precision, m.recall, m.f1
        );
    }
    println!("\n(The transitivity projection recovers within-cluster pairs the LFs miss.)");
}
