//! Quickstart: weakly supervised matching in ~60 lines.
//!
//! Loads an Abt-Buy-like product matching task, ports the paper's two
//! example LFs (Figure 2) — `name_overlap` and `size_unmatch` — combines
//! them with the auto-generated LFs through Panda's labeling model, and
//! reports precision/recall/F1 against ground truth.
//!
//! Run with: `cargo run --example quickstart`

use panda::prelude::*;
use std::sync::Arc;

fn main() {
    // 1. A benchmark task with known ground truth (synthetic stand-in for
    //    the Leipzig Abt-Buy dataset; see DESIGN.md §2).
    let task = panda::datasets::generate(
        panda::datasets::DatasetFamily::AbtBuy,
        &panda::datasets::GeneratorConfig::new(42).with_entities(300),
    );
    println!(
        "Loaded task: {} left rows, {} right rows, {} gold matches",
        task.left.len(),
        task.right.len(),
        task.gold.as_ref().map(|g| g.len()).unwrap_or(0)
    );

    // 2. Start a session: blocking (embedding + LSH), auto-LF discovery,
    //    initial labeling-model fit.
    let mut session = PandaSession::load(task, SessionConfig::default());
    let em = session.em_stats();
    println!(
        "After load: {} candidate pairs, {} auto LFs, {} matches found",
        em.candidate_pairs, em.n_lfs, em.matches_found
    );

    // 3. The paper's Figure 2 LFs, ported to the builder DSL.
    //    name_overlap: token Jaccard on "name"; > 0.6 → match, < 0.1 → non-match.
    session.upsert_lf(Arc::new(SimilarityLf::new(
        "name_overlap",
        "name",
        SimilarityConfig::default_jaccard(),
        0.6,
        0.1,
    )));
    //    size_unmatch: extract product sizes (40' / 46-inch …) from name +
    //    description via the regex engine; different sizes → non-match.
    session.upsert_lf(Arc::new(ExtractionLf::size_unmatch(&[
        "name",
        "description",
    ])));

    // 4. labeler.apply(): incremental — only the two new LFs execute.
    let report = session.apply();
    println!(
        "Applied {} new LFs ({} cached, {} failed)",
        report.applied.len(),
        report.reused.len(),
        report.failed.len()
    );

    // 5. Inspect the LF Stats Panel.
    println!("\nLF Stats Panel:");
    println!(
        "{:<14} {:>6} {:>6} {:>7} {:>9} {:>9}",
        "LF", "+1", "-1", "abst", "est.FPR", "est.FNR"
    );
    for row in session.lf_stats() {
        println!(
            "{:<14} {:>6} {:>6} {:>7} {:>9.4} {:>9.4}",
            row.name,
            row.n_match,
            row.n_nonmatch,
            row.n_abstain,
            row.est_fpr.unwrap_or(f64::NAN),
            row.est_fnr.unwrap_or(f64::NAN),
        );
    }

    // 6. Final quality against ground truth.
    let m = session.current_metrics().expect("benchmark has gold");
    println!(
        "\nFinal quality: precision {:.3}  recall {:.3}  F1 {:.3}",
        m.precision, m.recall, m.f1
    );
}
