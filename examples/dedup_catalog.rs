//! Catalog deduplication end-to-end: match, then *cluster* — the paper's
//! motivating "unified catalog" needs entities, not pairs.
//!
//! Develops LFs on an Abt-Buy-like sample, deploys on a larger catalog,
//! resolves the predicted matches into entity clusters with union-find,
//! and evaluates both the pairwise decisions and the cluster-implied pairs.
//!
//! Run with: `cargo run --release --example dedup_catalog`

use panda::datasets::{generate, DatasetFamily, GeneratorConfig};
use panda::eval::clustering::{dense_clusters_from_pairs, pairwise_cluster_metrics, Node};
use panda::prelude::*;
use std::sync::Arc;

fn main() {
    // Development phase on a small sample.
    let dev = generate(
        DatasetFamily::AbtBuy,
        &GeneratorConfig::new(61).with_entities(150),
    );
    let mut session = PandaSession::load(dev, SessionConfig::default());
    session.upsert_lf(Arc::new(SimilarityLf::new(
        "name_overlap",
        "name",
        SimilarityConfig::default_jaccard(),
        0.6,
        0.1,
    )));
    session.upsert_lf(Arc::new(ExtractionLf::size_unmatch(&[
        "name",
        "description",
    ])));
    session.upsert_lf(Arc::new(NumericToleranceLf::new(
        "price_close",
        "price",
        0.15,
        0.6,
    )));
    session.apply();
    let dm = session.current_metrics().unwrap();
    println!("development F1: {:.3}", dm.f1);

    // Deployment on the full catalog.
    let catalog = generate(
        DatasetFamily::AbtBuy,
        &GeneratorConfig::new(62).with_entities(600),
    );
    let gold = catalog.gold.clone().unwrap();
    let result = session.deploy(&catalog);
    let pm = result.metrics.as_ref().unwrap();
    println!(
        "deployed pairwise: P {:.3}  R {:.3}  F1 {:.3} ({} predicted pairs)",
        pm.precision,
        pm.recall,
        pm.f1,
        result.predicted.len()
    );

    // Entities: connected components, then the dense variant that peels
    // single-edge chain records.
    let loose = result.entity_clusters();
    let dense = dense_clusters_from_pairs(
        &result.predicted,
        result.table_sizes.0,
        result.table_sizes.1,
        3,
    );
    println!(
        "\nclusters: {} loose (largest {}), {} dense (largest {})",
        loose.len(),
        loose.first().map(Vec::len).unwrap_or(0),
        dense.len(),
        dense.first().map(Vec::len).unwrap_or(0),
    );
    let ml = pairwise_cluster_metrics(&loose, &gold);
    let md = pairwise_cluster_metrics(&dense, &gold);
    println!(
        "cluster-implied pairs (loose): P {:.3}  R {:.3}  F1 {:.3}",
        ml.precision, ml.recall, ml.f1
    );
    println!(
        "cluster-implied pairs (dense): P {:.3}  R {:.3}  F1 {:.3}",
        md.precision, md.recall, md.f1
    );

    // Show one typical resolved entity (a small cluster — the largest
    // ones are where chaining errors concentrate, which is exactly why the
    // dense variant exists).
    let typical = dense.iter().rev().find(|c| c.len() >= 2);
    if let Some(cluster) = typical {
        println!("\nexample resolved entity:");
        for node in cluster.iter().take(4) {
            let text = match node {
                Node::Left(id) => format!(
                    "  abt #{}: {}",
                    id.0,
                    catalog.left.record(*id).unwrap().text("name")
                ),
                Node::Right(id) => format!(
                    "  buy #{}: {}",
                    id.0,
                    catalog.right.record(*id).unwrap().text("name")
                ),
            };
            println!("{text}");
        }
    }
}
