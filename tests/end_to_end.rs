//! End-to-end pipeline tests: dataset generation → blocking → auto +
//! manual LFs → labeling model → evaluation, across every benchmark
//! family. These are the "does the whole system hang together" checks —
//! per-module behaviour is covered by each crate's unit tests.

use panda::datasets::{generate, DatasetFamily, GeneratorConfig};
use panda::prelude::*;
use std::sync::Arc;

fn curated(family: DatasetFamily, session: &mut PandaSession) {
    match family {
        DatasetFamily::AbtBuy | DatasetFamily::AmazonGoogle | DatasetFamily::AbtBuyDirty => {
            session.upsert_lf(Arc::new(SimilarityLf::new(
                "name_overlap",
                "name",
                SimilarityConfig::default_jaccard(),
                0.6,
                0.1,
            )));
            session.upsert_lf(Arc::new(ExtractionLf::size_unmatch(&[
                "name",
                "description",
            ])));
            session.upsert_lf(Arc::new(NumericToleranceLf::new(
                "price_close",
                "price",
                0.15,
                0.6,
            )));
        }
        DatasetFamily::DblpAcm | DatasetFamily::DblpScholar | DatasetFamily::CoraDedup => {
            session.upsert_lf(Arc::new(SimilarityLf::new(
                "title_overlap",
                "title",
                SimilarityConfig::default_jaccard(),
                0.7,
                0.15,
            )));
        }
        DatasetFamily::WalmartAmazon => {
            session.upsert_lf(Arc::new(
                SimilarityLf::new(
                    "title_name",
                    "title",
                    SimilarityConfig::default_jaccard(),
                    0.5,
                    0.1,
                )
                .with_attrs("title", "name"),
            ));
        }
        DatasetFamily::FodorsZagats => {
            session.upsert_lf(Arc::new(SimilarityLf::new(
                "name_overlap",
                "name",
                SimilarityConfig::default_jaccard(),
                0.6,
                0.1,
            )));
            session.upsert_lf(Arc::new(SimilarityLf::new(
                "addr_overlap",
                "addr",
                SimilarityConfig::default_jaccard(),
                0.7,
                0.05,
            )));
        }
    }
}

#[test]
fn every_family_reaches_a_sane_f1() {
    // Floors are deliberately conservative — the point is "the pipeline
    // works end to end on every family", not peak tuning.
    let floors = [
        (DatasetFamily::AbtBuy, 0.6),
        (DatasetFamily::AmazonGoogle, 0.6),
        (DatasetFamily::DblpAcm, 0.6),
        (DatasetFamily::DblpScholar, 0.45),
        (DatasetFamily::FodorsZagats, 0.6),
    ];
    for (family, floor) in floors {
        let task = generate(family, &GeneratorConfig::new(9).with_entities(200));
        let mut session = PandaSession::load(task, SessionConfig::default());
        curated(family, &mut session);
        session.apply();
        let m = session.current_metrics().expect("benchmark gold");
        assert!(
            m.f1 >= floor,
            "{}: F1 {:.3} below floor {floor}",
            family.name(),
            m.f1
        );
    }
}

#[test]
fn blocking_keeps_most_gold_matches() {
    for family in DatasetFamily::suite() {
        let task = generate(family, &GeneratorConfig::new(15).with_entities(200));
        let blocker = EmbeddingLshBlocker::new(15);
        let cands = blocker.candidates(&task);
        let stats = panda::embed::blocking_stats(&task, &cands);
        // The heavy-noise scholar family legitimately loses more matches
        // at the blocking stage (as it does on the real dataset).
        let floor = if family == DatasetFamily::DblpScholar {
            0.75
        } else {
            0.85
        };
        assert!(
            stats.recall >= floor,
            "{}: blocking recall {:.3}",
            family.name(),
            stats.recall
        );
        assert!(
            stats.reduction_ratio < 0.5,
            "{}: blocking should prune at least half the cross product",
            family.name()
        );
    }
}

#[test]
fn panda_model_is_competitive_with_snorkel_across_suite() {
    // The E1 shape, asserted loosely: Panda's average F1 over the suite
    // must be at least Snorkel's (it should usually be strictly higher).
    let mut panda_total = 0.0;
    let mut snorkel_total = 0.0;
    for family in DatasetFamily::suite() {
        let task = generate(family, &GeneratorConfig::new(4).with_entities(200));
        let mut session = PandaSession::load(task, SessionConfig::default());
        curated(family, &mut session);
        session.apply();
        let gold = session.gold_vector().unwrap();
        let matrix = session.matrix();
        let cands = session.candidates();
        let pd = PandaModel::new().fit_predict(matrix, Some(cands));
        let sn = SnorkelModel::new().fit_predict(matrix, Some(cands));
        panda_total += metrics_at_half(&pd, &gold).f1;
        snorkel_total += metrics_at_half(&sn, &gold).f1;
    }
    assert!(
        panda_total >= snorkel_total - 0.02,
        "panda avg {:.3} vs snorkel avg {:.3}",
        panda_total / 5.0,
        snorkel_total / 5.0
    );
}

#[test]
fn deployment_phase_scales_the_dev_lfs() {
    let dev_task = generate(
        DatasetFamily::AbtBuy,
        &GeneratorConfig::new(2).with_entities(120),
    );
    let mut session = PandaSession::load(dev_task, SessionConfig::default());
    curated(DatasetFamily::AbtBuy, &mut session);
    session.apply();
    let dev_f1 = session.current_metrics().unwrap().f1;

    let full_task = generate(
        DatasetFamily::AbtBuy,
        &GeneratorConfig::new(99).with_entities(600),
    );
    let result = session.deploy(&full_task);
    let dm = result.metrics.unwrap();
    // LFs are rules, not fitted weights, so the *signal* transfers; the
    // unsupervised model re-fit on a junkier candidate distribution costs
    // precision but must not collapse.
    assert!(
        dm.recall > 0.8,
        "deployed recall {:.3} — the rules should still find the matches",
        dm.recall
    );
    assert!(
        dm.f1 > 0.45,
        "deployed F1 {:.3} collapsed (dev was {dev_f1:.3})",
        dm.f1
    );
    assert!(result.predicted.len() > 100, "finds matches at scale");
}

#[test]
fn dataset_round_trip_through_csv_preserves_pipeline_results() {
    let task = generate(
        DatasetFamily::FodorsZagats,
        &GeneratorConfig::new(8).with_entities(80),
    );
    let dir = std::env::temp_dir().join("panda-e2e-roundtrip");
    panda::datasets::loader::save_task(&dir, "fz", &task).unwrap();
    let reloaded = panda::datasets::loader::load_task(&dir, "fz").unwrap();

    let run = |t: panda::table::TablePair| {
        let mut s = PandaSession::load(t, SessionConfig::default());
        curated(DatasetFamily::FodorsZagats, &mut s);
        s.apply();
        s.current_metrics().unwrap()
    };
    let m1 = run(task);
    let m2 = run(reloaded);
    assert!(
        (m1.f1 - m2.f1).abs() < 1e-9,
        "identical results after disk round trip"
    );
    std::fs::remove_dir_all(&dir).ok();
}
