//! The paper's demonstration scenario (§3, Steps 1–5) as an executable
//! specification: every narrated interaction with its claimed effect.

use panda::datasets::{generate, DatasetFamily, GeneratorConfig};
use panda::prelude::*;
use panda::session::SessionEvent;
use std::sync::Arc;

fn abt_buy() -> panda::table::TablePair {
    generate(
        DatasetFamily::AbtBuy,
        &GeneratorConfig::new(1).with_entities(220),
    )
}

/// Step 1: "the system performs blocking and discovers LFs automatically…
/// the discovered LFs are combined by the labeling model to obtain EM &
/// LF stats."
#[test]
fn step1_load_blocks_discovers_and_fits() {
    let session = PandaSession::load(abt_buy(), SessionConfig::default());
    let events = session.events();
    assert!(matches!(events[0], SessionEvent::Loaded { .. }));
    assert!(matches!(events[1], SessionEvent::AutoLfsDiscovered { count } if count > 0));
    let em = session.em_stats();
    assert!(em.candidate_pairs > 0);
    assert!(em.n_lfs > 0, "auto LFs registered");
    assert!(em.matches_found > 0, "stats panel shows found matches");
    assert_eq!(em.estimated_precision, None, "initialized as NAN");
    assert!(!session.lf_stats().is_empty());
}

/// Step 2: "the system performs smart sampling and shows … likely
/// matching pairs that are abstained or labeled as non-match by the
/// current LFs."
#[test]
fn step2_smart_sampling_surfaces_missed_matches() {
    let mut session = PandaSession::load(abt_buy(), SessionConfig::default());
    let sample = session.smart_sample(25);
    assert!(!sample.is_empty());
    for row in &sample {
        assert!(
            row.model_gamma.unwrap() < 0.5,
            "every sampled pair is currently missed by the model"
        );
    }
    // The point of smart sampling: a decent fraction of what it shows are
    // real matches, despite the model missing them. Random pairs would be
    // overwhelmingly non-matches.
    let hits = sample.iter().filter(|r| r.gold == Some(true)).count();
    let mut rnd_session = PandaSession::load(abt_buy(), SessionConfig::default());
    let rnd = rnd_session.random_sample(25);
    let rnd_hits = rnd.iter().filter(|r| r.gold == Some(true)).count();
    assert!(
        hits >= rnd_hits,
        "smart sampling ({hits}) should beat or tie random sampling ({rnd_hits})"
    );
}

/// Step 3: writing `name_overlap` and applying it incrementally.
#[test]
fn step3_new_lf_applies_incrementally() {
    let mut session = PandaSession::load(abt_buy(), SessionConfig::default());
    let n_auto = session.registry().len();
    session.upsert_lf(Arc::new(SimilarityLf::new(
        "name_overlap",
        "name",
        SimilarityConfig::default_jaccard(),
        0.4,
        0.1,
    )));
    let report = session.apply();
    assert_eq!(
        report.applied,
        vec!["name_overlap"],
        "only the new LF executes"
    );
    assert_eq!(report.reused.len(), n_auto, "auto LF columns are reused");
}

/// Step 4: "the user … changes the threshold of being a match in LF
/// name_overlap from > 0.4 to > 0.6. After re-applying the LF, the FPR of
/// the LF decreases."
#[test]
fn step4_tightening_threshold_cuts_estimated_fpr() {
    let mut session = PandaSession::load(abt_buy(), SessionConfig::default());
    let fpr_at = |s: &mut PandaSession, threshold: f64| -> f64 {
        s.upsert_lf(Arc::new(SimilarityLf::new(
            "name_overlap",
            "name",
            SimilarityConfig::default_jaccard(),
            threshold,
            0.1,
        )));
        s.apply();
        s.lf_stats()
            .into_iter()
            .find(|r| r.name == "name_overlap")
            .and_then(|r| r.est_fpr)
            .expect("model fitted")
    };
    let fpr_loose = fpr_at(&mut session, 0.4);
    // The user inspects the likely false positives before editing.
    let offenders = session.debug_pairs("name_overlap", DebugQuery::LikelyFalsePositives, 50);
    for row in &offenders {
        assert!(row.model_gamma.unwrap() < 0.5);
    }
    let fpr_tight = fpr_at(&mut session, 0.6);
    assert!(
        fpr_tight < fpr_loose,
        "estimated FPR must drop when tightening 0.4 → 0.6: {fpr_loose:.4} → {fpr_tight:.4}"
    );
    // And the estimate tracks reality: true FPR drops too.
    let row = session
        .lf_stats()
        .into_iter()
        .find(|r| r.name == "name_overlap")
        .unwrap();
    assert!(row.true_fpr.unwrap() <= fpr_loose + 0.05);
}

/// Step 5: spot-labeling sampled predicted matches yields the estimated
/// precision in the EM Stats Panel.
#[test]
fn step5_estimated_precision_from_spot_labels() {
    let mut session = PandaSession::load(abt_buy(), SessionConfig::default());
    session.upsert_lf(Arc::new(SimilarityLf::new(
        "name_overlap",
        "name",
        SimilarityConfig::default_jaccard(),
        0.6,
        0.1,
    )));
    session.apply();

    let sample = session.sample_predicted_matches(20);
    assert!(!sample.is_empty());
    for row in &sample {
        assert!(
            row.model_gamma.unwrap() >= 0.5,
            "sampled from predicted matches"
        );
        session.label_pair(row.candidate_index, row.gold.unwrap());
    }
    let em = session.em_stats();
    let est = em.estimated_precision.expect("labels provided");
    let truth = session.current_metrics().unwrap().precision;
    // 20 spot labels estimate precision within a wide-but-useful band.
    assert!(
        (est - truth).abs() < 0.35,
        "estimated {est:.3} vs true {truth:.3} precision"
    );
}

/// The full loop improves the solution: auto LFs alone vs auto + the
/// user's session work.
#[test]
fn the_workflow_improves_f1() {
    let base = PandaSession::load(abt_buy(), SessionConfig::default());
    let f1_auto = base.current_metrics().unwrap().f1;

    let mut session = PandaSession::load(abt_buy(), SessionConfig::default());
    for lf in [
        Arc::new(SimilarityLf::new(
            "name_overlap",
            "name",
            SimilarityConfig::default_jaccard(),
            0.6,
            0.1,
        )) as panda::lf::BoxedLf,
        Arc::new(ExtractionLf::size_unmatch(&["name", "description"])),
        Arc::new(NumericToleranceLf::new("price_close", "price", 0.15, 0.6)),
    ] {
        session.upsert_lf(lf);
    }
    session.apply();
    let f1_final = session.current_metrics().unwrap().f1;
    assert!(
        f1_final >= f1_auto,
        "user LFs must not hurt: auto {f1_auto:.3} → final {f1_final:.3}"
    );
}
