//! End-to-end telemetry: a full session run with metrics enabled must
//! produce a snapshot whose JSON parses and carries the per-stage spans
//! and counters the CLI/CI contract promises.
//!
//! Everything lives in ONE `#[test]`: the obs registry is process-global,
//! and Rust runs tests in one binary concurrently — separate tests would
//! race on `set_enabled`/`reset`.

use panda::datasets::{generate, DatasetFamily, GeneratorConfig};
use panda::obs;
use panda::session::{PandaSession, SessionConfig};

#[test]
fn snapshot_covers_the_pipeline_and_serializes() {
    obs::set_enabled(true);
    obs::reset();

    let tables = generate(
        DatasetFamily::FodorsZagats,
        &GeneratorConfig::new(5).with_entities(80),
    );
    let session = PandaSession::load(tables, SessionConfig::default());
    assert!(session.em_stats().candidate_pairs > 0);

    let snap = obs::snapshot();

    // The stage spans the ISSUE/CI contract names.
    for key in [
        "session.load",
        "blocking.candidates",
        "autolf.generate",
        "autolf.score_grid",
        "lf.matrix.apply",
        "model.panda.fit",
    ] {
        let stats = snap
            .spans
            .get(key)
            .unwrap_or_else(|| panic!("span {key:?} missing: {:?}", snap.spans.keys()));
        assert!(stats.count >= 1, "{key}: count");
        assert!(stats.min_ns <= stats.max_ns, "{key}: min/max ordering");
        assert!(stats.total_ns >= stats.max_ns, "{key}: total bounds max");
    }

    // Counters: EM telemetry (one per warm start) and cache traffic.
    assert!(
        snap.counters
            .keys()
            .filter(|k| k.starts_with("model.panda.em_iters."))
            .count()
            >= 3,
        "per-init EM iteration counters: {:?}",
        snap.counters.keys()
    );
    assert_eq!(
        snap.counters
            .keys()
            .filter(|k| k.starts_with("model.panda.chosen_init."))
            .count(),
        1,
        "exactly one chosen init"
    );
    assert!(snap.counters["text.token_cache.misses"] > 0);
    assert!(snap.counters["autolf.grid_cells"] > 0);
    assert!(snap.counters["lf.matrix.labels_computed"] > 0);

    // The JSON snapshot round-trips through an independent parser.
    let json = snap.to_json();
    let value = serde_json::parse_value(&json).expect("snapshot JSON parses");
    let spans = value.get_field("spans").expect("spans object");
    let fit = spans.get_field("model.panda.fit").expect("fit span");
    assert!(fit.get_field("count").is_some());
    assert!(fit.get_field("total_ns").is_some());
    assert!(value
        .get_field("counters")
        .and_then(|c| c.get_field("autolf.emitted"))
        .is_some());
    assert!(value.get_field("gauges").is_some());

    // reset() empties the registry; with obs disabled nothing records.
    obs::reset();
    obs::set_enabled(false);
    {
        let _span = obs::span("model.panda.fit");
        obs::counter_add("autolf.grid_cells", 1);
    }
    let after = obs::snapshot();
    assert!(after.spans.is_empty(), "disabled path records no spans");
    assert!(
        after.counters.is_empty(),
        "disabled path records no counters"
    );
}
