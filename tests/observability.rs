//! End-to-end telemetry: a full session run with metrics and the journal
//! enabled must produce (a) a snapshot whose JSON parses and carries the
//! per-stage spans and counters the CLI/CI contract promises, and (b) a
//! journal holding the provenance events DESIGN.md §8 documents, with
//! every recorded name conforming to the dotted naming convention.
//!
//! Everything lives in ONE `#[test]`: the obs registry is process-global,
//! and Rust runs tests in one binary concurrently — separate tests would
//! race on `set_enabled`/`reset`.

use panda::datasets::{generate, DatasetFamily, GeneratorConfig};
use panda::obs;
use panda::session::{PandaSession, SessionConfig};
use std::collections::BTreeSet;

#[test]
fn snapshot_covers_the_pipeline_and_serializes() {
    obs::reset();
    obs::set_enabled(true);
    obs::set_journal_enabled(true);

    let tables = generate(
        DatasetFamily::FodorsZagats,
        &GeneratorConfig::new(5).with_entities(80),
    );
    let session = PandaSession::load(tables, SessionConfig::default());
    assert!(session.em_stats().candidate_pairs > 0);

    let snap = obs::snapshot();

    // The stage spans the ISSUE/CI contract names.
    for key in [
        "session.load",
        "blocking.candidates",
        "autolf.generate",
        "autolf.score_grid",
        "lf.matrix.apply",
        "model.panda.fit",
    ] {
        let stats = snap
            .spans
            .get(key)
            .unwrap_or_else(|| panic!("span {key:?} missing: {:?}", snap.spans.keys()));
        assert!(stats.count >= 1, "{key}: count");
        assert!(stats.min_ns <= stats.max_ns, "{key}: min/max ordering");
        assert!(stats.total_ns >= stats.max_ns, "{key}: total bounds max");
    }

    // Counters: EM telemetry (one per warm start) and cache traffic.
    assert!(
        snap.counters
            .keys()
            .filter(|k| k.starts_with("model.panda.em_iters."))
            .count()
            >= 3,
        "per-init EM iteration counters: {:?}",
        snap.counters.keys()
    );
    assert_eq!(
        snap.counters
            .keys()
            .filter(|k| k.starts_with("model.panda.chosen_init."))
            .count(),
        1,
        "exactly one chosen init"
    );
    assert!(snap.counters["text.token_cache.misses"] > 0);
    assert!(snap.counters["autolf.grid_cells"] > 0);
    assert!(snap.counters["lf.matrix.labels_computed"] > 0);

    // The JSON snapshot round-trips through an independent parser.
    let json = snap.to_json();
    let value = serde_json::parse_value(&json).expect("snapshot JSON parses");
    let spans = value.get_field("spans").expect("spans object");
    let fit = spans.get_field("model.panda.fit").expect("fit span");
    assert!(fit.get_field("count").is_some());
    assert!(fit.get_field("total_ns").is_some());
    assert!(value
        .get_field("counters")
        .and_then(|c| c.get_field("autolf.emitted"))
        .is_some());
    assert!(value.get_field("gauges").is_some());

    // Span histograms: each stage's log₂ buckets must account for every
    // recorded call.
    for (key, stats) in &snap.spans {
        let hist_total: u64 = stats.hist.iter().sum();
        assert_eq!(hist_total, stats.count, "{key}: histogram covers count");
    }

    // ── Journal: provenance events from the same run ──
    let dump = obs::journal_drain();
    assert_eq!(dump.dropped, 0, "nothing dropped at the capacity bound");
    let kinds: BTreeSet<&str> = dump.events.iter().map(|e| e.kind.as_str()).collect();
    for kind in [
        "session.loaded",
        "model.em.iter",
        "autolf.cell",
        "autolf.emit",
        "lf.apply",
        "lf.stats",
        "span",
    ] {
        assert!(
            kinds.contains(kind),
            "journal kind {kind:?} missing: {kinds:?}"
        );
    }
    // Sequence numbers are strictly increasing (process-wide emission order).
    assert!(
        dump.events.windows(2).all(|w| w[0].seq < w[1].seq),
        "journal seq strictly increasing"
    );
    // Every closed span recorded in the journal names a span the snapshot
    // aggregated — the two views describe the same run.
    for e in dump.events.iter().filter(|e| e.kind == "span") {
        let Some(obs::FieldValue::Str(name)) = e.field("name") else {
            panic!("span event without a name field");
        };
        assert!(
            snap.spans.contains_key(name),
            "journal span {name:?} in snapshot"
        );
    }
    // JSONL framing: every line re-parses as one object with a kind.
    for line in dump.to_jsonl().lines() {
        let v = serde_json::parse_value(line).unwrap_or_else(|e| panic!("bad JSONL {line:?}: {e}"));
        assert!(v.get_field("kind").is_some(), "JSONL line has kind: {line}");
    }

    // ── Naming convention (DESIGN.md §8 / crates/obs docs): every
    // registered metric name and journal event kind is dotted lower-case.
    // "span" is the one structural kind exempt from the ≥2-segment rule.
    for name in snap
        .spans
        .keys()
        .chain(snap.counters.keys())
        .chain(snap.gauges.keys())
    {
        assert!(
            obs::is_valid_metric_name(name),
            "metric name {name:?} violates the dotted naming convention"
        );
    }
    for kind in &kinds {
        assert!(
            *kind == "span" || obs::is_valid_metric_name(kind),
            "journal kind {kind:?} violates the dotted naming convention"
        );
    }

    // reset() empties the registry; with obs disabled nothing records.
    obs::reset();
    obs::set_enabled(false);
    obs::set_journal_enabled(false);
    {
        let _span = obs::span("model.panda.fit");
        obs::counter_add("autolf.grid_cells", 1);
        obs::event("autolf.cell").field("decision", "keep").emit();
    }
    let after = obs::snapshot();
    assert!(after.spans.is_empty(), "disabled path records no spans");
    assert!(
        after.counters.is_empty(),
        "disabled path records no counters"
    );
    assert!(
        obs::journal_drain().events.is_empty(),
        "disabled path records no journal events"
    );
}
