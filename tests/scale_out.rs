//! The paper's §4 scaling story, end to end: develop LFs on a
//! down-sampled task, then apply the final LF set to the full dataset in
//! the deployment phase.

use panda::datasets::{generate, DatasetFamily, GeneratorConfig};
use panda::prelude::*;
use panda::session::downsample_task;
use std::sync::Arc;

#[test]
fn develop_on_sample_deploy_on_full() {
    // "Millions of records" stands in as 800 entities — the mechanics are
    // scale-free; test time isn't.
    let full = generate(
        DatasetFamily::FodorsZagats,
        &GeneratorConfig::new(1).with_entities(800),
    );
    let full_rows = (full.left.len(), full.right.len());

    // Development phase on a ~15% sample.
    let dev_task = downsample_task(&full, 120, 120, 7);
    assert!(dev_task.left.len() <= 120 && dev_task.right.len() <= 120);
    assert!(
        !dev_task.gold.as_ref().unwrap().is_empty(),
        "sample retains some gold matches to develop against"
    );

    let mut session = PandaSession::load(dev_task, SessionConfig::default());
    session.upsert_lf(Arc::new(SimilarityLf::new(
        "name_overlap",
        "name",
        SimilarityConfig::default_jaccard(),
        0.6,
        0.1,
    )));
    session.upsert_lf(panda::lf::phone_matcher("phone_eq", "phone"));
    session.upsert_lf(panda::lf::address_matcher("addr_match", "addr"));
    session.apply();
    let dev_m = session.current_metrics().unwrap();
    assert!(dev_m.f1 > 0.6, "development-phase quality: {dev_m:?}");

    // Deployment phase on the full tables.
    let result = session.deploy(&full);
    let m = result.metrics.unwrap();
    assert!(
        m.f1 > 0.6,
        "deployed F1 {:.3} on the full {}×{} task",
        m.f1,
        full_rows.0,
        full_rows.1
    );
    assert!(m.recall > 0.7, "rules found the matches at scale: {m:?}");
}

#[test]
fn builtin_matchers_work_inside_a_session() {
    let task = generate(
        DatasetFamily::FodorsZagats,
        &GeneratorConfig::new(44).with_entities(150),
    );
    // Builtin-matcher-only solution: no similarity thresholds at all.
    let mut session = PandaSession::load(
        task,
        SessionConfig {
            auto_lfs: false,
            ..SessionConfig::default()
        },
    );
    session.upsert_lf(panda::lf::phone_matcher("phone_eq", "phone"));
    session.upsert_lf(panda::lf::address_matcher("addr_match", "addr"));
    session.upsert_lf(Arc::new(SimilarityLf::new(
        "name_overlap",
        "name",
        SimilarityConfig::default_jaccard(),
        0.6,
        0.1,
    )));
    session.apply();
    let m = session.current_metrics().unwrap();
    assert!(
        m.f1 > 0.7,
        "builtin matchers give a strong restaurant solution: {m:?}"
    );
}
