//! Reproducibility guarantees: everything downstream of a seed is
//! bit-identical across runs. Experiments depend on this (EXPERIMENTS.md
//! numbers must regenerate exactly), and so does debugging.

use panda::datasets::{generate, DatasetFamily, GeneratorConfig};
use panda::prelude::*;
use std::sync::Arc;

fn session(seed: u64) -> PandaSession {
    let task = generate(
        DatasetFamily::AbtBuy,
        &GeneratorConfig::new(3).with_entities(120),
    );
    let mut s = PandaSession::load(
        task,
        SessionConfig {
            seed,
            ..SessionConfig::default()
        },
    );
    s.upsert_lf(Arc::new(SimilarityLf::new(
        "name_overlap",
        "name",
        SimilarityConfig::default_jaccard(),
        0.6,
        0.1,
    )));
    s.apply();
    s
}

#[test]
fn same_seed_same_everything() {
    let a = session(9);
    let b = session(9);
    assert_eq!(
        a.candidates().pairs(),
        b.candidates().pairs(),
        "blocking deterministic"
    );
    assert_eq!(a.posteriors(), b.posteriors(), "model fit deterministic");
    assert_eq!(
        serde_json::to_string(&a.snapshot()).unwrap(),
        serde_json::to_string(&b.snapshot()).unwrap(),
        "panel state deterministic"
    );
}

#[test]
fn different_blocking_seed_changes_candidates_not_correctness() {
    let a = session(9);
    let b = session(10);
    // LSH hyperplanes differ → candidate sets differ…
    assert_ne!(a.candidates().pairs(), b.candidates().pairs());
    // …but quality stays in the same band (the pipeline isn't brittle to
    // the seed).
    let fa = a.current_metrics().unwrap().f1;
    let fb = b.current_metrics().unwrap().f1;
    assert!(
        (fa - fb).abs() < 0.2,
        "seed 9 F1 {fa:.3} vs seed 10 F1 {fb:.3}"
    );
}

/// The parallel-execution layer must be invisible in the output: auto-LF
/// generation and label-matrix application are byte-identical whether the
/// executor runs serial (`PANDA_WORKERS=1`) or with a thread pool. The
/// `PANDA_WORKERS` env var is read once per process, so the programmatic
/// override is the test mechanism for flipping the worker count.
#[test]
fn worker_count_never_changes_results() {
    let task = generate(
        DatasetFamily::AbtBuy,
        &GeneratorConfig::new(77).with_entities(120),
    );

    #[derive(Debug, PartialEq)]
    struct Observed {
        candidates: Vec<CandidatePair>,
        lfs: Vec<(String, String, String, String, u64, u64, usize)>,
        columns: Vec<(String, Vec<i8>)>,
        triangles: usize,
    }
    let run = |workers: usize| -> Observed {
        panda::exec::set_worker_override(Some(workers));
        let cands = EmbeddingLshBlocker::new(7).candidates(&task);
        let generated = generate_auto_lfs(&task, &cands, &AutoLfConfig::default());
        let lfs = generated
            .iter()
            .map(|g| {
                (
                    g.lf.name().to_string(),
                    g.config_id.clone(),
                    g.attribute.clone(),
                    g.right_attribute.clone(),
                    g.threshold.to_bits(),
                    g.est_precision.to_bits(),
                    g.est_support,
                )
            })
            .collect();
        let mut reg = LfRegistry::new();
        reg.upsert(Arc::new(SimilarityLf::new(
            "name_overlap",
            "name",
            SimilarityConfig::default_jaccard(),
            0.6,
            0.1,
        )));
        for g in generated {
            reg.upsert(Arc::new(g.lf));
        }
        let mut matrix = LabelMatrix::new();
        let report = matrix.apply(&reg, &task, &cands);
        assert!(report.failed.is_empty());
        let columns = matrix
            .columns()
            .map(|(n, col)| (n.to_string(), col.to_vec()))
            .collect();
        let triangles =
            panda::model::TransitivityGraph::build(&cands, TransitivityMode::TwoTable, 0)
                .n_triangles();
        panda::exec::set_worker_override(None);
        Observed {
            candidates: cands.pairs().to_vec(),
            lfs,
            columns,
            triangles,
        }
    };

    let serial = run(1);
    let pooled = run(4);
    assert_eq!(
        serial, pooled,
        "results must be invariant under PANDA_WORKERS"
    );
}

#[test]
fn smart_samples_are_replayable() {
    let mut a = session(9);
    let mut b = session(9);
    let sa: Vec<usize> = a
        .smart_sample(15)
        .iter()
        .map(|r| r.candidate_index)
        .collect();
    let sb: Vec<usize> = b
        .smart_sample(15)
        .iter()
        .map(|r| r.candidate_index)
        .collect();
    assert_eq!(sa, sb);
    let ra: Vec<usize> = a
        .random_sample(15)
        .iter()
        .map(|r| r.candidate_index)
        .collect();
    let rb: Vec<usize> = b
        .random_sample(15)
        .iter()
        .map(|r| r.candidate_index)
        .collect();
    assert_eq!(ra, rb, "even the 'random' baseline is seeded");
}
