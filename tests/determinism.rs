//! Reproducibility guarantees: everything downstream of a seed is
//! bit-identical across runs. Experiments depend on this (EXPERIMENTS.md
//! numbers must regenerate exactly), and so does debugging.

use panda::datasets::{generate, DatasetFamily, GeneratorConfig};
use panda::prelude::*;
use std::sync::Arc;

fn session(seed: u64) -> PandaSession {
    let task = generate(
        DatasetFamily::AbtBuy,
        &GeneratorConfig::new(3).with_entities(120),
    );
    let mut s = PandaSession::load(task, SessionConfig { seed, ..SessionConfig::default() });
    s.upsert_lf(Arc::new(SimilarityLf::new(
        "name_overlap",
        "name",
        SimilarityConfig::default_jaccard(),
        0.6,
        0.1,
    )));
    s.apply();
    s
}

#[test]
fn same_seed_same_everything() {
    let a = session(9);
    let b = session(9);
    assert_eq!(a.candidates().pairs(), b.candidates().pairs(), "blocking deterministic");
    assert_eq!(a.posteriors(), b.posteriors(), "model fit deterministic");
    assert_eq!(
        serde_json::to_string(&a.snapshot()).unwrap(),
        serde_json::to_string(&b.snapshot()).unwrap(),
        "panel state deterministic"
    );
}

#[test]
fn different_blocking_seed_changes_candidates_not_correctness() {
    let a = session(9);
    let b = session(10);
    // LSH hyperplanes differ → candidate sets differ…
    assert_ne!(a.candidates().pairs(), b.candidates().pairs());
    // …but quality stays in the same band (the pipeline isn't brittle to
    // the seed).
    let fa = a.current_metrics().unwrap().f1;
    let fb = b.current_metrics().unwrap().f1;
    assert!((fa - fb).abs() < 0.2, "seed 9 F1 {fa:.3} vs seed 10 F1 {fb:.3}");
}

#[test]
fn smart_samples_are_replayable() {
    let mut a = session(9);
    let mut b = session(9);
    let sa: Vec<usize> = a.smart_sample(15).iter().map(|r| r.candidate_index).collect();
    let sb: Vec<usize> = b.smart_sample(15).iter().map(|r| r.candidate_index).collect();
    assert_eq!(sa, sb);
    let ra: Vec<usize> = a.random_sample(15).iter().map(|r| r.candidate_index).collect();
    let rb: Vec<usize> = b.random_sample(15).iter().map(|r| r.candidate_index).collect();
    assert_eq!(ra, rb, "even the 'random' baseline is seeded");
}
