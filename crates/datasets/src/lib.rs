//! Synthetic EM benchmark generators.
//!
//! The paper evaluates on the Leipzig entity-resolution benchmarks
//! (Abt-Buy and friends) and cites the Magellan repository. Those datasets
//! are not redistributable inside this reproduction, so this crate
//! generates *synthetic equivalents*: for each benchmark family it samples
//! a catalog of ground-truth entities from domain vocabularies, renders
//! each entity into the left and/or right table with independent
//! formatting conventions and noise, and records the entity identity as a
//! gold [`panda_table::MatchSet`].
//!
//! The generators control exactly the statistical structure the paper's
//! claims depend on:
//!
//! * **class imbalance** — most candidate pairs are non-matches,
//! * a **duplicate-free left (reference) table** — the Auto-FuzzyJoin
//!   assumption, which [Li et al. 2021] found to hold on >90% of benchmark
//!   datasets,
//! * **typos/abbreviations/unit rewrites/missing values** ([`perturb`]) so
//!   no single similarity measure is perfect,
//! * optional **duplicate clusters** in the right table (DBLP-Scholar
//!   style) and a single-table **dedup family** (Cora style) where the
//!   transitivity constraint has triangles to act on.
//!
//! See DESIGN.md §2 for the full substitution rationale.

pub mod entity;
pub mod families;
pub mod loader;
pub mod perturb;

pub use families::{generate, standard_suite, DatasetFamily, GeneratorConfig};
pub use perturb::{PerturbConfig, Perturber};
