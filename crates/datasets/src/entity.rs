//! Ground-truth entity catalogs and their textual renderings.
//!
//! Each generator first samples *entities* (the real-world objects), then
//! renders each entity once per table with table-specific conventions.
//! Renderings of the same entity are gold matches.

use rand::rngs::SmallRng;
use rand::Rng;

// ---------------------------------------------------------------------------
// Vocabularies
// ---------------------------------------------------------------------------

pub(crate) const BRANDS: &[&str] = &[
    "sony",
    "samsung",
    "panasonic",
    "toshiba",
    "sharp",
    "philips",
    "lg",
    "jvc",
    "pioneer",
    "canon",
    "nikon",
    "olympus",
    "kodak",
    "apple",
    "sandisk",
    "garmin",
    "tomtom",
    "bose",
    "yamaha",
    "denon",
    "onkyo",
    "logitech",
    "netgear",
    "linksys",
];

pub(crate) const PRODUCT_CATEGORIES: &[(&str, bool)] = &[
    // (category, has_screen_size)
    ("lcd tv", true),
    ("plasma hdtv", true),
    ("led monitor", true),
    ("digital camera", false),
    ("camcorder", false),
    ("gps navigator", true),
    ("av receiver", false),
    ("blu-ray player", false),
    ("home theater system", false),
    ("wireless router", false),
    ("mp3 player", false),
    ("speaker system", false),
];

pub(crate) const COLORS: &[&str] = &[
    "black", "silver", "white", "titanium", "graphite", "red", "blue",
];

pub(crate) const FEATURES: &[&str] = &[
    "1080p",
    "720p",
    "hdmi",
    "usb",
    "wifi",
    "bluetooth",
    "remote control",
    "wall mountable",
    "energy star",
    "widescreen",
    "progressive scan",
    "image stabilization",
    "zoom lens",
    "touch screen",
    "dolby digital",
    "surround sound",
];

pub(crate) const FIRST_NAMES: &[&str] = &[
    "james", "mary", "wei", "anna", "david", "elena", "rajesh", "yuki", "carlos", "sofia",
    "michael", "li", "ahmed", "julia", "peter", "nina", "thomas", "sara", "ivan", "grace",
];

pub(crate) const LAST_NAMES: &[&str] = &[
    "smith", "johnson", "chen", "kumar", "garcia", "mueller", "tanaka", "ivanov", "rossi", "kim",
    "nguyen", "brown", "davis", "wilson", "martin", "anderson", "taylor", "thomas", "lee", "white",
    "harris", "clark", "lewis", "walker", "hall", "young",
];

pub(crate) const TITLE_TOPICS: &[&str] = &[
    "query optimization",
    "entity matching",
    "data integration",
    "stream processing",
    "transaction management",
    "index structures",
    "schema mapping",
    "data cleaning",
    "graph databases",
    "distributed joins",
    "approximate counting",
    "workload forecasting",
    "concurrency control",
    "columnar storage",
    "view maintenance",
    "provenance tracking",
];

pub(crate) const TITLE_MODIFIERS: &[&str] = &[
    "efficient",
    "scalable",
    "adaptive",
    "robust",
    "incremental",
    "parallel",
    "learned",
    "probabilistic",
    "distributed",
    "online",
];

pub(crate) const TITLE_PATTERNS: &[&str] = &[
    "towards",
    "a survey of",
    "on the complexity of",
    "rethinking",
    "a framework for",
    "benchmarking",
];

pub(crate) const VENUES_FULL: &[(&str, &str)] = &[
    // (full, abbreviated)
    ("proceedings of the vldb endowment", "pvldb"),
    (
        "acm sigmod international conference on management of data",
        "sigmod",
    ),
    ("ieee international conference on data engineering", "icde"),
    (
        "international conference on extending database technology",
        "edbt",
    ),
    ("acm symposium on principles of database systems", "pods"),
    ("conference on innovative data systems research", "cidr"),
];

pub(crate) const RESTAURANT_NAMES: &[&str] = &[
    "golden dragon",
    "la piazza",
    "blue bayou",
    "the grill house",
    "sakura garden",
    "casa bonita",
    "le petit bistro",
    "spice route",
    "ocean pearl",
    "mountain view cafe",
    "red lantern",
    "olive grove",
    "the copper pot",
    "bella notte",
    "saffron palace",
    "harbor lights",
    "green bamboo",
    "rustic table",
    "silver spoon",
    "maple and oak",
];

pub(crate) const STREETS: &[&str] = &[
    "main st",
    "oak ave",
    "broadway",
    "sunset blvd",
    "5th ave",
    "park rd",
    "elm st",
    "lake shore dr",
    "market st",
    "hill crest way",
];

pub(crate) const CITIES: &[&str] = &[
    "new york",
    "los angeles",
    "chicago",
    "san francisco",
    "atlanta",
    "seattle",
    "boston",
    "austin",
    "denver",
    "portland",
];

pub(crate) const CUISINES: &[&str] = &[
    "chinese",
    "italian",
    "cajun",
    "american",
    "japanese",
    "mexican",
    "french",
    "indian",
    "seafood",
    "fusion",
    "thai",
    "mediterranean",
];

// ---------------------------------------------------------------------------
// Entities
// ---------------------------------------------------------------------------

/// A consumer-electronics product (Abt-Buy / Amazon-Google style).
#[derive(Debug, Clone)]
pub struct ProductEntity {
    /// Brand name.
    pub brand: &'static str,
    /// Model code, unique per entity (e.g. `kdl-40v2500`).
    pub model_code: String,
    /// Category phrase.
    pub category: &'static str,
    /// Screen size in inches, when the category has one.
    pub size_in: Option<u32>,
    /// Color.
    pub color: &'static str,
    /// Feature phrases for the description.
    pub features: Vec<&'static str>,
    /// List price.
    pub price: f64,
}

impl ProductEntity {
    /// Sample a product. `serial` is baked into the model code so entities
    /// are pairwise distinct (keeps the reference table duplicate-free).
    pub fn sample(rng: &mut SmallRng, serial: usize) -> Self {
        let brand = BRANDS[rng.gen_range(0..BRANDS.len())];
        let (category, has_size) = PRODUCT_CATEGORIES[rng.gen_range(0..PRODUCT_CATEGORIES.len())];
        let size_in = has_size.then(|| {
            [19u32, 22, 26, 32, 37, 40, 42, 46, 50, 52, 55, 58, 60][rng.gen_range(0..13usize)]
        });
        let prefix: String = (0..3)
            .map(|_| (b'a' + rng.gen_range(0..26u8)) as char)
            .collect();
        let model_code = format!(
            "{}-{}{}{}",
            prefix,
            size_in.unwrap_or_else(|| rng.gen_range(1..99)),
            (b'a' + (serial % 26) as u8) as char,
            1000 + serial
        );
        let n_features = rng.gen_range(2..5);
        let mut features = Vec::with_capacity(n_features);
        while features.len() < n_features {
            let f = FEATURES[rng.gen_range(0..FEATURES.len())];
            if !features.contains(&f) {
                features.push(f);
            }
        }
        ProductEntity {
            brand,
            model_code,
            category,
            size_in,
            color: COLORS[rng.gen_range(0..COLORS.len())],
            features,
            price: rng.gen_range(40..2400) as f64 + 0.99,
        }
    }

    /// Render the product name in one of several styles (tables differ in
    /// style systematically, like real catalogs do).
    pub fn render_name(&self, style: NameStyle) -> String {
        let size = |unit: &str| {
            self.size_in
                .map(|s| format!("{s}{unit} "))
                .unwrap_or_default()
        };
        match style {
            NameStyle::BrandFirst => format!(
                "{} {} {}{}",
                self.brand,
                self.model_code,
                size("in"),
                self.category
            ),
            NameStyle::SizeQuoted => format!(
                "{} {}{} {} {}",
                self.brand,
                size("'").trim_end().to_string() + " ",
                self.category,
                self.model_code,
                self.color
            ),
            NameStyle::Terse => format!("{} {}", self.brand, self.model_code),
        }
    }

    /// Render the long description.
    pub fn render_description(&self) -> String {
        format!(
            "{} {} {} with {} in {}",
            self.brand,
            self.category,
            self.size_in
                .map(|s| format!("{s} inch"))
                .unwrap_or_else(|| "compact".to_string()),
            self.features.join(" "),
            self.color
        )
    }
}

/// Name rendering conventions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NameStyle {
    /// `sony kdl-40v2500 40in lcd tv`
    BrandFirst,
    /// `sony 40' lcd tv kdl-40v2500 black`
    SizeQuoted,
    /// `sony kdl-40v2500`
    Terse,
}

/// A bibliographic record (DBLP-ACM / DBLP-Scholar style).
#[derive(Debug, Clone)]
pub struct PaperEntity {
    /// Author names, `(first, last)`.
    pub authors: Vec<(&'static str, &'static str)>,
    /// Paper title.
    pub title: String,
    /// `(full venue, abbreviation)`.
    pub venue: (&'static str, &'static str),
    /// Publication year.
    pub year: u32,
    /// Page range start.
    pub first_page: u32,
}

impl PaperEntity {
    /// Sample a paper; `serial` disambiguates titles.
    pub fn sample(rng: &mut SmallRng, serial: usize) -> Self {
        let n_authors = rng.gen_range(1..5);
        let mut authors = Vec::with_capacity(n_authors);
        while authors.len() < n_authors {
            let a = (
                FIRST_NAMES[rng.gen_range(0..FIRST_NAMES.len())],
                LAST_NAMES[rng.gen_range(0..LAST_NAMES.len())],
            );
            if !authors.contains(&a) {
                authors.push(a);
            }
        }
        let title = format!(
            "{} {} {} {}",
            TITLE_PATTERNS[rng.gen_range(0..TITLE_PATTERNS.len())],
            TITLE_MODIFIERS[rng.gen_range(0..TITLE_MODIFIERS.len())],
            TITLE_TOPICS[rng.gen_range(0..TITLE_TOPICS.len())],
            // Serial keeps titles pairwise distinct without looking odd.
            roman(serial % 40 + 1),
        );
        PaperEntity {
            authors,
            title,
            venue: VENUES_FULL[rng.gen_range(0..VENUES_FULL.len())],
            year: rng.gen_range(1995..2021),
            first_page: rng.gen_range(1..2000),
        }
    }

    /// `"j. smith, w. chen"` (abbreviated) or `"james smith, wei chen"`.
    pub fn render_authors(&self, abbreviated: bool) -> String {
        self.authors
            .iter()
            .map(|(f, l)| {
                if abbreviated {
                    format!("{}. {}", &f[..1], l)
                } else {
                    format!("{f} {l}")
                }
            })
            .collect::<Vec<_>>()
            .join(", ")
    }
}

/// A restaurant record (Fodors-Zagats style).
#[derive(Debug, Clone)]
pub struct RestaurantEntity {
    /// Restaurant name.
    pub name: String,
    /// Street number.
    pub street_no: u32,
    /// Street name.
    pub street: &'static str,
    /// City.
    pub city: &'static str,
    /// Phone number digits.
    pub phone: String,
    /// Cuisine label.
    pub cuisine: &'static str,
}

impl RestaurantEntity {
    /// Sample a restaurant; `serial` disambiguates names.
    pub fn sample(rng: &mut SmallRng, serial: usize) -> Self {
        let base = RESTAURANT_NAMES[rng.gen_range(0..RESTAURANT_NAMES.len())];
        // Distinct names: suffix a neighbourhood-ish qualifier per serial.
        let name = format!("{} {}", base, CITIES[serial % CITIES.len()]);
        RestaurantEntity {
            name,
            street_no: rng.gen_range(1..9999),
            street: STREETS[rng.gen_range(0..STREETS.len())],
            city: CITIES[rng.gen_range(0..CITIES.len())],
            phone: format!(
                "{:03}-{:03}-{:04}",
                rng.gen_range(200..999),
                rng.gen_range(200..999),
                rng.gen_range(0..9999)
            ),
            cuisine: CUISINES[rng.gen_range(0..CUISINES.len())],
        }
    }
}

/// Lowercase roman numerals 1..=40 (used to disambiguate paper titles the
/// way real series do: "part iv").
fn roman(mut n: usize) -> String {
    const VALS: &[(usize, &str)] = &[(10, "x"), (9, "ix"), (5, "v"), (4, "iv"), (1, "i")];
    let mut out = String::new();
    for &(v, s) in VALS {
        while n >= v {
            out.push_str(s);
            n -= v;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn products_are_pairwise_distinct() {
        let mut rng = SmallRng::seed_from_u64(1);
        let names: Vec<String> = (0..200)
            .map(|i| ProductEntity::sample(&mut rng, i).model_code)
            .collect();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len(), "model codes must be unique");
    }

    #[test]
    fn name_styles_share_the_model_code() {
        let mut rng = SmallRng::seed_from_u64(2);
        let p = ProductEntity::sample(&mut rng, 7);
        for style in [
            NameStyle::BrandFirst,
            NameStyle::SizeQuoted,
            NameStyle::Terse,
        ] {
            let name = p.render_name(style);
            assert!(name.contains(&p.model_code), "style {style:?}: {name}");
            assert!(name.contains(p.brand));
        }
    }

    #[test]
    fn paper_author_rendering() {
        let mut rng = SmallRng::seed_from_u64(3);
        let p = PaperEntity::sample(&mut rng, 1);
        let full = p.render_authors(false);
        let abbr = p.render_authors(true);
        assert!(full.len() >= abbr.len());
        assert!(abbr.contains(". "));
    }

    #[test]
    fn roman_numerals() {
        assert_eq!(roman(1), "i");
        assert_eq!(roman(4), "iv");
        assert_eq!(roman(9), "ix");
        assert_eq!(roman(14), "xiv");
        assert_eq!(roman(39), "xxxix");
    }

    #[test]
    fn restaurants_have_valid_phone_shape() {
        let mut rng = SmallRng::seed_from_u64(4);
        let r = RestaurantEntity::sample(&mut rng, 3);
        assert_eq!(r.phone.len(), 12);
        assert_eq!(r.phone.matches('-').count(), 2);
    }
}
