//! Save/load generated tasks as CSV files (the format the paper's "upload
//! dataset" step consumes: two table files plus a perfect-mapping file).

use panda_table::{CandidatePair, MatchSet, Table, TablePair};
use std::fs;
use std::io;
use std::path::Path;

/// Write a task to `<dir>/<stem>_left.csv`, `<dir>/<stem>_right.csv` and
/// (when gold is present) `<dir>/<stem>_gold.csv` with columns
/// `left_row,right_row`.
pub fn save_task(dir: &Path, stem: &str, task: &TablePair) -> io::Result<()> {
    fs::create_dir_all(dir)?;
    fs::write(
        dir.join(format!("{stem}_left.csv")),
        task.left.to_csv_string(),
    )?;
    fs::write(
        dir.join(format!("{stem}_right.csv")),
        task.right.to_csv_string(),
    )?;
    if let Some(gold) = &task.gold {
        let mut out = String::from("left_row,right_row\n");
        let mut pairs: Vec<_> = gold.iter().copied().collect();
        pairs.sort();
        for p in pairs {
            out.push_str(&format!("{},{}\n", p.left.0, p.right.0));
        }
        fs::write(dir.join(format!("{stem}_gold.csv")), out)?;
    }
    Ok(())
}

/// Load a task previously written by [`save_task`].
pub fn load_task(dir: &Path, stem: &str) -> io::Result<TablePair> {
    let read_table = |suffix: &str, name: &str| -> io::Result<Table> {
        let text = fs::read_to_string(dir.join(format!("{stem}_{suffix}.csv")))?;
        Table::from_csv_str(name, &text, true)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    };
    let left = read_table("left", "left")?;
    let right = read_table("right", "right")?;
    let gold_path = dir.join(format!("{stem}_gold.csv"));
    let gold = if gold_path.exists() {
        let text = fs::read_to_string(gold_path)?;
        let mut set = MatchSet::new();
        for (i, line) in text.lines().enumerate() {
            if i == 0 || line.trim().is_empty() {
                continue;
            }
            let mut it = line.split(',');
            let parse = |s: Option<&str>| -> io::Result<u32> {
                s.and_then(|v| v.trim().parse().ok()).ok_or_else(|| {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("bad gold line {}: {line:?}", i + 1),
                    )
                })
            };
            let l = parse(it.next())?;
            let r = parse(it.next())?;
            let p = CandidatePair::new(l, r);
            set.insert(p.left, p.right);
        }
        Some(set)
    } else {
        None
    };
    Ok(TablePair { left, right, gold })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate, DatasetFamily, GeneratorConfig};

    #[test]
    fn round_trip_through_disk() {
        let dir = std::env::temp_dir().join("panda-datasets-test");
        let task = generate(
            DatasetFamily::FodorsZagats,
            &GeneratorConfig::new(2).with_entities(40),
        );
        save_task(&dir, "fz", &task).unwrap();
        let back = load_task(&dir, "fz").unwrap();
        assert_eq!(back.left.len(), task.left.len());
        assert_eq!(back.right.len(), task.right.len());
        assert_eq!(
            back.gold.as_ref().unwrap().len(),
            task.gold.as_ref().unwrap().len()
        );
        // Every original gold pair survives.
        for p in task.gold.as_ref().unwrap().iter() {
            assert!(back.gold.as_ref().unwrap().contains(p));
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_gold_loads_as_none() {
        let dir = std::env::temp_dir().join("panda-datasets-test-nogold");
        let mut task = generate(
            DatasetFamily::FodorsZagats,
            &GeneratorConfig::new(3).with_entities(10),
        );
        task.gold = None;
        save_task(&dir, "ng", &task).unwrap();
        let back = load_task(&dir, "ng").unwrap();
        assert!(back.gold.is_none());
        fs::remove_dir_all(&dir).ok();
    }
}
