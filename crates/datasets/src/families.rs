//! The benchmark families and the generator proper.

use crate::entity::{NameStyle, PaperEntity, ProductEntity, RestaurantEntity};
use crate::perturb::{PerturbConfig, Perturber};
use panda_table::{MatchSet, RecordId, Schema, Table, TablePair, Value};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// The synthetic counterparts of the paper's benchmark datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetFamily {
    /// Products: short names with sizes/model codes vs retailer listings
    /// (the paper's running example).
    AbtBuy,
    /// Products: titles + manufacturer + price, heavier noise.
    AmazonGoogle,
    /// Products with *mismatched schemas*: walmart(`title`, `brand`,
    /// `modelno`) vs amazon(`name`, `manufacturer`, `model`) — no shared
    /// text attribute, exercising attribute-pair LFs.
    WalmartAmazon,
    /// The "dirty" Abt-Buy variant: attribute injection (name tokens
    /// leak into the description and vice versa), the standard dirty-EM
    /// benchmark construction.
    AbtBuyDirty,
    /// Bibliographic: clean venue names both sides, 1-1 matches.
    DblpAcm,
    /// Bibliographic: right side is a scraped-citation mess with duplicate
    /// clusters (many-many matches) — exercises transitivity.
    DblpScholar,
    /// Restaurants: names/addresses/phones, small and easy.
    FodorsZagats,
    /// Single-table deduplication (Cora style): the table is matched
    /// against itself; duplicate clusters give the transitivity constraint
    /// triangles to act on.
    CoraDedup,
}

impl DatasetFamily {
    /// All two-table families (the standard benchmark suite).
    pub fn suite() -> [DatasetFamily; 5] {
        [
            DatasetFamily::AbtBuy,
            DatasetFamily::AmazonGoogle,
            DatasetFamily::DblpAcm,
            DatasetFamily::DblpScholar,
            DatasetFamily::FodorsZagats,
        ]
    }

    /// The extended suite: the standard five plus the schema-mismatched
    /// and dirty variants.
    pub fn extended_suite() -> [DatasetFamily; 7] {
        [
            DatasetFamily::AbtBuy,
            DatasetFamily::AmazonGoogle,
            DatasetFamily::WalmartAmazon,
            DatasetFamily::AbtBuyDirty,
            DatasetFamily::DblpAcm,
            DatasetFamily::DblpScholar,
            DatasetFamily::FodorsZagats,
        ]
    }

    /// Stable lowercase name for reports and file paths.
    pub fn name(&self) -> &'static str {
        match self {
            DatasetFamily::AbtBuy => "abt-buy",
            DatasetFamily::AmazonGoogle => "amazon-google",
            DatasetFamily::WalmartAmazon => "walmart-amazon",
            DatasetFamily::AbtBuyDirty => "abt-buy-dirty",
            DatasetFamily::DblpAcm => "dblp-acm",
            DatasetFamily::DblpScholar => "dblp-scholar",
            DatasetFamily::FodorsZagats => "fodors-zagats",
            DatasetFamily::CoraDedup => "cora-dedup",
        }
    }
}

/// Generator knobs.
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    /// Entities in the universe.
    pub n_entities: usize,
    /// Fraction of entities rendered into the left (reference) table.
    pub left_coverage: f64,
    /// Fraction of entities rendered into the right table.
    pub right_coverage: f64,
    /// Maximum renderings of one entity in the right table (>1 creates
    /// duplicate clusters, DBLP-Scholar style).
    pub right_dup_max: usize,
    /// Noise applied to the right table (left gets `noise.scaled(0.3)` —
    /// reference tables are cleaner).
    pub noise: PerturbConfig,
    /// Master seed; everything is deterministic given it.
    pub seed: u64,
}

impl GeneratorConfig {
    /// Defaults: 200 entities, ~75% overlap, light noise.
    pub fn new(seed: u64) -> Self {
        GeneratorConfig {
            n_entities: 200,
            left_coverage: 0.9,
            right_coverage: 0.85,
            right_dup_max: 1,
            noise: PerturbConfig::light(),
            seed,
        }
    }

    /// Scale the entity count.
    pub fn with_entities(mut self, n: usize) -> Self {
        self.n_entities = n;
        self
    }

    /// Set the noise profile.
    pub fn with_noise(mut self, noise: PerturbConfig) -> Self {
        self.noise = noise;
        self
    }

    /// Set the duplication factor of the right table.
    pub fn with_right_dups(mut self, max: usize) -> Self {
        self.right_dup_max = max.max(1);
        self
    }
}

/// Generate one benchmark task.
pub fn generate(family: DatasetFamily, cfg: &GeneratorConfig) -> TablePair {
    let mut rng = SmallRng::seed_from_u64(cfg.seed ^ fam_salt(family));
    match family {
        DatasetFamily::AbtBuy => products_task(&mut rng, cfg, true),
        DatasetFamily::AmazonGoogle => products_task(&mut rng, cfg, false),
        DatasetFamily::WalmartAmazon => walmart_amazon_task(&mut rng, cfg),
        DatasetFamily::AbtBuyDirty => {
            let mut task = products_task(&mut rng, cfg, true);
            inject_dirt(&mut rng, &mut task);
            task
        }
        DatasetFamily::DblpAcm => papers_task(&mut rng, cfg, false),
        DatasetFamily::DblpScholar => {
            let cfg = cfg.clone().with_right_dups(cfg.right_dup_max.max(3));
            let mut c2 = cfg.clone();
            c2.noise = PerturbConfig::heavy();
            papers_task(&mut rng, &c2, true)
        }
        DatasetFamily::FodorsZagats => restaurants_task(&mut rng, cfg),
        DatasetFamily::CoraDedup => dedup_task(&mut rng, cfg),
    }
}

/// The five two-table families with default configs — the benchmark suite
/// used by experiment E1.
pub fn standard_suite(seed: u64) -> Vec<(String, TablePair)> {
    DatasetFamily::suite()
        .into_iter()
        .map(|f| {
            (
                f.name().to_string(),
                generate(f, &GeneratorConfig::new(seed)),
            )
        })
        .collect()
}

fn fam_salt(family: DatasetFamily) -> u64 {
    crate::entity::BRANDS.len() as u64 // constant fold ok; salt by name hash:
        ^ family
            .name()
            .bytes()
            .fold(0xabcdu64, |h, b| h.wrapping_mul(31).wrapping_add(b as u64))
}

/// Which entities land in which table + how often in the right one.
struct Assignment {
    in_left: Vec<bool>,
    right_copies: Vec<usize>,
}

fn assign(rng: &mut SmallRng, cfg: &GeneratorConfig) -> Assignment {
    let in_left = (0..cfg.n_entities)
        .map(|_| rng.gen_bool(cfg.left_coverage))
        .collect();
    let right_copies = (0..cfg.n_entities)
        .map(|_| {
            if rng.gen_bool(cfg.right_coverage) {
                rng.gen_range(1..=cfg.right_dup_max.max(1))
            } else {
                0
            }
        })
        .collect();
    Assignment {
        in_left,
        right_copies,
    }
}

/// Build the two tables from rendered rows, shuffling row order so record
/// ids don't correlate with entity identity, then wire up the gold set.
fn assemble(
    rng: &mut SmallRng,
    left_name: &str,
    left_schema: Schema,
    right_name: &str,
    right_schema: Schema,
    left_rows: Vec<(usize, Vec<Value>)>,
    right_rows: Vec<(usize, Vec<Value>)>,
) -> TablePair {
    let mut left_rows = left_rows;
    let mut right_rows = right_rows;
    left_rows.shuffle(rng);
    right_rows.shuffle(rng);

    let mut left = Table::new(left_name, left_schema);
    let mut right = Table::new(right_name, right_schema);
    let mut left_of_entity: std::collections::HashMap<usize, Vec<u32>> = Default::default();
    let mut right_of_entity: std::collections::HashMap<usize, Vec<u32>> = Default::default();
    for (entity, row) in left_rows {
        let id = left.push_row(row).expect("generator rows match schema");
        left_of_entity.entry(entity).or_default().push(id.0);
    }
    for (entity, row) in right_rows {
        let id = right.push_row(row).expect("generator rows match schema");
        right_of_entity.entry(entity).or_default().push(id.0);
    }
    let mut gold = MatchSet::new();
    for (entity, lids) in &left_of_entity {
        if let Some(rids) = right_of_entity.get(entity) {
            for &l in lids {
                for &r in rids {
                    gold.insert(RecordId(l), RecordId(r));
                }
            }
        }
    }
    TablePair::with_gold(left, right, gold)
}

fn opt_text(v: Option<String>) -> Value {
    match v {
        Some(s) => Value::Text(s),
        None => Value::Null,
    }
}

fn opt_float(v: Option<f64>) -> Value {
    match v {
        Some(x) => Value::Float(x),
        None => Value::Null,
    }
}

// ---------------------------------------------------------------------------
// Products (Abt-Buy / Amazon-Google)
// ---------------------------------------------------------------------------

fn products_task(rng: &mut SmallRng, cfg: &GeneratorConfig, abt_style: bool) -> TablePair {
    let entities: Vec<ProductEntity> = (0..cfg.n_entities)
        .map(|i| ProductEntity::sample(rng, i))
        .collect();
    let a = assign(rng, cfg);
    let left_noise = cfg.noise.scaled(0.3);
    let right_noise = cfg.noise;

    let mut left_rows = Vec::new();
    let mut right_rows = Vec::new();
    for (i, e) in entities.iter().enumerate() {
        if a.in_left[i] {
            let mut p = Perturber::new(rng.gen(), left_noise);
            let name = p
                .text(&e.render_name(NameStyle::BrandFirst))
                .unwrap_or_default();
            let desc = opt_text(p.text(&e.render_description()));
            let price = opt_float(p.number(e.price, 0.0));
            left_rows.push((
                i,
                vec![
                    Value::Int(10_000 + i as i64),
                    Value::Text(name),
                    desc,
                    price,
                ],
            ));
        }
        for _copy in 0..a.right_copies[i] {
            let mut p = Perturber::new(rng.gen(), right_noise);
            let style = if abt_style {
                NameStyle::SizeQuoted
            } else {
                NameStyle::BrandFirst
            };
            let name = p.text(&e.render_name(style)).unwrap_or_default();
            let desc = opt_text(p.text(&e.render_description()));
            let manufacturer = opt_text(p.text(e.brand));
            let price = opt_float(p.number(e.price, 0.08));
            right_rows.push((
                i,
                vec![
                    Value::Int(rng.gen_range(50_000..99_999)),
                    Value::Text(name),
                    desc,
                    manufacturer,
                    price,
                ],
            ));
        }
    }
    let (lname, rname) = if abt_style {
        ("abt", "buy")
    } else {
        ("amazon", "google")
    };
    assemble(
        rng,
        lname,
        Schema::new(vec![
            panda_table::Field::int("id"),
            panda_table::Field::text("name"),
            panda_table::Field::text("description"),
            panda_table::Field::float("price"),
        ]),
        rname,
        Schema::new(vec![
            panda_table::Field::int("id"),
            panda_table::Field::text("name"),
            panda_table::Field::text("description"),
            panda_table::Field::text("manufacturer"),
            panda_table::Field::float("price"),
        ]),
        left_rows,
        right_rows,
    )
}

// ---------------------------------------------------------------------------
// Products with mismatched schemas (Walmart-Amazon)
// ---------------------------------------------------------------------------

fn walmart_amazon_task(rng: &mut SmallRng, cfg: &GeneratorConfig) -> TablePair {
    let entities: Vec<ProductEntity> = (0..cfg.n_entities)
        .map(|i| ProductEntity::sample(rng, i))
        .collect();
    let a = assign(rng, cfg);
    let left_noise = cfg.noise.scaled(0.3);
    let right_noise = cfg.noise;

    let mut left_rows = Vec::new();
    let mut right_rows = Vec::new();
    for (i, e) in entities.iter().enumerate() {
        if a.in_left[i] {
            let mut p = Perturber::new(rng.gen(), left_noise);
            left_rows.push((
                i,
                vec![
                    Value::Int(10_000 + i as i64),
                    Value::Text(
                        p.text(&e.render_name(NameStyle::BrandFirst))
                            .unwrap_or_default(),
                    ),
                    Value::Text(e.brand.to_string()),
                    Value::Text(e.model_code.clone()),
                    opt_float(p.number(e.price, 0.0)),
                ],
            ));
        }
        for _ in 0..a.right_copies[i] {
            let mut p = Perturber::new(rng.gen(), right_noise);
            right_rows.push((
                i,
                vec![
                    Value::Int(rng.gen_range(50_000..99_999)),
                    Value::Text(
                        p.text(&e.render_name(NameStyle::SizeQuoted))
                            .unwrap_or_default(),
                    ),
                    opt_text(p.text(e.brand)),
                    opt_text(p.text(&e.model_code)),
                    opt_float(p.number(e.price, 0.08)),
                ],
            ));
        }
    }
    assemble(
        rng,
        "walmart",
        Schema::new(vec![
            panda_table::Field::int("id"),
            panda_table::Field::text("title"),
            panda_table::Field::text("brand"),
            panda_table::Field::text("modelno"),
            panda_table::Field::float("price"),
        ]),
        "amazon",
        Schema::new(vec![
            panda_table::Field::int("id"),
            panda_table::Field::text("name"),
            panda_table::Field::text("manufacturer"),
            panda_table::Field::text("model"),
            panda_table::Field::float("price"),
        ]),
        left_rows,
        right_rows,
    )
}

// ---------------------------------------------------------------------------
// Dirty variant: attribute injection
// ---------------------------------------------------------------------------

/// The standard "dirty" EM construction (as in the DeepMatcher dirty
/// variants): with some probability, a right-table row's name content
/// leaks into its description (and the name keeps only its head tokens),
/// so attribute-aligned LFs degrade while whole-record signals survive.
fn inject_dirt(rng: &mut SmallRng, task: &mut TablePair) {
    let name_col = "name";
    let desc_col = "description";
    for row in 0..task.right.len() as u32 {
        if !rng.gen_bool(0.25) {
            continue;
        }
        let id = panda_table::RecordId(row);
        let name = task.right.record(id).expect("row in range").text(name_col);
        let desc = task.right.record(id).expect("row in range").text(desc_col);
        let mut toks: Vec<&str> = name.split_whitespace().collect();
        if toks.len() < 3 {
            continue;
        }
        let tail = toks.split_off(2).join(" ");
        let head = toks.join(" ");
        task.right
            .set_cell(id, name_col, Value::Text(head))
            .expect("column exists");
        task.right
            .set_cell(id, desc_col, Value::Text(format!("{tail} {desc}")))
            .expect("column exists");
    }
}

// ---------------------------------------------------------------------------
// Papers (DBLP-ACM / DBLP-Scholar)
// ---------------------------------------------------------------------------

fn papers_task(rng: &mut SmallRng, cfg: &GeneratorConfig, scholar: bool) -> TablePair {
    let entities: Vec<PaperEntity> = (0..cfg.n_entities)
        .map(|i| PaperEntity::sample(rng, i))
        .collect();
    let a = assign(rng, cfg);
    let left_noise = cfg.noise.scaled(0.2);
    let right_noise = cfg.noise;

    let mut left_rows = Vec::new();
    let mut right_rows = Vec::new();
    for (i, e) in entities.iter().enumerate() {
        if a.in_left[i] {
            let mut p = Perturber::new(rng.gen(), left_noise);
            left_rows.push((
                i,
                vec![
                    Value::Int(10_000 + i as i64),
                    Value::Text(p.text(&e.title).unwrap_or_default()),
                    Value::Text(e.render_authors(false)),
                    Value::Text(e.venue.0.to_string()),
                    Value::Int(e.year as i64),
                ],
            ));
        }
        for _ in 0..a.right_copies[i] {
            let mut p = Perturber::new(rng.gen(), right_noise);
            let venue = if scholar && rng.gen_bool(0.7) {
                e.venue.1.to_string() // abbreviated venue
            } else {
                e.venue.0.to_string()
            };
            let authors = e.render_authors(scholar && rng.gen_bool(0.8));
            // Scholar year fields are often wrong or missing.
            let year: Value = if scholar && rng.gen_bool(0.15) {
                Value::Null
            } else if scholar && rng.gen_bool(0.1) {
                Value::Int((e.year + rng.gen_range(0..2u32) + 1) as i64)
            } else {
                Value::Int(e.year as i64)
            };
            right_rows.push((
                i,
                vec![
                    Value::Int(rng.gen_range(50_000..99_999)),
                    Value::Text(p.text(&e.title).unwrap_or_default()),
                    Value::Text(p.text(&authors).unwrap_or_default()),
                    Value::Text(venue),
                    year,
                ],
            ));
        }
    }
    let (lname, rname) = if scholar {
        ("dblp", "scholar")
    } else {
        ("dblp", "acm")
    };
    let schema = || {
        Schema::new(vec![
            panda_table::Field::int("id"),
            panda_table::Field::text("title"),
            panda_table::Field::text("authors"),
            panda_table::Field::text("venue"),
            panda_table::Field::int("year"),
        ])
    };
    assemble(rng, lname, schema(), rname, schema(), left_rows, right_rows)
}

// ---------------------------------------------------------------------------
// Restaurants (Fodors-Zagats)
// ---------------------------------------------------------------------------

fn restaurants_task(rng: &mut SmallRng, cfg: &GeneratorConfig) -> TablePair {
    let entities: Vec<RestaurantEntity> = (0..cfg.n_entities)
        .map(|i| RestaurantEntity::sample(rng, i))
        .collect();
    let a = assign(rng, cfg);
    let left_noise = cfg.noise.scaled(0.2);
    let right_noise = cfg.noise;

    let mut left_rows = Vec::new();
    let mut right_rows = Vec::new();
    for (i, e) in entities.iter().enumerate() {
        let addr = format!("{} {}", e.street_no, e.street);
        if a.in_left[i] {
            let mut p = Perturber::new(rng.gen(), left_noise);
            left_rows.push((
                i,
                vec![
                    Value::Int(10_000 + i as i64),
                    Value::Text(p.text(&e.name).unwrap_or_default()),
                    Value::Text(p.text(&addr).unwrap_or_default()),
                    Value::Text(e.city.to_string()),
                    Value::Text(e.phone.clone()),
                    Value::Text(e.cuisine.to_string()),
                ],
            ));
        }
        for _ in 0..a.right_copies[i] {
            let mut p = Perturber::new(rng.gen(), right_noise);
            // Zagat writes phones with dots and drops the cuisine half the
            // time.
            let phone = if rng.gen_bool(0.5) {
                e.phone.replace('-', ".")
            } else {
                e.phone.clone()
            };
            let cuisine = if rng.gen_bool(0.5) {
                Value::Text(e.cuisine.to_string())
            } else {
                Value::Null
            };
            right_rows.push((
                i,
                vec![
                    Value::Int(rng.gen_range(50_000..99_999)),
                    Value::Text(p.text(&e.name).unwrap_or_default()),
                    Value::Text(p.text(&addr).unwrap_or_default()),
                    Value::Text(e.city.to_string()),
                    Value::Text(phone),
                    cuisine,
                ],
            ));
        }
    }
    let schema = || {
        Schema::new(vec![
            panda_table::Field::int("id"),
            panda_table::Field::text("name"),
            panda_table::Field::text("addr"),
            panda_table::Field::text("city"),
            panda_table::Field::text("phone"),
            panda_table::Field::text("type"),
        ])
    };
    assemble(
        rng,
        "fodors",
        schema(),
        "zagats",
        schema(),
        left_rows,
        right_rows,
    )
}

// ---------------------------------------------------------------------------
// Single-table dedup (Cora)
// ---------------------------------------------------------------------------

fn dedup_task(rng: &mut SmallRng, cfg: &GeneratorConfig) -> TablePair {
    let entities: Vec<PaperEntity> = (0..cfg.n_entities)
        .map(|i| PaperEntity::sample(rng, i))
        .collect();
    // Every entity appears 1..=right_dup_max times in ONE table (at least
    // pairs, else there is nothing to deduplicate).
    let dup_max = cfg.right_dup_max.max(2);
    let mut rows: Vec<(usize, Vec<Value>)> = Vec::new();
    for (i, e) in entities.iter().enumerate() {
        let copies = rng.gen_range(1..=dup_max);
        for _ in 0..copies {
            let mut p = Perturber::new(rng.gen(), cfg.noise);
            let abbr = rng.gen_bool(0.5);
            rows.push((
                i,
                vec![
                    Value::Int(rng.gen_range(10_000..99_999)),
                    Value::Text(p.text(&e.title).unwrap_or_default()),
                    Value::Text(p.text(&e.render_authors(abbr)).unwrap_or_default()),
                    Value::Text(
                        if rng.gen_bool(0.5) {
                            e.venue.0
                        } else {
                            e.venue.1
                        }
                        .to_string(),
                    ),
                    Value::Int(e.year as i64),
                ],
            ));
        }
    }
    rows.shuffle(rng);
    let schema = Schema::new(vec![
        panda_table::Field::int("id"),
        panda_table::Field::text("title"),
        panda_table::Field::text("authors"),
        panda_table::Field::text("venue"),
        panda_table::Field::int("year"),
    ]);
    let mut table = Table::new("cora", schema);
    let mut of_entity: std::collections::HashMap<usize, Vec<u32>> = Default::default();
    for (entity, row) in rows {
        let id = table.push_row(row).expect("generator rows match schema");
        of_entity.entry(entity).or_default().push(id.0);
    }
    let mut gold = MatchSet::new();
    for ids in of_entity.values() {
        for (x, &a) in ids.iter().enumerate() {
            for &b in &ids[x + 1..] {
                // Canonical orientation: left index < right index. (For a
                // self-join candidate set, generate pairs the same way.)
                let (lo, hi) = if a < b { (a, b) } else { (b, a) };
                gold.insert(RecordId(lo), RecordId(hi));
            }
        }
    }
    TablePair::with_gold(table.clone(), table, gold)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let a = generate(DatasetFamily::AbtBuy, &GeneratorConfig::new(7));
        let b = generate(DatasetFamily::AbtBuy, &GeneratorConfig::new(7));
        assert_eq!(a.left.to_csv_string(), b.left.to_csv_string());
        assert_eq!(a.right.to_csv_string(), b.right.to_csv_string());
        assert_eq!(
            a.gold.as_ref().unwrap().len(),
            b.gold.as_ref().unwrap().len()
        );
        let c = generate(DatasetFamily::AbtBuy, &GeneratorConfig::new(8));
        assert_ne!(a.left.to_csv_string(), c.left.to_csv_string());
    }

    #[test]
    fn left_table_is_duplicate_free() {
        // The Auto-FuzzyJoin reference-table property: one row per entity.
        for fam in DatasetFamily::suite() {
            let tp = generate(fam, &GeneratorConfig::new(3));
            let gold = tp.gold.as_ref().unwrap();
            // No two left rows share a right match (would imply left dups)
            // in families with right_dup_max = 1 … instead check directly:
            // every left id appears at most once per entity by
            // construction, so count distinct left rows = left len.
            assert!(tp.left.len() <= 200, "{}", fam.name());
            assert!(!gold.is_empty(), "{} must have matches", fam.name());
        }
    }

    #[test]
    fn sizes_and_overlap_are_plausible() {
        let tp = generate(DatasetFamily::AbtBuy, &GeneratorConfig::new(11));
        let gold = tp.gold.unwrap();
        // ~90% × ~85% of 200 entities should match.
        assert!(gold.len() > 100, "gold {}", gold.len());
        assert!(gold.len() < 200);
        assert!(tp.left.len() > 150);
        assert!(tp.right.len() > 130);
    }

    #[test]
    fn scholar_has_duplicate_clusters() {
        let tp = generate(DatasetFamily::DblpScholar, &GeneratorConfig::new(5));
        let gold = tp.gold.unwrap();
        // Many-many: more matches than left rows involved.
        let mut left_counts: std::collections::HashMap<u32, usize> = Default::default();
        for p in gold.iter() {
            *left_counts.entry(p.left.0).or_insert(0) += 1;
        }
        let multi = left_counts.values().filter(|&&c| c > 1).count();
        assert!(
            multi > 10,
            "scholar should have multi-match left rows: {multi}"
        );
    }

    #[test]
    fn dedup_gold_is_canonically_oriented_and_transitive() {
        let tp = generate(DatasetFamily::CoraDedup, &GeneratorConfig::new(9));
        let gold = tp.gold.as_ref().unwrap();
        for p in gold.iter() {
            assert!(p.left.0 < p.right.0, "canonical orientation");
        }
        assert_eq!(tp.left.len(), tp.right.len());
        assert!(!gold.is_empty());
    }

    #[test]
    fn walmart_amazon_has_mismatched_schemas() {
        let tp = generate(DatasetFamily::WalmartAmazon, &GeneratorConfig::new(6));
        assert!(tp.left.schema().contains("title"));
        assert!(!tp.right.schema().contains("title"));
        assert!(tp.right.schema().contains("name"));
        assert!(!tp.gold.as_ref().unwrap().is_empty());
    }

    #[test]
    fn dirty_variant_moves_name_tokens_into_description() {
        let clean = generate(DatasetFamily::AbtBuy, &GeneratorConfig::new(7));
        let dirty = generate(DatasetFamily::AbtBuyDirty, &GeneratorConfig::new(7));
        // Same seed → same entities; dirt shortens some right-side names.
        let avg_len = |t: &panda_table::Table| -> f64 {
            let total: usize = t
                .records()
                .map(|r| r.text("name").split_whitespace().count())
                .sum();
            total as f64 / t.len().max(1) as f64
        };
        assert!(
            avg_len(&dirty.right) < avg_len(&clean.right),
            "dirty names should be shorter on average"
        );
        assert!(!dirty.gold.as_ref().unwrap().is_empty());
    }

    #[test]
    fn suite_has_five_distinct_tasks() {
        let suite = standard_suite(1);
        assert_eq!(suite.len(), 5);
        let names: Vec<&str> = suite.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "abt-buy",
                "amazon-google",
                "dblp-acm",
                "dblp-scholar",
                "fodors-zagats"
            ]
        );
        for (name, tp) in &suite {
            assert!(
                tp.gold.as_ref().unwrap().len() > 20,
                "{name} too few matches"
            );
        }
    }

    #[test]
    fn matching_rows_look_similar_nonmatching_dont() {
        // Spot check the *content* property the whole pipeline relies on.
        let tp = generate(DatasetFamily::AbtBuy, &GeneratorConfig::new(21));
        let gold = tp.gold.as_ref().unwrap();
        let pair = gold.iter().next().unwrap();
        let l = tp.left.record(pair.left).unwrap().text("name");
        let r = tp.right.record(pair.right).unwrap().text("name");
        // Matching names share the brand or model prefix.
        let shared = l
            .split_whitespace()
            .filter(|t| r.to_lowercase().contains(&t.to_lowercase()))
            .count();
        assert!(shared >= 1, "gold pair shares no tokens:\n  {l}\n  {r}");
    }
}
