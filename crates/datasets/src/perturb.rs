//! The perturbation engine: renders "the same entity, written differently".

use rand::rngs::SmallRng;
use rand::Rng;

/// Per-field perturbation rates (each in `[0,1]`).
#[derive(Debug, Clone, Copy)]
pub struct PerturbConfig {
    /// Probability of injecting one keyboard typo into a token.
    pub typo_rate: f64,
    /// Probability of dropping each non-leading token.
    pub drop_rate: f64,
    /// Probability of abbreviating a token (`"panasonic"` → `"p."`).
    pub abbrev_rate: f64,
    /// Probability of swapping a pair of adjacent tokens.
    pub reorder_rate: f64,
    /// Probability of rewriting a unit annotation (`40'` ↔ `40 inch`).
    pub unit_rate: f64,
    /// Probability of blanking the whole field.
    pub missing_rate: f64,
}

impl PerturbConfig {
    /// Mild noise: occasional typos, rare drops.
    pub fn light() -> Self {
        PerturbConfig {
            typo_rate: 0.03,
            drop_rate: 0.05,
            abbrev_rate: 0.02,
            reorder_rate: 0.05,
            unit_rate: 0.3,
            missing_rate: 0.02,
        }
    }

    /// Heavy noise: the "dirty" benchmark variants.
    pub fn heavy() -> Self {
        PerturbConfig {
            typo_rate: 0.10,
            drop_rate: 0.15,
            abbrev_rate: 0.10,
            reorder_rate: 0.15,
            unit_rate: 0.5,
            missing_rate: 0.10,
        }
    }

    /// Scale every rate by `factor` (clamped to `[0,1]`).
    pub fn scaled(&self, factor: f64) -> Self {
        let s = |r: f64| (r * factor).clamp(0.0, 1.0);
        PerturbConfig {
            typo_rate: s(self.typo_rate),
            drop_rate: s(self.drop_rate),
            abbrev_rate: s(self.abbrev_rate),
            reorder_rate: s(self.reorder_rate),
            unit_rate: s(self.unit_rate),
            missing_rate: s(self.missing_rate),
        }
    }
}

/// Applies [`PerturbConfig`]-driven noise using an owned RNG forked from a
/// caller-provided seed (so the whole dataset generation is reproducible
/// from one master seed without aliasing the caller's RNG).
pub struct Perturber {
    rng: SmallRng,
    cfg: PerturbConfig,
}

impl Perturber {
    /// Fork a perturber from a seed and a noise config.
    pub fn new(seed: u64, cfg: PerturbConfig) -> Self {
        Perturber {
            rng: rand::SeedableRng::seed_from_u64(seed),
            cfg,
        }
    }

    /// Perturb one free-text field. Returns `None` when the field goes
    /// missing.
    pub fn text(&mut self, input: &str) -> Option<String> {
        if self.rng.gen_bool(self.cfg.missing_rate) {
            return None;
        }
        let mut tokens: Vec<String> = input.split_whitespace().map(str::to_string).collect();
        if tokens.is_empty() {
            return Some(String::new());
        }
        // Token drops (never the first token — heads carry identity).
        let mut i = 1;
        while i < tokens.len() {
            if tokens.len() > 1 && self.rng.gen_bool(self.cfg.drop_rate) {
                tokens.remove(i);
            } else {
                i += 1;
            }
        }
        // Adjacent swaps.
        if tokens.len() >= 2 && self.rng.gen_bool(self.cfg.reorder_rate) {
            let i = self.rng.gen_range(0..tokens.len() - 1);
            tokens.swap(i, i + 1);
        }
        // Per-token typos / abbreviations / unit rewrites.
        for tok in tokens.iter_mut() {
            if self.rng.gen_bool(self.cfg.unit_rate) {
                if let Some(rewritten) = self.rewrite_unit(tok) {
                    *tok = rewritten;
                    continue;
                }
            }
            if tok.len() >= 4 && self.rng.gen_bool(self.cfg.abbrev_rate) {
                *tok = abbreviate(tok);
            } else if tok.len() >= 3 && self.rng.gen_bool(self.cfg.typo_rate) {
                *tok = self.typo(tok);
            }
        }
        Some(tokens.join(" "))
    }

    /// Perturb a numeric field (e.g. price): small relative jitter plus
    /// missingness.
    pub fn number(&mut self, value: f64, rel_jitter: f64) -> Option<f64> {
        if self.rng.gen_bool(self.cfg.missing_rate) {
            return None;
        }
        let jitter = 1.0 + self.rng.gen_range(-rel_jitter..=rel_jitter);
        Some((value * jitter * 100.0).round() / 100.0)
    }

    /// Inject one keyboard-plausible edit into a token.
    pub fn typo(&mut self, token: &str) -> String {
        let chars: Vec<char> = token.chars().collect();
        if chars.len() < 2 {
            return token.to_string();
        }
        let mut out = chars.clone();
        let pos = self.rng.gen_range(0..chars.len());
        match self.rng.gen_range(0..4u8) {
            0 => {
                // substitution with a keyboard neighbour
                out[pos] = keyboard_neighbor(chars[pos], &mut self.rng);
            }
            1 => {
                // deletion
                out.remove(pos);
            }
            2 => {
                // duplication (fat finger)
                out.insert(pos, chars[pos]);
            }
            _ => {
                // transposition
                if pos + 1 < out.len() {
                    out.swap(pos, pos + 1);
                }
            }
        }
        out.into_iter().collect()
    }

    /// Rewrite unit-bearing tokens between equivalent forms:
    /// `40'` ↔ `40in` ↔ `40-inch` ↔ `40inch`.
    fn rewrite_unit(&mut self, token: &str) -> Option<String> {
        let lower = token.to_lowercase();
        let digits: String = lower.chars().take_while(|c| c.is_ascii_digit()).collect();
        if digits.is_empty() {
            return None;
        }
        let suffix = &lower[digits.len()..];
        let is_size = matches!(suffix, "'" | "\"" | "in" | "inch" | "-inch" | "in.");
        if !is_size {
            return None;
        }
        let forms = ["'", "in", "inch", "-inch"];
        let pick = forms[self.rng.gen_range(0..forms.len())];
        Some(format!("{digits}{pick}"))
    }
}

/// First letter + `.`: `"panasonic"` → `"p."`.
fn abbreviate(token: &str) -> String {
    let mut c = token.chars();
    match c.next() {
        Some(first) => format!("{first}."),
        None => token.to_string(),
    }
}

fn keyboard_neighbor(c: char, rng: &mut SmallRng) -> char {
    const ROWS: [&str; 3] = ["qwertyuiop", "asdfghjkl", "zxcvbnm"];
    let lower = c.to_ascii_lowercase();
    for row in ROWS {
        if let Some(idx) = row.find(lower) {
            let row: Vec<char> = row.chars().collect();
            let neighbors: Vec<char> = match idx {
                0 => vec![row[1]],
                i if i == row.len() - 1 => vec![row[i - 1]],
                i => vec![row[i - 1], row[i + 1]],
            };
            let pick = neighbors[rng.gen_range(0..neighbors.len())];
            return if c.is_uppercase() {
                pick.to_ascii_uppercase()
            } else {
                pick
            };
        }
    }
    // Digits / punctuation: nudge digits, keep the rest.
    if let Some(d) = c.to_digit(10) {
        return char::from_digit((d + 1) % 10, 10).unwrap();
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rates_are_identity() {
        let cfg = PerturbConfig {
            typo_rate: 0.0,
            drop_rate: 0.0,
            abbrev_rate: 0.0,
            reorder_rate: 0.0,
            unit_rate: 0.0,
            missing_rate: 0.0,
        };
        let mut p = Perturber::new(9, cfg);
        assert_eq!(
            p.text("sony bravia 40in tv").as_deref(),
            Some("sony bravia 40in tv")
        );
        assert_eq!(p.number(99.0, 0.0), Some(99.0));
    }

    #[test]
    fn missing_rate_one_always_blanks() {
        let cfg = PerturbConfig {
            missing_rate: 1.0,
            ..PerturbConfig::light()
        };
        let mut p = Perturber::new(9, cfg);
        assert_eq!(p.text("anything"), None);
        assert_eq!(p.number(5.0, 0.1), None);
    }

    #[test]
    fn heavy_noise_changes_text_but_keeps_head_token() {
        let mut p = Perturber::new(3, PerturbConfig::heavy());
        let mut changed = 0;
        for _ in 0..50 {
            if let Some(t) = p.text("sony bravia kdl 40in lcd tv") {
                if t != "sony bravia kdl 40in lcd tv" {
                    changed += 1;
                }
                // The head token may get typos but never disappears.
                assert!(!t.is_empty());
            }
        }
        assert!(
            changed > 25,
            "heavy noise should usually change text: {changed}/50"
        );
    }

    #[test]
    fn typo_is_a_small_edit() {
        let mut p = Perturber::new(4, PerturbConfig::light());
        for _ in 0..30 {
            let t = p.typo("bravia");
            let len_diff = (t.chars().count() as i64 - 6).abs();
            assert!(len_diff <= 1, "typo {t:?} changed length too much");
        }
    }

    #[test]
    fn unit_rewrites_preserve_the_number() {
        let cfg = PerturbConfig {
            unit_rate: 1.0,
            missing_rate: 0.0,
            ..PerturbConfig::light()
        };
        let mut p = Perturber::new(9, cfg);
        for _ in 0..20 {
            let t = p.text("40'").unwrap();
            assert!(t.starts_with("40"), "rewrite kept the number: {t:?}");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut p = Perturber::new(42, PerturbConfig::heavy());
            (0..10)
                .map(|_| p.text("panasonic viera 50in plasma"))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn scaled_clamps() {
        let c = PerturbConfig::heavy().scaled(100.0);
        assert!(c.typo_rate <= 1.0 && c.missing_rate <= 1.0);
        let z = PerturbConfig::heavy().scaled(0.0);
        assert_eq!(z.typo_rate, 0.0);
    }
}
