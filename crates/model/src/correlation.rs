//! LF correlation handling.
//!
//! The data-programming story (paper §1: the labeling model "considers
//! their accuracy and possible correlations") breaks when users register
//! near-duplicate LFs: a conditionally-independent model counts the same
//! evidence twice, over-concentrating the posterior. Auto-generated LFs
//! make this common — several configs in the lattice often produce almost
//! identical votes.
//!
//! This module estimates pairwise LF redundancy from the label matrix and
//! produces per-LF **evidence discounts**: LFs are greedily clustered by
//! vote agreement on co-voted pairs, and each LF in a cluster of size `k`
//! gets discount `1/k`, so a cluster contributes roughly one LF's worth of
//! log-odds. Both EM models accept the discounts as optional vote weights.

use panda_lf::LabelMatrix;

/// Column identity between two LFs: the fraction of *identical* votes over
/// pairs where at least one of them votes (an abstain-vs-vote mismatch
/// counts as disagreement). `None` when fewer than `min_overlap` such
/// pairs exist.
///
/// Deliberately strict: measuring agreement only where both vote would
/// flag two *accurate, independent* LFs as redundant (they agree because
/// they are both right). Near-duplicate configs — the case discounts are
/// for — also share their abstention pattern, which independent LFs
/// rarely do.
pub fn vote_agreement(a: &[i8], b: &[i8], min_overlap: usize) -> Option<f64> {
    let mut agree = 0i64;
    let mut total = 0i64;
    for (&x, &y) in a.iter().zip(b) {
        if x != 0 || y != 0 {
            total += 1;
            if x == y {
                agree += 1;
            }
        }
    }
    (total as usize >= min_overlap).then(|| agree as f64 / total as f64)
}

/// Cluster LFs whose pairwise agreement exceeds `threshold` (single-link,
/// greedy over matrix column order). Returns cluster ids per LF.
pub fn redundancy_clusters(matrix: &LabelMatrix, threshold: f64, min_overlap: usize) -> Vec<usize> {
    let cols: Vec<Vec<i8>> = matrix.columns().map(|(_, c)| c).collect();
    let m = cols.len();
    let mut cluster = vec![usize::MAX; m];
    let mut next = 0usize;
    for i in 0..m {
        if cluster[i] != usize::MAX {
            continue;
        }
        cluster[i] = next;
        for j in i + 1..m {
            if cluster[j] != usize::MAX {
                continue;
            }
            if let Some(a) = vote_agreement(&cols[i], &cols[j], min_overlap) {
                if a >= threshold {
                    cluster[j] = next;
                }
            }
        }
        next += 1;
    }
    cluster
}

/// Per-LF evidence discounts from redundancy clusters: LF in a cluster of
/// size `k` gets `1/k`.
pub fn evidence_discounts(matrix: &LabelMatrix, threshold: f64) -> Vec<f64> {
    let clusters = redundancy_clusters(matrix, threshold, 20);
    let mut sizes = std::collections::HashMap::new();
    for &c in &clusters {
        *sizes.entry(c).or_insert(0usize) += 1;
    }
    clusters.iter().map(|c| 1.0 / sizes[c] as f64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{f1, plant, PlantedLf};
    use crate::{LabelModel, PandaModel, SnorkelModel};
    use panda_lf::{ClosureLf, Label, LfRegistry};
    use std::sync::Arc;

    #[test]
    fn agreement_counts_identical_votes_incl_abstain_pattern() {
        let a = [1i8, -1, 0, 1, 0];
        let b = [1i8, 1, 1, 1, 0];
        // Pairs where either votes: 0,1,2,3. Identical: 0 and 3 → 2/4.
        assert_eq!(vote_agreement(&a, &b, 1), Some(0.5));
        assert_eq!(vote_agreement(&a, &b, 5), None, "below min overlap");
        // Identical columns (including abstains) score 1.
        assert_eq!(vote_agreement(&a, &a, 1), Some(1.0));
    }

    #[test]
    fn accurate_but_independent_lfs_are_not_clustered() {
        // Two LFs that agree wherever both vote (both are right) but have
        // different abstention patterns — they must NOT count as
        // redundant.
        let a = [1i8, 0, -1, 0, 1, 0, -1, 0];
        let b = [0i8, 1, 0, -1, 1, 0, 0, -1];
        let agr = vote_agreement(&a, &b, 1).unwrap();
        assert!(agr < 0.5, "different abstain pattern → low identity: {agr}");
    }

    #[test]
    fn duplicate_lfs_cluster_together() {
        let p = plant(500, 0.3, &[PlantedLf::symmetric(0.9, 0.85); 1], 61);
        // Clone the single planted column twice + one independent LF.
        let col: Vec<i8> = p.matrix.column("planted_0").unwrap().to_vec();
        let mut reg = LfRegistry::new();
        for name in ["a", "b", "c"] {
            let col = col.clone();
            reg.upsert(Arc::new(ClosureLf::new(name, move |pr| {
                Label::from_i8(col[pr.pair.left.0 as usize])
            })));
        }
        reg.upsert(Arc::new(ClosureLf::new("independent", |pr| {
            Label::from_i8(if pr.pair.left.0 % 2 == 0 { 1 } else { -1 })
        })));
        let mut matrix = panda_lf::LabelMatrix::new();
        matrix.apply(&reg, &p.tables, &p.candidates);
        let clusters = redundancy_clusters(&matrix, 0.95, 20);
        assert_eq!(clusters[0], clusters[1]);
        assert_eq!(clusters[1], clusters[2]);
        assert_ne!(clusters[0], clusters[3]);
        let d = evidence_discounts(&matrix, 0.95);
        assert!((d[0] - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(d[3], 1.0);
    }

    /// Duplicating one LF five times must not materially change the
    /// posterior when discounts are on — and does distort it when off.
    #[test]
    fn discounts_prevent_double_counting() {
        let specs = [
            PlantedLf::symmetric(0.9, 0.75),
            PlantedLf::symmetric(0.9, 0.8),
        ];
        let p = plant(3000, 0.2, &specs, 67);
        // Base: the two planted LFs.
        let base_f1 = f1(&SnorkelModel::new().fit_predict(&p.matrix, None), &p.truth);

        // Duplicate the weaker LF (planted_0, acc .75) five times.
        let col: Vec<i8> = p.matrix.column("planted_0").unwrap().to_vec();
        let col1: Vec<i8> = p.matrix.column("planted_1").unwrap().to_vec();
        let mut reg = LfRegistry::new();
        for k in 0..6 {
            let col = col.clone();
            reg.upsert(Arc::new(ClosureLf::new(format!("dup_{k}"), move |pr| {
                Label::from_i8(col[pr.pair.left.0 as usize])
            })));
        }
        reg.upsert(Arc::new(ClosureLf::new("strong", move |pr| {
            Label::from_i8(col1[pr.pair.left.0 as usize])
        })));
        let mut matrix = panda_lf::LabelMatrix::new();
        matrix.apply(&reg, &p.tables, &p.candidates);

        let plain = f1(&SnorkelModel::new().fit_predict(&matrix, None), &p.truth);
        let discounted = f1(
            &SnorkelModel::new()
                .with_correlation_discounts(0.95)
                .fit_predict(&matrix, None),
            &p.truth,
        );
        // The discounted fit must stay close to the unduplicated baseline;
        // the plain fit is allowed to be anywhere (usually worse or equal).
        assert!(
            (discounted - base_f1).abs() <= (plain - base_f1).abs() + 0.02,
            "base {base_f1:.3}, plain-dup {plain:.3}, discounted {discounted:.3}"
        );
        // And the Panda model exposes the same switch.
        let _ = PandaModel::new()
            .with_correlation_discounts(0.95)
            .fit_predict(&matrix, None);
    }
}
