//! The data-programming generative model (the Snorkel baseline).
//!
//! Model (Ratner et al., NIPS'16; conditionally independent LFs):
//!
//! * `y ∈ {+1, −1}` with prior `π = P(y = +1)`;
//! * LF `j` votes with propensity `β_j = P(λ_j ≠ 0)` (class-independent),
//!   and when it votes, it agrees with `y` with **one** accuracy
//!   `α_j = P(λ_j = y | λ_j ≠ 0)`.
//!
//! Parameters are fit by EM on the observed label matrix; the E-step
//! posterior is the model output. This is the strongest *generic*
//! labeling model and is the baseline of the paper's +12% claim: its
//! single accuracy per LF is exactly what breaks under EM-scale class
//! imbalance.

use crate::{logit, sigmoid, LabelModel};
use panda_lf::{LabelMatrix, PackedVotes, VOTES_PER_WORD};
use panda_table::CandidateSet;

/// Snorkel-style generative labeling model.
#[derive(Debug, Clone)]
pub struct SnorkelModel {
    /// EM iterations.
    pub max_iters: usize,
    /// Convergence threshold on mean |Δγ|.
    pub tol: f64,
    /// Initial / minimum-information class prior. When `learn_prior` the
    /// prior is re-estimated each M-step, otherwise it stays fixed.
    pub prior: f64,
    /// Re-estimate π each M-step.
    pub learn_prior: bool,
    /// Upper bound on the learned prior. Entity matching candidate sets
    /// are non-match dominated even after blocking; without the bound the
    /// anchored-accuracy EM has an "everything matches" fixed point it
    /// can run away into when evidence is weak (few LFs).
    pub max_prior: f64,
    /// Fitted accuracies (after `fit_predict`).
    pub accuracies: Vec<f64>,
    /// Fitted propensities (after `fit_predict`).
    pub propensities: Vec<f64>,
    /// Fitted prior (after `fit_predict`).
    pub fitted_prior: f64,
    /// When set, LFs whose votes agree above this threshold are clustered
    /// and their evidence discounted by 1/cluster-size (see
    /// [`crate::correlation`]).
    pub correlation_threshold: Option<f64>,
    /// Evidence discounts the last fit used (all 1.0 without correlation
    /// clustering) — needed to replicate the E-step for ad-hoc scoring.
    pub fitted_discounts: Vec<f64>,
    /// Posterior vector to seed the next fit with (see
    /// [`LabelModel::set_warm_start`]). Consumed by `fit_predict`.
    pub warm_start: Option<Vec<f64>>,
}

impl Default for SnorkelModel {
    fn default() -> Self {
        SnorkelModel {
            max_iters: 100,
            tol: 1e-6,
            prior: 0.1,
            learn_prior: true,
            max_prior: 0.35,
            accuracies: Vec::new(),
            propensities: Vec::new(),
            fitted_prior: 0.1,
            correlation_threshold: None,
            fitted_discounts: Vec::new(),
            warm_start: None,
        }
    }
}

impl SnorkelModel {
    /// Default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fix the class prior instead of learning it.
    pub fn with_fixed_prior(mut self, prior: f64) -> Self {
        self.prior = prior;
        self.learn_prior = false;
        self
    }

    /// Raise the learned-prior cap (balanced or match-dominated tasks).
    pub fn with_max_prior(mut self, max_prior: f64) -> Self {
        self.max_prior = max_prior;
        self
    }

    /// Discount near-duplicate LFs' evidence (agreement ≥ `threshold`).
    pub fn with_correlation_discounts(mut self, threshold: f64) -> Self {
        self.correlation_threshold = Some(threshold);
        self
    }
}

/// Clamp an estimated accuracy into `[0.5, 0.95]`.
///
/// The lower bound is the data-programming identifiability anchor — the
/// paper's own premise is that LFs are "better than random labeling", and
/// without the bound EM has a label-swapped mirror solution (votes meaning
/// the opposite of what they say) it can drift into. The upper bound keeps
/// log-odds finite.
fn clamp_param(p: f64) -> f64 {
    p.clamp(0.5, 0.95)
}

impl SnorkelModel {
    /// Run EM to convergence from one initial posterior vector.
    ///
    /// Iterates the packed vote columns word-at-a-time (32 votes per
    /// `u64`). Per pair the E-step still adds terms in ascending-LF order
    /// on top of `logit(pi)` — abstains contribute an exact `+0.0` — so
    /// posteriors stay bit-identical to the historical per-pair loop and
    /// to `posterior_for_votes`.
    fn em_run(
        &self,
        cols: &[&PackedVotes],
        discounts: &[f64],
        n: usize,
        mut gamma: Vec<f64>,
        init: &'static str,
    ) -> (Vec<f64>, Vec<f64>, f64, usize) {
        let m = cols.len();
        let mut acc = vec![0.7f64; m];
        let mut pi = self.prior;
        let mut iters = 0usize;
        let mut lo = vec![0.0f64; n];
        for _iter in 0..self.max_iters {
            iters += 1;
            // M-step first (consumes the warm start on iteration 0):
            // α_j = E[#agreements] / E[#votes], Laplace-smoothed. The vote
            // count comes from the packed popcount; the agreement mass is
            // a branch-free table-select over the 2-bit codes (abstain
            // lanes add an exact 0).
            for (j, col) in cols.iter().enumerate() {
                let (n_match, n_unmatch, _) = col.counts();
                let votes = 2.0 + (n_match + n_unmatch) as f64; // pseudo-counts
                let mut agree = 1.0;
                for (w_idx, &word) in col.words().iter().enumerate() {
                    let start = w_idx * VOTES_PER_WORD;
                    let lanes = (n - start).min(VOTES_PER_WORD);
                    let mut w = word;
                    for &g in &gamma[start..start + lanes] {
                        agree += [0.0, g, 1.0 - g, 0.0][(w & 0b11) as usize];
                        w >>= 2;
                    }
                }
                acc[j] = clamp_param(agree / votes);
            }
            if self.learn_prior {
                pi = (gamma.iter().sum::<f64>() / n as f64).clamp(1e-4, self.max_prior);
            }

            // E-step, LF-major over packed words with a per-LF 4-entry
            // term table (code → discounted log-odds; abstain and the
            // reserved code map to 0).
            lo.fill(logit(pi));
            for (j, col) in cols.iter().enumerate() {
                let a = acc[j];
                let table = [
                    0.0,
                    discounts[j] * (a / (1.0 - a)).ln(),
                    discounts[j] * ((1.0 - a) / a).ln(),
                    0.0,
                ];
                for (w_idx, &word) in col.words().iter().enumerate() {
                    let start = w_idx * VOTES_PER_WORD;
                    let lanes = (n - start).min(VOTES_PER_WORD);
                    let mut w = word;
                    for lo_i in &mut lo[start..start + lanes] {
                        *lo_i += table[(w & 0b11) as usize];
                        w >>= 2;
                    }
                }
            }
            let mut delta = 0.0;
            for (g_i, &lo_i) in gamma.iter_mut().zip(&lo) {
                let g = sigmoid(lo_i);
                delta += (g - *g_i).abs();
                *g_i = g;
            }

            // Per-iteration provenance (journal only): the vote-pattern
            // log-likelihood is O(n·m) extra work, so it is computed
            // exclusively when someone is recording. Propensity is
            // class-independent in this model — it contributes a constant
            // and is omitted.
            if panda_obs::journal_enabled() {
                let mut ll = 0.0;
                for i in 0..n {
                    let mut lm = pi.ln();
                    let mut lu = (1.0 - pi).ln();
                    for (j, col) in cols.iter().enumerate() {
                        let a = acc[j];
                        match col.get(i) {
                            1.. => {
                                lm += a.ln();
                                lu += (1.0 - a).ln();
                            }
                            0 => {}
                            _ => {
                                lm += (1.0 - a).ln();
                                lu += a.ln();
                            }
                        }
                    }
                    let mx = lm.max(lu);
                    ll += mx + ((lm - mx).exp() + (lu - mx).exp()).ln();
                }
                let mean_acc = acc.iter().sum::<f64>() / m.max(1) as f64;
                panda_obs::event("model.em.iter")
                    .field("model", "snorkel")
                    .field("init", init)
                    .field("iter", iters)
                    .field("ll", ll)
                    // The single-accuracy model has one α per LF; it plays
                    // both class-conditional roles in the shared schema.
                    .field("alpha_m", mean_acc)
                    .field("alpha_u", mean_acc)
                    .field("delta", delta / n as f64)
                    .field("pi", pi)
                    .emit();
            }
            if delta / n as f64 <= self.tol {
                break;
            }
        }
        (gamma, acc, pi, iters)
    }
}

impl LabelModel for SnorkelModel {
    fn name(&self) -> &'static str {
        "snorkel"
    }

    fn fit_predict(&mut self, matrix: &LabelMatrix, _: Option<&CandidateSet>) -> Vec<f64> {
        let _span = panda_obs::span("model.snorkel.fit");
        let n = matrix.n_pairs();
        let cols: Vec<&PackedVotes> = matrix.packed_columns().map(|(_, c)| c).collect();
        let m = cols.len();
        // Reset ALL fitted state on every entry (same audit as
        // `PandaModel::fit_predict`): a degenerate matrix must not leave a
        // previous fit's parameters visible. The warm start is consumed
        // even on the degenerate early return so a stale vector cannot
        // leak into a later fit of a different matrix.
        self.accuracies.clear();
        self.propensities.clear();
        self.fitted_prior = self.prior;
        self.fitted_discounts.clear();
        let warm = self.warm_start.take().filter(|w| w.len() == n);
        if n == 0 || m == 0 {
            return vec![self.prior; n];
        }

        // Propensity is class-independent in this model, so its MLE is
        // just the observed vote rate (it cancels in the posterior and is
        // reported for the stats panel only).
        let mut acc = vec![0.7f64; m];
        let prop: Vec<f64> = cols
            .iter()
            .map(|c| {
                let (n_match, n_unmatch, _) = c.counts();
                ((n_match + n_unmatch) as f64 / n as f64).clamp(1e-6, 1.0)
            })
            .collect();
        let discounts: Vec<f64> = match self.correlation_threshold {
            Some(t) => crate::correlation::evidence_discounts(matrix, t),
            None => vec![1.0; m],
        };
        // Multi-start EM with the same warm starts and selection rule the
        // Panda model uses (minus the snorkel-seeded one, obviously):
        // baseline robustness should not be the thing E1 measures.
        let mut inits: Vec<(&'static str, Vec<f64>)> = vec![
            (
                "smoothed",
                crate::smoothed_majority_init(matrix, self.prior),
            ),
            (
                "majority",
                crate::MajorityVote::new(self.prior).fit_predict(matrix, None),
            ),
            (
                "pessimistic",
                crate::smoothed_majority_init(matrix, (self.prior * 0.25).max(1e-3)),
            ),
        ];
        // Interactive refits seed EM with the previous posterior; the
        // selection rule below still decides, so a stale warm start loses
        // to a better cold start instead of degrading the fit.
        if let Some(w) = warm {
            inits.push(("warm", w));
        }
        let mut best: Option<(f64, Vec<f64>, Vec<f64>, f64)> = None;
        for (init_name, init) in inits {
            let (gamma, run_acc, run_pi, iters) =
                self.em_run(&cols, &discounts, n, init, init_name);
            if panda_obs::enabled() {
                panda_obs::counter_add(
                    &format!("model.snorkel.em_iters.{init_name}"),
                    iters as u64,
                );
            }
            // Informativeness of the solution: vote-weighted Youden's J,
            // which for a single accuracy parameter is 2·acc − 1.
            let score: f64 = cols
                .iter()
                .enumerate()
                .map(|(j, col)| {
                    let (n_match, n_unmatch, _) = col.counts();
                    (n_match + n_unmatch) as f64 * (2.0 * run_acc[j] - 1.0).max(0.0)
                })
                .sum();
            if best.as_ref().map(|(b, ..)| score > *b).unwrap_or(true) {
                best = Some((score, gamma, run_acc, run_pi));
            }
        }
        let (_, gamma, best_acc, pi) = best.expect("at least one init");
        acc = best_acc;

        self.accuracies = acc;
        self.propensities = prop;
        self.fitted_prior = pi;
        self.fitted_discounts = discounts;
        gamma
    }

    fn set_warm_start(&mut self, previous: &[f64]) {
        self.warm_start = Some(previous.to_vec());
    }

    /// Replicates the fitted E-step for one vote row: log-odds of the
    /// prior plus each vote's discounted accuracy evidence (abstains
    /// contribute nothing in the single-accuracy model).
    fn posterior_for_votes(&self, votes: &[i8]) -> Option<f64> {
        if self.accuracies.is_empty() || votes.len() != self.accuracies.len() {
            return None;
        }
        let mut lo = logit(self.fitted_prior);
        for (j, &v) in votes.iter().enumerate() {
            let a = self.accuracies[j];
            match v {
                1.. => lo += self.fitted_discounts[j] * (a / (1.0 - a)).ln(),
                0 => {}
                _ => lo += self.fitted_discounts[j] * ((1.0 - a) / a).ln(),
            }
        }
        Some(sigmoid(lo))
    }

    /// Blob layout: `[m, fitted_prior, accuracies(m), propensities(m),
    /// fitted_discounts(m)]` — everything `posterior_for_votes` and a
    /// warm-started refit read.
    fn capture_fitted(&self) -> Option<Vec<f64>> {
        let m = self.accuracies.len();
        if self.propensities.len() != m || self.fitted_discounts.len() != m {
            return None;
        }
        let mut blob = Vec::with_capacity(2 + 3 * m);
        blob.push(m as f64);
        blob.push(self.fitted_prior);
        blob.extend_from_slice(&self.accuracies);
        blob.extend_from_slice(&self.propensities);
        blob.extend_from_slice(&self.fitted_discounts);
        Some(blob)
    }

    fn restore_fitted(&mut self, blob: &[f64]) -> bool {
        let Some(m) = decode_arity(blob, 3) else {
            return false;
        };
        self.fitted_prior = blob[1];
        self.accuracies = blob[2..2 + m].to_vec();
        self.propensities = blob[2 + m..2 + 2 * m].to_vec();
        self.fitted_discounts = blob[2 + 2 * m..2 + 3 * m].to_vec();
        true
    }
}

/// Decode the leading arity word of a fitted-parameter blob and check the
/// total length is `2 + per_lf · m`. Shared by the EM models'
/// `restore_fitted` impls.
pub(crate) fn decode_arity(blob: &[f64], per_lf: usize) -> Option<usize> {
    let head = *blob.first()?;
    if !(head.is_finite() && head >= 0.0 && head.fract() == 0.0 && head <= u32::MAX as f64) {
        return None;
    }
    let m = head as usize;
    (blob.len() == 2 + per_lf * m).then_some(m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{f1, plant, PlantedLf};
    use crate::MajorityVote;

    #[test]
    fn recovers_planted_accuracies_in_balanced_data() {
        // Balanced classes → the single-accuracy model is well-specified.
        let specs = [
            PlantedLf::symmetric(0.9, 0.9),
            PlantedLf::symmetric(0.8, 0.75),
            PlantedLf::symmetric(0.7, 0.6),
        ];
        let p = plant(4000, 0.5, &specs, 11);
        // Balanced planted data: lift the EM-imbalance prior cap.
        let mut model = SnorkelModel::new().with_max_prior(0.6);
        let gamma = model.fit_predict(&p.matrix, None);
        assert!(f1(&gamma, &p.truth) > 0.8);
        // With few LFs the posterior is soft, so EM accuracy estimates
        // shrink toward each other — check the recovered *ordering* and
        // coarse bands rather than tight absolutes.
        let a = &model.accuracies;
        assert!(
            a[0] >= a[1] - 0.02 && a[1] >= a[2] - 0.02,
            "ordering preserved: {a:?}"
        );
        assert!(a[0] > 0.75, "best LF clearly good: {a:?}");
        assert!(a[2] < 0.67, "worst LF clearly weak: {a:?}");
        assert!((model.fitted_prior - 0.5).abs() < 0.1);
    }

    #[test]
    fn beats_majority_vote_with_heterogeneous_lfs() {
        // One excellent LF among noisy ones: weighting by learned accuracy
        // must beat unweighted counting.
        let specs = [
            PlantedLf::symmetric(0.95, 0.95),
            PlantedLf::symmetric(0.9, 0.55),
            PlantedLf::symmetric(0.9, 0.55),
            PlantedLf::symmetric(0.9, 0.55),
        ];
        let p = plant(3000, 0.5, &specs, 13);
        let f1_snorkel = f1(
            &SnorkelModel::new()
                .with_max_prior(0.6)
                .fit_predict(&p.matrix, None),
            &p.truth,
        );
        let f1_mv = f1(
            &MajorityVote::default().fit_predict(&p.matrix, None),
            &p.truth,
        );
        assert!(
            f1_snorkel > f1_mv + 0.02,
            "snorkel {f1_snorkel:.3} vs majority {f1_mv:.3}"
        );
    }

    #[test]
    fn posteriors_in_unit_interval() {
        let p = plant(500, 0.2, &[PlantedLf::symmetric(0.5, 0.8); 5], 17);
        let gamma = SnorkelModel::new().fit_predict(&p.matrix, None);
        assert!(gamma.iter().all(|g| (0.0..=1.0).contains(g)));
    }

    #[test]
    fn empty_matrix_returns_prior() {
        let p = plant(5, 0.5, &[], 19);
        let mut model = SnorkelModel::new().with_fixed_prior(0.3);
        let gamma = model.fit_predict(&p.matrix, None);
        assert_eq!(gamma, vec![0.3; 5]);
    }

    #[test]
    fn adhoc_scoring_matches_fitted_posteriors() {
        let p = plant(500, 0.3, &[PlantedLf::symmetric(0.85, 0.8); 3], 29);
        let mut model = SnorkelModel::new();
        let gamma = model.fit_predict(&p.matrix, None);
        for (i, g) in gamma.iter().enumerate() {
            let s = model.posterior_for_votes(&p.matrix.row(i)).unwrap();
            assert_eq!(s, *g, "E-step replica on row {i}");
        }
        assert_eq!(model.posterior_for_votes(&[1i8]), None, "wrong arity");
    }

    #[test]
    fn warm_start_is_an_extra_init_and_stable_at_the_fixed_point() {
        let p = plant(400, 0.3, &[PlantedLf::symmetric(0.85, 0.8); 3], 31);
        let mut model = SnorkelModel::new();
        let cold = model.fit_predict(&p.matrix, None);
        model.set_warm_start(&cold);
        let warm = model.fit_predict(&p.matrix, None);
        let drift = warm
            .iter()
            .zip(&cold)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(drift < 0.05, "refit stays near the fixed point: {drift}");
    }

    #[test]
    fn majority_vote_scores_adhoc_rows() {
        use crate::LabelModel;
        let mv = MajorityVote::new(0.07);
        assert_eq!(mv.posterior_for_votes(&[1, -1, 0, 1]), Some(2.0 / 3.0));
        assert_eq!(mv.posterior_for_votes(&[0, 0]), Some(0.07));
    }

    #[test]
    fn fixed_prior_is_not_updated() {
        let p = plant(500, 0.5, &[PlantedLf::symmetric(0.9, 0.9)], 23);
        let mut model = SnorkelModel::new().with_fixed_prior(0.2);
        model.fit_predict(&p.matrix, None);
        assert_eq!(model.fitted_prior, 0.2);
    }
}
