//! Labeling models: from noisy LF votes to probabilistic labels.
//!
//! Given the label matrix `Λ ∈ {−1,0,+1}^{pairs × LFs}`, a labeling model
//! estimates `γ_i = P(y_i = match | Λ_i)` for every candidate pair. This
//! crate implements three models plus the transitivity constraint:
//!
//! * [`MajorityVote`] — the trivial baseline: fraction of +1 among
//!   non-abstain votes.
//! * [`SnorkelModel`] — the data-programming generative model of
//!   Ratner et al. (the model behind Snorkel): one accuracy and one
//!   propensity parameter per LF, conditionally independent given `y`,
//!   fit by EM. This is the "state-of-the-art labeling model [11]" the
//!   paper compares against.
//! * [`PandaModel`] — the paper's EM-specific model (§2.1 feature 3):
//!   **class-conditional** accuracies `α_M` (on matches) and `α_U` (on
//!   non-matches) with class-conditional propensities, fit by EM. Under
//!   EM's heavy class imbalance a single accuracy parameter conflates
//!   "right on matches" with "right on non-matches" (a constant −1 LF
//!   looks 99% accurate); splitting the parameter fixes that. Optionally,
//!   each E-step projects the posteriors onto the **transitivity-feasible
//!   set** `γ_ij · γ_ik ≤ γ_jk` (ZeroER, [`transitivity`]).
//!
//! All models implement [`LabelModel`] and return calibrated-ish
//! probabilities in `[0,1]`; `predictions` thresholds at 0.5.
//!
//! ```
//! use panda_model::{LabelModel, PandaModel, testutil};
//!
//! // A planted problem: 500 pairs, 20% matches, three noisy LFs.
//! let planted = testutil::plant(
//!     500,
//!     0.2,
//!     &[testutil::PlantedLf::symmetric(0.9, 0.85); 3],
//!     7,
//! );
//! let mut model = PandaModel::new();
//! let posteriors = model.fit_predict(&planted.matrix, Some(&planted.candidates));
//! let f1 = testutil::f1(&posteriors, &planted.truth);
//! assert!(f1 > 0.7, "recovers the planted labels: F1 {f1:.3}");
//! ```

pub mod correlation;
pub mod majority;
pub mod panda;
pub mod snorkel;
#[doc(hidden)]
pub mod testutil;
pub mod transitivity;
pub mod weighted;

pub use correlation::{evidence_discounts, redundancy_clusters, vote_agreement};
pub use majority::MajorityVote;
pub use panda::PandaModel;
pub use snorkel::SnorkelModel;
pub use transitivity::{project_transitivity, TransitivityGraph, TransitivityMode};
pub use weighted::WeightedVote;

use panda_lf::LabelMatrix;
use panda_table::CandidateSet;

/// A labeling model: fits to a label matrix and produces per-pair match
/// posteriors.
///
/// `Send` is a supertrait so a fitted model can ride inside a session
/// that crosses threads (the serving layer keeps sessions behind an
/// `Arc<Mutex<_>>` shared by a worker pool).
pub trait LabelModel: Send {
    /// Model name for reports.
    fn name(&self) -> &'static str;

    /// Fit to the matrix and return `P(match)` per candidate pair.
    ///
    /// `candidates` supplies the pair graph for models that exploit
    /// structure between pairs (transitivity); models that don't need it
    /// ignore it.
    fn fit_predict(&mut self, matrix: &LabelMatrix, candidates: Option<&CandidateSet>) -> Vec<f64>;

    /// Seed the **next** `fit_predict` with a previously converged
    /// posterior vector (one entry per pair of the matrix that fit will
    /// see). EM models add it as an extra warm start, so an interactive
    /// refit after a small LF edit converges from where the last fit
    /// ended instead of from scratch; the multi-start selection rule
    /// still applies, so a stale warm start cannot make the fit *worse*.
    /// Consumed by the next fit. Default: ignored (closed-form models
    /// don't iterate).
    fn set_warm_start(&mut self, _previous: &[f64]) {}

    /// Score one **ad-hoc** vote row (registry order, same arity as the
    /// fitted matrix) against the parameters of the last `fit_predict` —
    /// the serving path of `POST /match`, which must not refit. Returns
    /// `None` when the model was never fitted, the arity differs, or the
    /// model has no per-LF parameters to score with. For EM models this
    /// replicates the final E-step exactly, so a row already in the
    /// fitted matrix scores bit-identically to its fitted posterior
    /// (before any transitivity projection).
    fn posterior_for_votes(&self, _votes: &[i8]) -> Option<f64> {
        None
    }

    /// Export the fitted parameters as a flat `f64` blob, or `None` when
    /// the model cannot serialize its fitted state (or was never fitted
    /// in a way that leaves scoreable parameters). The blob is an opaque,
    /// model-specific encoding; the only contract is that feeding it to
    /// [`LabelModel::restore_fitted`] on a freshly built model of the
    /// same configuration makes `posterior_for_votes` and warm-started
    /// refits behave **bit-identically** to the original. The durable
    /// session store persists this blob (as `f64::to_bits` words) so a
    /// recovered session can score `POST /match` without a refit.
    fn capture_fitted(&self) -> Option<Vec<f64>> {
        None
    }

    /// Install fitted parameters previously exported by
    /// [`LabelModel::capture_fitted`] from a model of the same
    /// configuration. Returns `false` when the blob does not decode for
    /// this model (wrong model kind, corrupt length); the model is left
    /// unfitted in that case. Default: reject every blob.
    fn restore_fitted(&mut self, _blob: &[f64]) -> bool {
        false
    }
}

/// Threshold posteriors into hard decisions at `0.5`.
pub fn predictions(posteriors: &[f64]) -> Vec<bool> {
    posteriors.iter().map(|&g| g >= 0.5).collect()
}

/// Smoothed majority-vote initialisation for EM models: a pair with `p`
/// positive and `n` negative votes starts at `(p + k·prior) / (p + n + k)`
/// with `k = 2` pseudo-votes. Unlike hard majority vote, a *single* weak
/// +1 vote cannot saturate the posterior to 1.0 — which under class
/// imbalance would hand EM a huge spurious "match" cluster (e.g. every
/// chance price coincidence) and let it converge to an inverted labeling.
pub(crate) fn smoothed_majority_init(matrix: &panda_lf::LabelMatrix, prior: f64) -> Vec<f64> {
    const K: f64 = 2.0;
    let n = matrix.n_pairs();
    let mut pos = vec![0.0f64; n];
    let mut tot = vec![0.0f64; n];
    for (_, col) in matrix.columns() {
        for (i, &v) in col.iter().enumerate() {
            if v > 0 {
                pos[i] += 1.0;
                tot[i] += 1.0;
            } else if v < 0 {
                tot[i] += 1.0;
            }
        }
    }
    (0..n)
        .map(|i| (pos[i] + K * prior) / (tot[i] + K))
        .collect()
}

/// Numerically safe logit.
pub(crate) fn logit(p: f64) -> f64 {
    let p = p.clamp(1e-9, 1.0 - 1e-9);
    (p / (1.0 - p)).ln()
}

/// Numerically safe sigmoid.
pub(crate) fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_logit_inverse() {
        for p in [0.01, 0.3, 0.5, 0.77, 0.99] {
            assert!((sigmoid(logit(p)) - p).abs() < 1e-9);
        }
        assert!(sigmoid(-800.0) >= 0.0);
        assert!(sigmoid(800.0) <= 1.0);
    }

    #[test]
    fn predictions_threshold() {
        assert_eq!(predictions(&[0.2, 0.5, 0.9]), vec![false, true, true]);
    }

    /// Capture → restore into a *fresh* model must replicate ad-hoc
    /// scoring bit-exactly — the contract the durable session store
    /// relies on to serve `POST /match` after a restart without a refit.
    #[test]
    fn capture_restore_round_trips_bit_exactly() {
        let p = testutil::plant(400, 0.25, &[testutil::PlantedLf::symmetric(0.9, 0.8); 3], 5);
        let rows: Vec<Vec<i8>> = vec![
            vec![1, 1, 1],
            vec![1, 0, -1],
            vec![-1, -1, -1],
            vec![0, 0, 0],
        ];

        let mut panda = PandaModel::new();
        panda.fit_predict(&p.matrix, None);
        let mut snorkel = SnorkelModel::new();
        snorkel.fit_predict(&p.matrix, None);
        let majority = MajorityVote::default();

        let fitted: Vec<Box<dyn LabelModel>> =
            vec![Box::new(panda), Box::new(snorkel), Box::new(majority)];
        let fresh: Vec<Box<dyn LabelModel>> = vec![
            Box::new(PandaModel::new()),
            Box::new(SnorkelModel::new()),
            Box::new(MajorityVote::default()),
        ];
        for (orig, mut copy) in fitted.into_iter().zip(fresh) {
            let blob = orig.capture_fitted().expect("fitted state captures");
            assert!(copy.restore_fitted(&blob), "{} restores", orig.name());
            for row in &rows {
                let a = orig.posterior_for_votes(row);
                let b = copy.posterior_for_votes(row);
                assert_eq!(
                    a.map(f64::to_bits),
                    b.map(f64::to_bits),
                    "{} bit-exact on {row:?}",
                    orig.name()
                );
            }
            // A truncated blob must be rejected and leave the model alone.
            if !blob.is_empty() {
                let mut other: Box<dyn LabelModel> = Box::new(PandaModel::new());
                assert!(!other.restore_fitted(&blob[..blob.len() - 1]));
            }
        }
    }
}
