//! Majority vote baseline.

use crate::LabelModel;
use panda_lf::LabelMatrix;
use panda_table::CandidateSet;

/// Majority vote: `γ = #(+1) / #votes`, falling back to `prior` when every
/// LF abstains.
#[derive(Debug, Clone)]
pub struct MajorityVote {
    /// Posterior assigned to pairs with no votes at all.
    pub prior: f64,
}

impl Default for MajorityVote {
    fn default() -> Self {
        // EM default: an unvoted pair is almost surely a non-match.
        MajorityVote { prior: 0.05 }
    }
}

impl MajorityVote {
    /// Majority vote with the given no-vote prior.
    pub fn new(prior: f64) -> Self {
        MajorityVote { prior }
    }
}

impl LabelModel for MajorityVote {
    fn name(&self) -> &'static str {
        "majority-vote"
    }

    fn fit_predict(&mut self, matrix: &LabelMatrix, _: Option<&CandidateSet>) -> Vec<f64> {
        let n = matrix.n_pairs();
        let mut pos = vec![0u32; n];
        let mut tot = vec![0u32; n];
        for (_, col) in matrix.columns() {
            for (i, &v) in col.iter().enumerate() {
                if v > 0 {
                    pos[i] += 1;
                    tot[i] += 1;
                } else if v < 0 {
                    tot[i] += 1;
                }
            }
        }
        (0..n)
            .map(|i| {
                if tot[i] == 0 {
                    self.prior
                } else {
                    f64::from(pos[i]) / f64::from(tot[i])
                }
            })
            .collect()
    }

    /// Stateless: the empty blob round-trips (`prior` is a construction
    /// parameter, rebuilt from the session config on restore).
    fn capture_fitted(&self) -> Option<Vec<f64>> {
        Some(Vec::new())
    }

    fn restore_fitted(&mut self, blob: &[f64]) -> bool {
        blob.is_empty()
    }

    /// Majority vote has no fitted state, so any vote row scores directly.
    fn posterior_for_votes(&self, votes: &[i8]) -> Option<f64> {
        let pos = votes.iter().filter(|&&v| v > 0).count();
        let tot = votes.iter().filter(|&&v| v != 0).count();
        Some(if tot == 0 {
            self.prior
        } else {
            pos as f64 / tot as f64
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{plant, PlantedLf};

    #[test]
    fn unanimous_votes_saturate() {
        let p = plant(200, 0.3, &[PlantedLf::symmetric(1.0, 1.0); 3], 1);
        let gamma = MajorityVote::default().fit_predict(&p.matrix, None);
        for (g, t) in gamma.iter().zip(&p.truth) {
            assert_eq!(*g >= 0.5, *t);
            assert!(*g == 0.0 || *g == 1.0);
        }
    }

    #[test]
    fn no_votes_fall_back_to_prior() {
        let p = plant(10, 0.5, &[PlantedLf::symmetric(0.0, 0.9)], 2);
        let gamma = MajorityVote::new(0.07).fit_predict(&p.matrix, None);
        assert!(gamma.iter().all(|&g| (g - 0.07).abs() < 1e-12));
    }

    #[test]
    fn split_vote_is_half() {
        let p = plant(
            50,
            0.5,
            &[
                PlantedLf::symmetric(1.0, 1.0),
                PlantedLf::symmetric(1.0, 0.0),
            ],
            3,
        );
        // One always right, one always wrong → every pair splits 1-1.
        let gamma = MajorityVote::default().fit_predict(&p.matrix, None);
        assert!(gamma.iter().all(|&g| (g - 0.5).abs() < 1e-12));
    }
}
