//! Planted-model generators shared by the model tests.
//!
//! Tests plant a known ground truth and synthesize LF votes from an
//! explicit noise process, then check that a model recovers the truth.
//! This validates the *inference code* independently of the dataset
//! generators.

use panda_lf::{ClosureLf, LabelMatrix, LfRegistry};
use panda_table::{CandidatePair, CandidateSet, Schema, Table, TablePair};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// One planted LF's behaviour.
#[derive(Debug, Clone, Copy)]
pub struct PlantedLf {
    /// P(vote ≠ 0 | y = match).
    pub propensity_m: f64,
    /// P(vote ≠ 0 | y = non-match).
    pub propensity_u: f64,
    /// P(vote = +1 | voted, y = match).
    pub acc_m: f64,
    /// P(vote = −1 | voted, y = non-match).
    pub acc_u: f64,
}

impl PlantedLf {
    /// A symmetric LF (same accuracy both classes).
    pub fn symmetric(propensity: f64, acc: f64) -> Self {
        PlantedLf {
            propensity_m: propensity,
            propensity_u: propensity,
            acc_m: acc,
            acc_u: acc,
        }
    }
}

/// A planted problem instance.
pub struct Planted {
    /// Ground truth per pair.
    pub truth: Vec<bool>,
    /// The tables/candidates backing the matrix (synthetic placeholders).
    pub tables: TablePair,
    /// Candidate set of `n` pairs.
    pub candidates: CandidateSet,
    /// The label matrix with votes sampled from the planted process.
    pub matrix: LabelMatrix,
}

/// Plant `n` pairs with match prior `pi`, then sample votes for each LF
/// spec. Everything is deterministic given `seed`.
pub fn plant(n: usize, pi: f64, lfs: &[PlantedLf], seed: u64) -> Planted {
    let mut rng = SmallRng::seed_from_u64(seed);
    let truth: Vec<bool> = (0..n).map(|_| rng.gen_bool(pi)).collect();

    // Pre-sample every vote so the ClosureLfs are pure lookups.
    let mut votes: Vec<Vec<i8>> = Vec::with_capacity(lfs.len());
    for spec in lfs {
        let col: Vec<i8> = truth
            .iter()
            .map(|&is_match| {
                let (prop, acc) = if is_match {
                    (spec.propensity_m, spec.acc_m)
                } else {
                    (spec.propensity_u, spec.acc_u)
                };
                if !rng.gen_bool(prop) {
                    0
                } else if is_match {
                    if rng.gen_bool(acc) {
                        1
                    } else {
                        -1
                    }
                } else if rng.gen_bool(acc) {
                    -1
                } else {
                    1
                }
            })
            .collect();
        votes.push(col);
    }

    // Dummy tables: pair i = (left i, right i).
    let schema = Schema::of_text(&["k"]);
    let mut left = Table::new("l", schema.clone());
    let mut right = Table::new("r", schema);
    for i in 0..n {
        left.push(vec![format!("{i}")]).unwrap();
        right.push(vec![format!("{i}")]).unwrap();
    }
    let tables = TablePair::new(left, right);
    let candidates = CandidateSet::from_pairs((0..n as u32).map(|i| CandidatePair::new(i, i)));

    let mut reg = LfRegistry::new();
    for (j, col) in votes.into_iter().enumerate() {
        reg.upsert(Arc::new(ClosureLf::new(format!("planted_{j}"), move |p| {
            panda_lf::Label::from_i8(col[p.pair.left.0 as usize])
        })));
    }
    let mut matrix = LabelMatrix::new();
    let report = matrix.apply(&reg, &tables, &candidates);
    assert!(report.failed.is_empty());

    Planted {
        truth,
        tables,
        candidates,
        matrix,
    }
}

/// F1 of thresholded posteriors against planted truth.
pub fn f1(posteriors: &[f64], truth: &[bool]) -> f64 {
    let mut tp = 0.0;
    let mut fp = 0.0;
    let mut fnc = 0.0;
    for (&g, &t) in posteriors.iter().zip(truth) {
        let pred = g >= 0.5;
        match (pred, t) {
            (true, true) => tp += 1.0,
            (true, false) => fp += 1.0,
            (false, true) => fnc += 1.0,
            _ => {}
        }
    }
    if tp == 0.0 {
        return 0.0;
    }
    let p = tp / (tp + fp);
    let r = tp / (tp + fnc);
    2.0 * p * r / (p + r)
}
