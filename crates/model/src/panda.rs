//! Panda's EM-specific labeling model (paper §2.1, feature 3).
//!
//! Two changes over the generic data-programming model, each motivated by
//! a property unique to entity matching:
//!
//! 1. **Class-conditional parameters.** EM is heavily class-imbalanced:
//!    non-matches vastly outnumber matches. With a single accuracy
//!    parameter, an LF that always votes −1 looks ~99% accurate while
//!    carrying no information about matches. Panda gives every LF
//!    `α_M = P(λ=+1 | voted, y=match)` and `α_U = P(λ=−1 | voted,
//!    y=non-match)`, plus class-conditional propensities
//!    `p_M, p_U = P(voted | y)` — abstention patterns are themselves
//!    informative (`size_unmatch` only fires when both sides carry a
//!    size). All parameters and the latent `y` are estimated by EM.
//!
//! 2. **Transitivity.** Each E-step optionally projects the posterior
//!    vector onto the ZeroER feasible set `γ_ij·γ_ik ≤ γ_jk`
//!    (see [`crate::transitivity`]).

use crate::transitivity::{TransitivityGraph, TransitivityMode};
use crate::{logit, sigmoid, LabelModel};
use panda_lf::{LabelMatrix, PackedVotes, VOTES_PER_WORD};
use panda_table::CandidateSet;

/// 2-bit vote code → θ slot (`0` = +1, `1` = −1, `2` = abstain). The
/// reserved code `0b11` maps to abstain defensively; it is never stored.
const CODE_SLOT: [usize; 4] = [2, 0, 1, 2];

/// One multi-start EM run's outcome (diagnostics).
#[derive(Debug, Clone)]
pub struct StartDiagnostic {
    /// Which warm start produced this solution.
    pub init: &'static str,
    /// The selection score ([`informativeness`]-based).
    pub informativeness: f64,
    /// The converged posteriors.
    pub posteriors: Vec<f64>,
    /// The converged prior.
    pub prior: f64,
}

/// Fitted per-LF parameters (exposed for the LF Stats Panel and tests).
#[derive(Debug, Clone, Default)]
pub struct PandaLfParams {
    /// `P(λ=+1 | voted, y=match)` per LF.
    pub acc_match: Vec<f64>,
    /// `P(λ=−1 | voted, y=non-match)` per LF.
    pub acc_unmatch: Vec<f64>,
    /// `P(voted | y=match)` per LF.
    pub prop_match: Vec<f64>,
    /// `P(voted | y=non-match)` per LF.
    pub prop_unmatch: Vec<f64>,
}

/// The Panda labeling model.
#[derive(Debug, Clone)]
pub struct PandaModel {
    /// EM iterations.
    pub max_iters: usize,
    /// Convergence threshold on mean |Δγ|.
    pub tol: f64,
    /// Initial class prior.
    pub prior: f64,
    /// Re-estimate the prior each M-step.
    pub learn_prior: bool,
    /// Upper bound on the learned prior. Entity matching candidate sets
    /// are non-match dominated even after blocking; without the bound the
    /// anchored-accuracy EM has an "everything matches" fixed point it
    /// can run away into when evidence is weak (few LFs).
    pub max_prior: f64,
    /// Enable the transitivity projection with this node-identification
    /// mode. `None` disables it.
    pub transitivity: Option<TransitivityMode>,
    /// Projection sweeps per E-step.
    pub projection_sweeps: usize,
    /// Cap on enumerated triangles (0 = unlimited).
    pub max_triangles: usize,
    /// Fitted parameters after `fit_predict`.
    pub params: PandaLfParams,
    /// Fitted prior after `fit_predict`.
    pub fitted_prior: f64,
    /// Per-start diagnostics of the last fit (init name, selection score,
    /// posteriors). Exposed for ablation experiments and debugging.
    pub start_diagnostics: Vec<StartDiagnostic>,
    /// When set, LFs whose votes agree above this threshold are clustered
    /// and their evidence discounted by 1/cluster-size (see
    /// [`crate::correlation`]).
    pub correlation_threshold: Option<f64>,
    /// The chosen solution's per-LF vote distributions
    /// `[P(+1|y), P(−1|y), P(0|y)]` under `y = match` — kept so ad-hoc
    /// vote rows can be scored by replicating the E-step without a refit.
    pub fitted_theta_m: Vec<[f64; 3]>,
    /// Same under `y = non-match`.
    pub fitted_theta_u: Vec<[f64; 3]>,
    /// Evidence discounts the last fit used (all 1.0 without correlation
    /// clustering).
    pub fitted_discounts: Vec<f64>,
    /// Posterior vector to seed the next fit with (see
    /// [`LabelModel::set_warm_start`]). Consumed by `fit_predict`.
    pub warm_start: Option<Vec<f64>>,
}

impl Default for PandaModel {
    fn default() -> Self {
        PandaModel {
            max_iters: 100,
            tol: 1e-6,
            prior: 0.1,
            learn_prior: true,
            max_prior: 0.35,
            transitivity: None,
            projection_sweeps: 5,
            max_triangles: 500_000,
            params: PandaLfParams::default(),
            fitted_prior: 0.1,
            start_diagnostics: Vec::new(),
            correlation_threshold: None,
            fitted_theta_m: Vec::new(),
            fitted_theta_u: Vec::new(),
            fitted_discounts: Vec::new(),
            warm_start: None,
        }
    }
}

impl PandaModel {
    /// Default configuration (no transitivity).
    pub fn new() -> Self {
        Self::default()
    }

    /// Enable the ZeroER transitivity projection.
    pub fn with_transitivity(mut self, mode: TransitivityMode) -> Self {
        self.transitivity = Some(mode);
        self
    }

    /// Fix the class prior instead of learning it.
    pub fn with_fixed_prior(mut self, prior: f64) -> Self {
        self.prior = prior;
        self.learn_prior = false;
        self
    }

    /// Raise the learned-prior cap (balanced or match-dominated tasks).
    pub fn with_max_prior(mut self, max_prior: f64) -> Self {
        self.max_prior = max_prior;
        self
    }

    /// Discount near-duplicate LFs' evidence (agreement ≥ `threshold`).
    pub fn with_correlation_discounts(mut self, threshold: f64) -> Self {
        self.correlation_threshold = Some(threshold);
        self
    }
}

/// One converged EM run. `theta_m[j]` / `theta_u[j]` are each LF's
/// per-class vote distributions `[P(+1|y), P(−1|y), P(0|y)]`.
struct EmSolution {
    gamma: Vec<f64>,
    pi: f64,
    theta_m: Vec<[f64; 3]>,
    theta_u: Vec<[f64; 3]>,
    /// E/M iterations executed before convergence (or `max_iters`).
    iters: usize,
    /// Mean |Δγ| of the final E-step (≤ `tol` iff converged).
    final_delta: f64,
}

impl EmSolution {
    /// `P(λ=+1 | voted, y=match)` — the stats-panel view of θ_M.
    fn acc_match(&self, j: usize) -> f64 {
        let t = &self.theta_m[j];
        t[0] / (t[0] + t[1]).max(1e-12)
    }
    /// `P(λ=−1 | voted, y=non-match)`.
    fn acc_unmatch(&self, j: usize) -> f64 {
        let t = &self.theta_u[j];
        t[1] / (t[0] + t[1]).max(1e-12)
    }
    fn prop_match(&self, j: usize) -> f64 {
        self.theta_m[j][0] + self.theta_m[j][1]
    }
    fn prop_unmatch(&self, j: usize) -> f64 {
        self.theta_u[j][0] + self.theta_u[j][1]
    }
}

/// Solution-selection score: total LF **informativeness**.
///
/// For each LF, Youden's J statistic under the solution's own labeling —
/// `acc_M + acc_U − 1 ∈ [0, 1]` (0 = the LF's votes carry no information
/// about the clusters, 1 = votes separate them perfectly) — weighted by
/// how many votes the LF casts. Locally-optimal-but-wrong clusterings
/// necessarily *waste* strong LFs: explaining away a disagreeing phone LF
/// (fake name-similarity cluster) pools its accuracy to vacuous, and a
/// degenerate one-class solution pools everything. The correct clustering
/// is the one where the most vote mass is informative. (Model likelihood
/// is unusable here: the mixture can absorb all votes into one class, and
/// the abstention structure — which the E-step clamps for the same reason
/// — dominates the full likelihood.)
fn informativeness(cols: &[&PackedVotes], sol: &EmSolution) -> f64 {
    cols.iter()
        .enumerate()
        .map(|(j, col)| {
            let (n_match, n_unmatch, _) = col.counts();
            let votes = (n_match + n_unmatch) as f64;
            let youden = (sol.acc_match(j) + sol.acc_unmatch(j) - 1.0).max(0.0);
            votes * youden
        })
        .sum()
}

/// Per-LF lookup tables for the E-step: 2-bit vote code → discounted,
/// clamped log-odds term. Entries use exactly the expression
/// [`LabelModel::posterior_for_votes`] replicates, so the table-driven
/// E-step and ad-hoc scoring agree bit-exactly. The reserved code `0b11`
/// maps to 0 (never stored).
fn vote_term_tables(
    theta_m: &[[f64; 3]],
    theta_u: &[[f64; 3]],
    discounts: &[f64],
) -> Vec<[f64; 4]> {
    theta_m
        .iter()
        .zip(theta_u)
        .zip(discounts)
        .map(|((tm, tu), &d)| {
            let term = |slot: usize| {
                let t = tm[slot].ln() - tu[slot].ln();
                let t = if slot == 2 {
                    t.clamp(-0.35, 0.35)
                } else {
                    t.clamp(-2.5, 2.5)
                };
                d * t
            };
            [term(2), term(0), term(1), 0.0]
        })
        .collect()
}

impl PandaModel {
    /// Run EM to convergence from one initial posterior vector.
    ///
    /// Both steps iterate the **packed** vote columns word-at-a-time
    /// (32 votes per `u64`, branch-free slot lookup) in LF-major order.
    /// The per-pair float addition sequence is identical to the historical
    /// pair-major scalar loop, so posteriors are bit-identical to it —
    /// the property `posterior_for_votes` and the wire-parity tests rely
    /// on.
    fn em_run(
        &self,
        cols: &[&PackedVotes],
        discounts: &[f64],
        n: usize,
        mut gamma: Vec<f64>,
        init: &'static str,
    ) -> EmSolution {
        let m = cols.len();
        let mut pi = self.prior;
        let mut theta_m = vec![[0.3f64, 0.3, 0.4]; m];
        let mut theta_u = vec![[0.3f64, 0.3, 0.4]; m];
        let mut iters = 0usize;
        let mut final_delta = f64::INFINITY;
        // Per-pair accumulated log-odds, reused across iterations.
        let mut lo = vec![0.0f64; n];

        for _iter in 0..self.max_iters {
            iters += 1;
            // M-step from current responsibilities (iteration 0 consumes
            // the warm start): per class, each LF's vote distribution is a
            // smoothed 3-way categorical over {+1, −1, 0}.
            let s_m: f64 = gamma.iter().sum();
            let s_u: f64 = n as f64 - s_m;
            const ALPHA: f64 = 0.5; // Dirichlet smoothing
            for (j, col) in cols.iter().enumerate() {
                let mut cm = [ALPHA; 3];
                let mut cu = [ALPHA; 3];
                for (w_idx, &word) in col.words().iter().enumerate() {
                    let start = w_idx * VOTES_PER_WORD;
                    let lanes = (n - start).min(VOTES_PER_WORD);
                    let mut w = word;
                    for &g in &gamma[start..start + lanes] {
                        let slot = CODE_SLOT[(w & 0b11) as usize];
                        cm[slot] += g;
                        cu[slot] += 1.0 - g;
                        w >>= 2;
                    }
                }
                let zm = s_m + 3.0 * ALPHA;
                let zu = s_u + 3.0 * ALPHA;
                let mut tm = [cm[0] / zm, cm[1] / zm, cm[2] / zm];
                let mut tu = [cu[0] / zu, cu[1] / zu, cu[2] / zu];

                // Polarity monotonicity (the "votes mean what they say"
                // identifiability constraint): a +1 vote may not be *less*
                // likely under match than under non-match, and vice versa
                // for −1. A violating estimate is pooled to the common
                // rate, making the vote vacuous instead of inverted. This
                // replaces a hard 0.5 accuracy anchor, which for one-sided
                // LFs (never voting −1) manufactured spurious evidence
                // out of the unidentifiable side.
                if tm[0] < tu[0] {
                    let pooled = (s_m * tm[0] + s_u * tu[0]) / (s_m + s_u).max(1e-9);
                    tm[0] = pooled;
                    tu[0] = pooled;
                }
                if tu[1] < tm[1] {
                    let pooled = (s_m * tm[1] + s_u * tu[1]) / (s_m + s_u).max(1e-9);
                    tm[1] = pooled;
                    tu[1] = pooled;
                }
                // Renormalise (pooling perturbs the simplex slightly).
                for t in [&mut tm, &mut tu] {
                    let z: f64 = t.iter().sum();
                    for x in t.iter_mut() {
                        *x = (*x / z).max(1e-4);
                    }
                }
                theta_m[j] = tm;
                theta_u[j] = tu;
            }
            if self.learn_prior {
                pi = (s_m / n as f64).clamp(1e-4, self.max_prior);
            }

            // E-step, LF-major over packed words. Each LF contributes one
            // of four precomputed terms per pair, selected by the 2-bit
            // vote code — the inner loop is a table lookup plus an add,
            // with no per-vote branches. Per pair the additions still
            // happen in ascending-j order on top of `logit(pi)`, so the
            // result is bit-identical to the historical per-pair loop.
            //
            // Abstention is evidence, but weak evidence: clamp its
            // log-odds so systematic abstention patterns cannot flip the
            // cluster semantics on their own. Vote evidence is clamped
            // too (generously): no single LF may contribute more than
            // ±2.5 nats, the equivalent of ~92% accuracy — the same role
            // the accuracy ceiling plays in the Snorkel baseline.
            let term_tables = vote_term_tables(&theta_m, &theta_u, discounts);
            lo.fill(logit(pi));
            for (j, col) in cols.iter().enumerate() {
                let table = &term_tables[j];
                for (w_idx, &word) in col.words().iter().enumerate() {
                    let start = w_idx * VOTES_PER_WORD;
                    let lanes = (n - start).min(VOTES_PER_WORD);
                    let mut w = word;
                    for lo_i in &mut lo[start..start + lanes] {
                        *lo_i += table[(w & 0b11) as usize];
                        w >>= 2;
                    }
                }
            }
            let mut delta = 0.0;
            for (g_i, &lo_i) in gamma.iter_mut().zip(&lo) {
                let g = sigmoid(lo_i);
                delta += (g - *g_i).abs();
                *g_i = g;
            }

            final_delta = delta / n as f64;
            // Per-iteration provenance (journal only): the observed-data
            // log-likelihood and parameter means are O(n·m) extra work, so
            // they are computed exclusively when someone is recording.
            if panda_obs::journal_enabled() {
                let mut ll = 0.0;
                for i in 0..n {
                    let mut lm = pi.ln();
                    let mut lu = (1.0 - pi).ln();
                    for (j, col) in cols.iter().enumerate() {
                        let slot = CODE_SLOT[col.code(i) as usize];
                        lm += theta_m[j][slot].ln();
                        lu += theta_u[j][slot].ln();
                    }
                    let mx = lm.max(lu);
                    ll += mx + ((lm - mx).exp() + (lu - mx).exp()).ln();
                }
                let mean = |f: &dyn Fn(usize) -> f64| (0..m).map(f).sum::<f64>() / m.max(1) as f64;
                panda_obs::event("model.em.iter")
                    .field("model", "panda")
                    .field("init", init)
                    .field("iter", iters)
                    .field("ll", ll)
                    .field(
                        "alpha_m",
                        mean(&|j| {
                            let t = &theta_m[j];
                            t[0] / (t[0] + t[1]).max(1e-12)
                        }),
                    )
                    .field(
                        "alpha_u",
                        mean(&|j| {
                            let t = &theta_u[j];
                            t[1] / (t[0] + t[1]).max(1e-12)
                        }),
                    )
                    .field("delta", final_delta)
                    .field("pi", pi)
                    .emit();
            }
            if final_delta <= self.tol {
                break;
            }
        }
        EmSolution {
            gamma,
            pi,
            theta_m,
            theta_u,
            iters,
            final_delta,
        }
    }
}

impl LabelModel for PandaModel {
    fn name(&self) -> &'static str {
        if self.transitivity.is_some() {
            "panda+transitivity"
        } else {
            "panda"
        }
    }

    fn fit_predict(&mut self, matrix: &LabelMatrix, candidates: Option<&CandidateSet>) -> Vec<f64> {
        let _span = panda_obs::span("model.panda.fit");
        let n = matrix.n_pairs();
        let cols: Vec<&PackedVotes> = matrix.packed_columns().map(|(_, c)| c).collect();
        let m = cols.len();
        // Reset ALL fitted state on every entry: a degenerate matrix must
        // not leave diagnostics or parameters from a previous fit visible
        // as if this fit produced them. The warm start is consumed even on
        // the degenerate early return so a stale vector cannot leak into
        // a later fit of a different matrix.
        self.params = PandaLfParams::default();
        self.fitted_prior = self.prior;
        self.start_diagnostics.clear();
        self.fitted_theta_m.clear();
        self.fitted_theta_u.clear();
        self.fitted_discounts.clear();
        let warm = self.warm_start.take().filter(|w| w.len() == n);
        if n == 0 || m == 0 {
            return vec![self.prior; n];
        }

        let graph = match (&self.transitivity, candidates) {
            (Some(mode), Some(cands)) => {
                Some(TransitivityGraph::build(cands, *mode, self.max_triangles))
            }
            _ => None,
        };

        let discounts: Vec<f64> = match self.correlation_threshold {
            Some(t) => crate::correlation::evidence_discounts(matrix, t),
            None => vec![1.0; m],
        };

        // Multi-start EM: the class-conditional model is flexible enough
        // to have locally-optimal but *wrong* clusterings (e.g. "cluster =
        // pairs with similar names", explaining away a disagreeing phone
        // LF by pushing its one-sided accuracy to the anchor). We run EM
        // from several warm starts and keep the solution with the highest
        // [`informativeness`] score (vote-weighted Youden's J under the
        // solution's own labeling — NOT the model likelihood, which the
        // one-class fixed point and the abstention structure dominate; see
        // the score's doc comment). Each start's score lands in
        // `start_diagnostics` and, when metrics are on, in the obs gauges
        // `model.panda.informativeness.<init>`.
        let snorkel_init = {
            // The rigid single-accuracy model can't "explain away" a
            // strong LF with class-conditional slack, so its optimum is a
            // high-quality warm start that the class-conditional EM then
            // refines.
            let mut sn = crate::SnorkelModel {
                prior: self.prior,
                learn_prior: self.learn_prior,
                max_prior: self.max_prior,
                ..crate::SnorkelModel::new()
            };
            sn.fit_predict(matrix, None)
        };
        let mut inits: Vec<(&'static str, Vec<f64>)> = vec![
            // Smoothed majority: robust under junk-heavy candidate sets.
            (
                "smoothed",
                crate::smoothed_majority_init(matrix, self.prior),
            ),
            // Hard majority: decisive when LFs are few but precise.
            (
                "majority",
                crate::MajorityVote::new(self.prior).fit_predict(matrix, None),
            ),
            // Pessimistic smoothed init: favours small match clusters.
            (
                "pessimistic",
                crate::smoothed_majority_init(matrix, (self.prior * 0.25).max(1e-3)),
            ),
            // The Snorkel baseline's converged posterior.
            ("snorkel", snorkel_init),
        ];
        // Interactive refits (the serve loop's `POST .../fit`) seed EM
        // with the previously converged posterior. The informativeness
        // selection below still decides between all starts, so a stale
        // warm start after a large LF edit loses to a cold start instead
        // of trapping the fit in yesterday's optimum.
        if let Some(w) = warm {
            inits.push(("warm", w));
        }
        let mut best: Option<(f64, &'static str, EmSolution)> = None;
        let mut diagnostics = Vec::new();
        for (init_name, init) in inits {
            let sol = self.em_run(&cols, &discounts, n, init, init_name);
            let score = informativeness(&cols, &sol);
            if panda_obs::enabled() {
                panda_obs::counter_add(
                    &format!("model.panda.em_iters.{init_name}"),
                    sol.iters as u64,
                );
                panda_obs::gauge_set(&format!("model.panda.informativeness.{init_name}"), score);
                panda_obs::gauge_set(
                    &format!("model.panda.final_delta.{init_name}"),
                    sol.final_delta,
                );
            }
            diagnostics.push(StartDiagnostic {
                init: init_name,
                informativeness: score,
                posteriors: sol.gamma.clone(),
                prior: sol.pi,
            });
            if best.as_ref().map(|(b, ..)| score > *b).unwrap_or(true) {
                best = Some((score, init_name, sol));
            }
        }
        self.start_diagnostics = diagnostics;
        let (_, chosen_init, sol) = best.expect("at least one init");
        if panda_obs::enabled() {
            panda_obs::counter_add(&format!("model.panda.chosen_init.{chosen_init}"), 1);
        }
        let (acc_m, acc_u, prop_m, prop_u) = (
            (0..m).map(|j| sol.acc_match(j)).collect::<Vec<_>>(),
            (0..m).map(|j| sol.acc_unmatch(j)).collect::<Vec<_>>(),
            (0..m).map(|j| sol.prop_match(j)).collect::<Vec<_>>(),
            (0..m).map(|j| sol.prop_unmatch(j)).collect::<Vec<_>>(),
        );
        let (mut gamma, pi) = (sol.gamma, sol.pi);

        // Enforce the transitivity constraint on the output posteriors
        // (ZeroER projects the estimated probabilistic labels onto the
        // feasible set Q). Parameter estimation above uses the
        // *unprojected* responsibilities: feeding projected labels back
        // into the M-step lets systematic infeasibility (e.g. LFs that
        // abstain on one edge of every triangle) corrupt the accuracy
        // estimates and collapse the fit. Evidence weights make the
        // projection move weakly-voted pairs the most, so two confident
        // edges of a triangle pull up a missed third edge.
        if let Some(g) = &graph {
            let _span = panda_obs::span("model.transitivity.project");
            let recording = panda_obs::enabled() || panda_obs::journal_enabled();
            let pre_mass = if recording {
                g.violation_mass(&gamma)
            } else {
                0.0
            };
            if panda_obs::enabled() {
                panda_obs::gauge_set("model.transitivity.violation_mass_pre", pre_mass);
            }
            // Pairs with no LF votes carry no evidence of their own: their
            // posterior is free to be set by the implication γ_x·γ_y.
            let movable: Vec<bool> = (0..n)
                .map(|i| cols.iter().all(|c| c.code(i) == 0))
                .collect();
            let raised = crate::transitivity::transitive_boost(
                &mut gamma,
                g,
                &movable,
                self.projection_sweeps.max(5),
            );
            // Residual violations among voted pairs: evidence-weighted
            // half-space projection (more votes = harder to move).
            let weights: Vec<f64> = (0..n)
                .map(|i| 0.5 + cols.iter().filter(|c| c.code(i) != 0).count() as f64)
                .collect();
            let sweeps = crate::transitivity::project_transitivity_weighted(
                &mut gamma,
                g,
                Some(&weights),
                self.projection_sweeps.max(5),
                1e-6,
            );
            panda_obs::counter_add("model.transitivity.boosted", raised as u64);
            panda_obs::counter_add("model.transitivity.projection_sweeps", sweeps as u64);
            if panda_obs::enabled() {
                panda_obs::gauge_set(
                    "model.transitivity.violation_mass_post",
                    g.violation_mass(&gamma),
                );
            }
            // Journal summary: emitted even for triangle-free candidate
            // sets (two-table blocking often yields none), so a run's
            // journal always records that the projection stage ran.
            if panda_obs::journal_enabled() {
                panda_obs::event("model.transitivity.projection")
                    .field("triangles", g.n_triangles())
                    .field("boosted", raised)
                    .field("sweeps", sweeps)
                    .field("violation_mass_pre", pre_mass)
                    .field("violation_mass_post", g.violation_mass(&gamma))
                    .emit();
            }
        }

        self.params = PandaLfParams {
            acc_match: acc_m,
            acc_unmatch: acc_u,
            prop_match: prop_m,
            prop_unmatch: prop_u,
        };
        self.fitted_prior = pi;
        self.fitted_theta_m = sol.theta_m;
        self.fitted_theta_u = sol.theta_u;
        self.fitted_discounts = discounts;
        gamma
    }

    fn set_warm_start(&mut self, previous: &[f64]) {
        self.warm_start = Some(previous.to_vec());
    }

    /// Replicates the chosen solution's final E-step (including the
    /// abstain/vote clamps) for one vote row. A row already present in
    /// the fitted matrix scores bit-identically to its fitted posterior
    /// *before* the transitivity projection — ad-hoc pairs have no place
    /// in the pair graph, so the projection cannot apply to them.
    fn posterior_for_votes(&self, votes: &[i8]) -> Option<f64> {
        if self.fitted_theta_m.is_empty() || votes.len() != self.fitted_theta_m.len() {
            return None;
        }
        let mut lo = logit(self.fitted_prior);
        for (j, &v) in votes.iter().enumerate() {
            let slot = match v {
                1.. => 0,
                0 => 2,
                _ => 1,
            };
            let term = self.fitted_theta_m[j][slot].ln() - self.fitted_theta_u[j][slot].ln();
            let term = if slot == 2 {
                term.clamp(-0.35, 0.35)
            } else {
                term.clamp(-2.5, 2.5)
            };
            lo += self.fitted_discounts[j] * term;
        }
        Some(sigmoid(lo))
    }

    /// Blob layout: `[m, fitted_prior, θ_M flat (3m), θ_U flat (3m),
    /// fitted_discounts (m)]` — everything `posterior_for_votes` and a
    /// warm-started refit read.
    fn capture_fitted(&self) -> Option<Vec<f64>> {
        let m = self.fitted_theta_m.len();
        if self.fitted_theta_u.len() != m || self.fitted_discounts.len() != m {
            return None;
        }
        let mut blob = Vec::with_capacity(2 + 7 * m);
        blob.push(m as f64);
        blob.push(self.fitted_prior);
        for row in &self.fitted_theta_m {
            blob.extend_from_slice(row);
        }
        for row in &self.fitted_theta_u {
            blob.extend_from_slice(row);
        }
        blob.extend_from_slice(&self.fitted_discounts);
        Some(blob)
    }

    fn restore_fitted(&mut self, blob: &[f64]) -> bool {
        let Some(m) = crate::snorkel::decode_arity(blob, 7) else {
            return false;
        };
        let theta = |base: usize, j: usize| -> [f64; 3] {
            [
                blob[base + 3 * j],
                blob[base + 3 * j + 1],
                blob[base + 3 * j + 2],
            ]
        };
        self.fitted_prior = blob[1];
        self.fitted_theta_m = (0..m).map(|j| theta(2, j)).collect();
        self.fitted_theta_u = (0..m).map(|j| theta(2 + 3 * m, j)).collect();
        self.fitted_discounts = blob[2 + 6 * m..2 + 7 * m].to_vec();
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{f1, plant, PlantedLf};
    use crate::SnorkelModel;
    use panda_lf::{ClosureLf, LfRegistry};
    use panda_table::{CandidatePair, Schema, Table, TablePair};
    use std::sync::Arc;

    #[test]
    fn recovers_class_conditional_accuracies() {
        let specs = [
            PlantedLf {
                propensity_m: 0.9,
                propensity_u: 0.9,
                acc_m: 0.9,
                acc_u: 0.6,
            },
            PlantedLf {
                propensity_m: 0.9,
                propensity_u: 0.9,
                acc_m: 0.55,
                acc_u: 0.92,
            },
            PlantedLf::symmetric(0.8, 0.8),
        ];
        let p = plant(6000, 0.3, &specs, 31);
        let mut model = PandaModel::new();
        let gamma = model.fit_predict(&p.matrix, None);
        assert!(f1(&gamma, &p.truth) > 0.7, "f1 {}", f1(&gamma, &p.truth));
        let pr = &model.params;
        assert!(
            (pr.acc_match[0] - 0.9).abs() < 0.08,
            "acc_m {:?}",
            pr.acc_match
        );
        assert!(
            (pr.acc_unmatch[0] - 0.6).abs() < 0.08,
            "acc_u {:?}",
            pr.acc_unmatch
        );
        assert!((pr.acc_match[1] - 0.55).abs() < 0.1);
        assert!((pr.acc_unmatch[1] - 0.92).abs() < 0.06);
    }

    #[test]
    fn beats_snorkel_under_class_imbalance() {
        // The paper's motivation: under imbalance + asymmetric LFs the
        // single-accuracy model mis-weights votes. Mix of match-precise
        // and unmatch-precise LFs at prior 0.05.
        let specs = [
            PlantedLf {
                propensity_m: 0.85,
                propensity_u: 0.85,
                acc_m: 0.92,
                acc_u: 0.55,
            },
            PlantedLf {
                propensity_m: 0.85,
                propensity_u: 0.85,
                acc_m: 0.9,
                acc_u: 0.6,
            },
            PlantedLf {
                propensity_m: 0.85,
                propensity_u: 0.85,
                acc_m: 0.55,
                acc_u: 0.9,
            },
            PlantedLf {
                propensity_m: 0.6,
                propensity_u: 0.95,
                acc_m: 0.6,
                acc_u: 0.93,
            },
            PlantedLf {
                propensity_m: 0.9,
                propensity_u: 0.4,
                acc_m: 0.88,
                acc_u: 0.5,
            },
        ];
        let p = plant(8000, 0.05, &specs, 37);
        let f1_panda = f1(&PandaModel::new().fit_predict(&p.matrix, None), &p.truth);
        let f1_snorkel = f1(&SnorkelModel::new().fit_predict(&p.matrix, None), &p.truth);
        assert!(
            f1_panda > f1_snorkel,
            "panda {f1_panda:.3} must beat snorkel {f1_snorkel:.3} under imbalance"
        );
    }

    #[test]
    fn multi_start_diagnostics_are_exposed() {
        let p = plant(400, 0.2, &[PlantedLf::symmetric(0.8, 0.85); 3], 71);
        let mut model = PandaModel::new();
        let gamma = model.fit_predict(&p.matrix, None);
        assert_eq!(model.start_diagnostics.len(), 4, "four warm starts");
        let names: Vec<&str> = model.start_diagnostics.iter().map(|d| d.init).collect();
        assert_eq!(
            names,
            vec!["smoothed", "majority", "pessimistic", "snorkel"]
        );
        for d in &model.start_diagnostics {
            assert_eq!(d.posteriors.len(), gamma.len());
            assert!(d.informativeness >= 0.0);
            assert!((0.0..=1.0).contains(&d.prior));
        }
        // The returned posteriors are the best-scoring start's.
        let best = model
            .start_diagnostics
            .iter()
            .max_by(|a, b| a.informativeness.total_cmp(&b.informativeness))
            .unwrap();
        assert_eq!(best.posteriors, gamma);
    }

    #[test]
    fn one_sided_lf_does_not_manufacture_evidence() {
        // An LF that votes +1 on EVERY pair regardless of class: under the
        // categorical parametrization with polarity pooling its votes must
        // be vacuous — posteriors equal those of a fit without it.
        let specs = [
            PlantedLf::symmetric(0.9, 0.85),
            PlantedLf::symmetric(0.8, 0.8),
        ];
        let p = plant(2000, 0.1, &specs, 73);
        let base = PandaModel::new().fit_predict(&p.matrix, None);

        let c0: Vec<i8> = p.matrix.column("planted_0").unwrap();
        let c1: Vec<i8> = p.matrix.column("planted_1").unwrap();
        let mut reg = panda_lf::LfRegistry::new();
        for (name, col) in [("a", c0), ("b", c1)] {
            reg.upsert(Arc::new(ClosureLf::new(name, move |pr| {
                panda_lf::Label::from_i8(col[pr.pair.left.0 as usize])
            })));
        }
        reg.upsert(Arc::new(ClosureLf::new("always_yes", |_| {
            panda_lf::Label::Match
        })));
        let mut matrix = panda_lf::LabelMatrix::new();
        matrix.apply(&reg, &p.tables, &p.candidates);
        let with_vacuous = PandaModel::new().fit_predict(&matrix, None);

        let f1_base = f1(&base, &p.truth);
        let f1_with = f1(&with_vacuous, &p.truth);
        assert!(
            (f1_base - f1_with).abs() < 0.05,
            "constant LF must be ~vacuous: {f1_base:.3} vs {f1_with:.3}"
        );
    }

    #[test]
    fn adhoc_scoring_matches_fitted_posteriors_bit_exactly() {
        let p = plant(600, 0.2, &[PlantedLf::symmetric(0.85, 0.8); 3], 47);
        let mut model = PandaModel::new();
        let gamma = model.fit_predict(&p.matrix, None);
        for (i, g) in gamma.iter().enumerate() {
            let row = p.matrix.row(i);
            assert_eq!(
                model.posterior_for_votes(&row),
                Some(*g),
                "ad-hoc scoring replicates the final E-step on row {i}"
            );
        }
        // Wrong arity and the unfitted model both refuse to score.
        assert_eq!(model.posterior_for_votes(&[1i8]), None);
        assert_eq!(PandaModel::new().posterior_for_votes(&[1i8, 0, -1]), None);
    }

    #[test]
    fn warm_start_adds_a_fifth_start_and_is_consumed() {
        let p = plant(500, 0.2, &[PlantedLf::symmetric(0.85, 0.8); 3], 53);
        let mut model = PandaModel::new();
        let cold = model.fit_predict(&p.matrix, None);
        assert_eq!(model.start_diagnostics.len(), 4);

        model.set_warm_start(&cold);
        let warm = model.fit_predict(&p.matrix, None);
        let names: Vec<&str> = model.start_diagnostics.iter().map(|d| d.init).collect();
        assert_eq!(
            names,
            vec!["smoothed", "majority", "pessimistic", "snorkel", "warm"]
        );
        // Warm-starting from the converged solution stays in its basin
        // (one extra M+E round perturbs θ within the convergence
        // tolerance, so bit-identity is not expected — stability is).
        let drift = warm
            .iter()
            .zip(&cold)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(drift < 0.05, "refit stays near the fixed point: {drift}");
        let same_side = warm
            .iter()
            .zip(&cold)
            .all(|(a, b)| (*a >= 0.5) == (*b >= 0.5));
        assert!(same_side, "no decision flips on refit");
        // The warm start was consumed: the next fit is cold again.
        model.fit_predict(&p.matrix, None);
        assert_eq!(model.start_diagnostics.len(), 4);
    }

    #[test]
    fn mismatched_warm_start_is_ignored() {
        let p = plant(300, 0.2, &[PlantedLf::symmetric(0.85, 0.8); 2], 59);
        let mut model = PandaModel::new();
        model.set_warm_start(&[0.5; 7]); // wrong length for this matrix
        model.fit_predict(&p.matrix, None);
        assert_eq!(model.start_diagnostics.len(), 4, "bad warm start dropped");
    }

    #[test]
    fn posteriors_in_unit_interval_and_deterministic() {
        let p = plant(800, 0.15, &[PlantedLf::symmetric(0.7, 0.8); 4], 41);
        let g1 = PandaModel::new().fit_predict(&p.matrix, None);
        let g2 = PandaModel::new().fit_predict(&p.matrix, None);
        assert_eq!(g1, g2, "fit is deterministic");
        assert!(g1.iter().all(|g| (0.0..=1.0).contains(g)));
    }

    #[test]
    fn empty_matrix_returns_prior() {
        let p = plant(4, 0.5, &[], 43);
        let mut model = PandaModel::new().with_fixed_prior(0.25);
        assert_eq!(model.fit_predict(&p.matrix, None), vec![0.25; 4]);
    }

    /// Transitivity repairs a missed within-cluster edge: two confident
    /// edges of a triangle pull the third above threshold.
    #[test]
    fn transitivity_recovers_missed_cluster_edges() {
        // Self-join over 30 records: 10 clusters of 3 (records 3k, 3k+1,
        // 3k+2 are the same entity). Candidates: all within-cluster pairs
        // + a ring of cross-cluster distractor pairs.
        let schema = Schema::of_text(&["k"]);
        let mut t = Table::new("t", schema);
        for i in 0..30 {
            t.push(vec![format!("{i}")]).unwrap();
        }
        let tables = TablePair::new(t.clone(), t);
        let mut pairs = Vec::new();
        let mut truth = Vec::new();
        for k in 0..10u32 {
            let (a, b, c) = (3 * k, 3 * k + 1, 3 * k + 2);
            for (x, y) in [(a, b), (a, c), (b, c)] {
                pairs.push(CandidatePair::new(x, y));
                truth.push(true);
            }
            // distractor to the next cluster
            pairs.push(CandidatePair::new(a, (3 * (k + 1)) % 30));
            truth.push(false);
        }
        let candidates = panda_table::CandidateSet::from_pairs(pairs.clone());

        // Two LFs: both confidently label the first two edges of each
        // triangle and the distractors, but ABSTAIN on every third edge
        // (b,c) — the "hard" pair a pure per-pair model can only assign
        // the prior.
        let mk = |name: &str| {
            let pairs = pairs.clone();
            Arc::new(ClosureLf::new(name.to_string(), move |p| {
                let idx = pairs.iter().position(|q| *q == p.pair).expect("pair known");
                match idx % 4 {
                    0 | 1 => panda_lf::Label::Match, // (a,b), (a,c)
                    2 => panda_lf::Label::Abstain,   // (b,c) — missed
                    _ => panda_lf::Label::NonMatch,  // distractor
                }
            }))
        };
        let mut reg = LfRegistry::new();
        reg.upsert(mk("lf1"));
        reg.upsert(mk("lf2"));
        let mut matrix = panda_lf::LabelMatrix::new();
        matrix.apply(&reg, &tables, &candidates);

        let base = PandaModel::new()
            .with_fixed_prior(0.2)
            .fit_predict(&matrix, Some(&candidates));
        let trans = PandaModel::new()
            .with_fixed_prior(0.2)
            .with_transitivity(TransitivityMode::SelfJoin)
            .fit_predict(&matrix, Some(&candidates));

        let f1_base = f1(&base, &truth);
        let f1_trans = f1(&trans, &truth);
        assert!(
            f1_trans > f1_base + 0.05,
            "transitivity {f1_trans:.3} must beat base {f1_base:.3}"
        );
        // Specifically: the abstained (b,c) edges must be pulled up.
        let bc_mean_base: f64 = (0..10).map(|k| base[4 * k + 2]).sum::<f64>() / 10.0;
        let bc_mean_trans: f64 = (0..10).map(|k| trans[4 * k + 2]).sum::<f64>() / 10.0;
        assert!(
            bc_mean_trans > bc_mean_base + 0.1,
            "missed edges pulled up: {bc_mean_base:.3} → {bc_mean_trans:.3}"
        );
    }
}
