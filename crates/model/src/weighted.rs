//! Weighted vote: a fixed-weight baseline between majority vote and the
//! EM-fitted models.
//!
//! Each LF gets a weight `w_j` (log-odds of an assumed or externally
//! estimated accuracy); the posterior is
//! `σ(logit(prior) + Σ_j w_j · λ_ij)`. With all weights equal this
//! reduces to a soft majority vote; with weights from gold accuracy it is
//! the "oracle-weighted" upper baseline some ablations report.

use crate::{logit, sigmoid, LabelModel};
use panda_lf::LabelMatrix;
use panda_table::CandidateSet;

/// Fixed-weight vote combiner.
#[derive(Debug, Clone)]
pub struct WeightedVote {
    /// Per-LF weights, aligned with matrix column order. Missing entries
    /// default to `default_weight`.
    pub weights: Vec<f64>,
    /// Weight used for LFs beyond `weights`.
    pub default_weight: f64,
    /// Class prior fed into the bias term.
    pub prior: f64,
}

impl Default for WeightedVote {
    fn default() -> Self {
        // ln(0.8/0.2): every LF treated as 80% accurate.
        WeightedVote {
            weights: Vec::new(),
            default_weight: (0.8f64 / 0.2).ln(),
            prior: 0.1,
        }
    }
}

impl WeightedVote {
    /// Equal weights derived from one assumed accuracy.
    pub fn uniform(assumed_accuracy: f64, prior: f64) -> Self {
        let a = assumed_accuracy.clamp(0.05, 0.95);
        WeightedVote {
            weights: Vec::new(),
            default_weight: (a / (1.0 - a)).ln(),
            prior,
        }
    }

    /// Weights from per-LF accuracies (e.g. measured on gold — an oracle
    /// baseline for ablations).
    pub fn from_accuracies(accuracies: &[f64], prior: f64) -> Self {
        WeightedVote {
            weights: accuracies
                .iter()
                .map(|&a| {
                    let a = a.clamp(0.05, 0.95);
                    (a / (1.0 - a)).ln()
                })
                .collect(),
            default_weight: 0.0,
            prior,
        }
    }
}

impl LabelModel for WeightedVote {
    fn name(&self) -> &'static str {
        "weighted-vote"
    }

    fn fit_predict(&mut self, matrix: &LabelMatrix, _: Option<&CandidateSet>) -> Vec<f64> {
        let n = matrix.n_pairs();
        let cols: Vec<Vec<i8>> = matrix.columns().map(|(_, c)| c).collect();
        (0..n)
            .map(|i| {
                let mut lo = logit(self.prior);
                for (j, col) in cols.iter().enumerate() {
                    let w = self.weights.get(j).copied().unwrap_or(self.default_weight);
                    lo += w * f64::from(col[i]);
                }
                sigmoid(lo)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{f1, plant, PlantedLf};

    #[test]
    fn uniform_weights_act_like_soft_majority() {
        let p = plant(500, 0.5, &[PlantedLf::symmetric(1.0, 0.95); 3], 51);
        let gamma = WeightedVote::uniform(0.8, 0.5).fit_predict(&p.matrix, None);
        let correct = gamma
            .iter()
            .zip(&p.truth)
            .filter(|(g, t)| (**g >= 0.5) == **t)
            .count();
        assert!(correct as f64 / 500.0 > 0.9);
    }

    #[test]
    fn oracle_weights_beat_uniform_with_heterogeneous_lfs() {
        let specs = [
            PlantedLf::symmetric(0.95, 0.95),
            PlantedLf::symmetric(0.9, 0.55),
            PlantedLf::symmetric(0.9, 0.55),
        ];
        let p = plant(4000, 0.5, &specs, 53);
        let f1_oracle = f1(
            &WeightedVote::from_accuracies(&[0.95, 0.55, 0.55], 0.5).fit_predict(&p.matrix, None),
            &p.truth,
        );
        let f1_uniform = f1(
            &WeightedVote::uniform(0.8, 0.5).fit_predict(&p.matrix, None),
            &p.truth,
        );
        assert!(
            f1_oracle >= f1_uniform,
            "oracle {f1_oracle:.3} vs uniform {f1_uniform:.3}"
        );
    }

    #[test]
    fn no_votes_yields_prior() {
        let p = plant(5, 0.5, &[PlantedLf::symmetric(0.0, 0.9)], 54);
        let gamma = WeightedVote::uniform(0.8, 0.2).fit_predict(&p.matrix, None);
        for g in gamma {
            assert!((g - 0.2).abs() < 1e-9);
        }
    }
}
