//! The ZeroER transitivity constraint.
//!
//! Match probabilities are not free: if `(t_i, t_j)` and `(t_i, t_k)` are
//! both matches then `(t_j, t_k)` must be too. ZeroER relaxes this to the
//! probabilistic inequality `γ_ij · γ_ik ≤ γ_jk` over all triples whose
//! three pairs are in the candidate set, and enforces it by projecting the
//! E-step posteriors onto the feasible set `Q`.
//!
//! In log space each constraint is a half-space `l_ij + l_ik − l_jk ≤ 0`
//! (`l = ln γ`), so the projection of a violated triple is the usual
//! Euclidean half-space projection along the normal `(1, 1, −1)`.
//! [`project_transitivity`] runs cyclic sweeps over all violated
//! constraints (a Dykstra-flavoured heuristic: cheap, monotone in
//! violation, and exact for a single constraint).
//!
//! Triangles require all three pairs to be candidates. In a clean
//! two-table task (both tables duplicate-free) no triangles exist and the
//! constraint is vacuous — consistent with the theory, since transitivity
//! only binds when a tuple can match several others. Deduplication tasks
//! ([`TransitivityMode::SelfJoin`]) are where it bites.

use panda_table::CandidateSet;
use std::collections::HashMap;

/// How to map record ids to graph nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransitivityMode {
    /// Left and right tables are distinct relations: left id `i` and right
    /// id `i` are different nodes.
    TwoTable,
    /// The candidate set is a self-join of one table (deduplication):
    /// left id `i` and right id `i` are the *same* node.
    SelfJoin,
}

/// The pair graph and its triangle list.
#[derive(Debug, Clone)]
pub struct TransitivityGraph {
    /// Each triangle as three candidate-pair indices `[e_ij, e_ik, e_jk]`
    /// (unordered; all three cyclic constraints are applied).
    triangles: Vec<[usize; 3]>,
}

impl TransitivityGraph {
    /// Build the triangle list for a candidate set. `max_triangles` bounds
    /// worst-case work on dense graphs (0 = unlimited).
    pub fn build(candidates: &CandidateSet, mode: TransitivityMode, max_triangles: usize) -> Self {
        let _span = panda_obs::span("model.transitivity.build");
        // Node encoding.
        let node = |side_right: bool, id: u32| -> u64 {
            match mode {
                TransitivityMode::TwoTable => (u64::from(id) << 1) | u64::from(side_right),
                TransitivityMode::SelfJoin => u64::from(id),
            }
        };

        let mut edge: HashMap<(u64, u64), usize> = HashMap::with_capacity(candidates.len());
        let mut adjacency: HashMap<u64, Vec<u64>> = HashMap::new();
        for (idx, pair) in candidates.iter() {
            let a = node(false, pair.left.0);
            let b = node(true, pair.right.0);
            if a == b {
                continue; // self pair in a self-join: no information
            }
            let key = if a < b { (a, b) } else { (b, a) };
            if edge.insert(key, idx).is_none() {
                adjacency.entry(a).or_default().push(b);
                adjacency.entry(b).or_default().push(a);
            }
        }

        // Deterministic parallel enumeration: each triangle is owned by
        // its smallest node (`v < u1 < u2`), so every triangle is found
        // exactly once with no cross-node dedupe, and the output order
        // follows sorted node order — independent of hash-map iteration
        // order and of the worker count.
        let mut nodes: Vec<u64> = adjacency.keys().copied().collect();
        nodes.sort_unstable();
        let per_node_cap = if max_triangles > 0 {
            max_triangles
        } else {
            usize::MAX
        };
        let per_node: Vec<Vec<[usize; 3]>> = panda_exec::par_map_indexed(&nodes, |_, &v| {
            let mut neighbors: Vec<u64> =
                adjacency[&v].iter().copied().filter(|&u| u > v).collect();
            neighbors.sort_unstable();
            let mut local = Vec::new();
            'node: for (x, &u1) in neighbors.iter().enumerate() {
                for &u2 in &neighbors[x + 1..] {
                    if let Some(&e3) = edge.get(&(u1, u2)) {
                        let mut tri = [edge[&(v, u1)], edge[&(v, u2)], e3];
                        tri.sort_unstable();
                        local.push(tri);
                        if local.len() >= per_node_cap {
                            break 'node;
                        }
                    }
                }
            }
            local
        });
        let mut triangles: Vec<[usize; 3]> = per_node.into_iter().flatten().collect();
        if max_triangles > 0 {
            triangles.truncate(max_triangles);
        }
        panda_obs::counter_add("model.transitivity.triangles", triangles.len() as u64);
        TransitivityGraph { triangles }
    }

    /// Number of triangles found.
    pub fn n_triangles(&self) -> usize {
        self.triangles.len()
    }

    /// The triangles (candidate-pair index triples).
    pub fn triangles(&self) -> &[[usize; 3]] {
        &self.triangles
    }

    /// Total constraint violation mass `Σ max(0, γ_a·γ_b − γ_c)` over all
    /// cyclic orderings of all triangles (0 means feasible). Where
    /// [`TransitivityGraph::max_violation`] reports the worst single
    /// constraint, this reports how much infeasibility the projection has
    /// to absorb in aggregate — the quantity worth tracking run-over-run.
    pub fn violation_mass(&self, gamma: &[f64]) -> f64 {
        let mut mass = 0.0;
        for &[a, b, c] in &self.triangles {
            mass += (gamma[a] * gamma[b] - gamma[c]).max(0.0);
            mass += (gamma[a] * gamma[c] - gamma[b]).max(0.0);
            mass += (gamma[b] * gamma[c] - gamma[a]).max(0.0);
        }
        mass
    }

    /// Maximum constraint violation `max(γ_a·γ_b − γ_c)` over all cyclic
    /// orderings of all triangles (≤ 0 means feasible).
    pub fn max_violation(&self, gamma: &[f64]) -> f64 {
        let mut worst = f64::NEG_INFINITY;
        for &[a, b, c] in &self.triangles {
            worst = worst
                .max(gamma[a] * gamma[b] - gamma[c])
                .max(gamma[a] * gamma[c] - gamma[b])
                .max(gamma[b] * gamma[c] - gamma[a]);
        }
        if worst == f64::NEG_INFINITY {
            0.0
        } else {
            worst
        }
    }
}

/// Transitive boost: for every triangle ordering `(x, y, z)` where edge
/// `z` is `movable` (typically: no LF voted on it, so its posterior is
/// pure abstention prior), raise `γ_z` to at least `γ_x · γ_y`.
///
/// This is the constructive direction of the transitivity constraint —
/// two confident matches sharing a tuple *imply* the third pair — and is
/// the step that recovers matches the LFs missed. Runs `sweeps` passes so
/// implications propagate along chains. Returns how many posteriors were
/// raised in total.
pub fn transitive_boost(
    gamma: &mut [f64],
    graph: &TransitivityGraph,
    movable: &[bool],
    sweeps: usize,
) -> usize {
    let mut raised = 0;
    for _ in 0..sweeps {
        let mut changed = false;
        for &[a, b, c] in &graph.triangles {
            for (x, y, z) in [(a, b, c), (a, c, b), (b, c, a)] {
                if !movable[z] {
                    continue;
                }
                let implied = gamma[x] * gamma[y];
                if implied > gamma[z] + 1e-12 {
                    gamma[z] = implied.min(1.0 - 1e-6);
                    raised += 1;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    raised
}

/// Project posteriors toward the transitivity-feasible set in place
/// (uniform evidence weights). See [`project_transitivity_weighted`].
pub fn project_transitivity(
    gamma: &mut [f64],
    graph: &TransitivityGraph,
    sweeps: usize,
    tol: f64,
) -> usize {
    project_transitivity_weighted(gamma, graph, None, sweeps, tol)
}

/// Project posteriors toward the transitivity-feasible set in place.
///
/// Runs up to `sweeps` cyclic passes over all triangle constraints,
/// stopping early once the largest log-space violation falls below `tol`.
/// Returns the number of sweeps executed.
///
/// `weights` (one per candidate pair, higher = more trusted) select
/// *which* posterior absorbs a violation: the projection onto the
/// half-space `l_x + l_y − l_z ≤ 0` is taken in the `W`-weighted norm, so
/// a low-weight edge (few LF votes) moves much more than a high-weight
/// one. This matches the intended use: two confidently-matched edges of a
/// triangle should pull up a third edge the LFs abstained on, rather than
/// being dragged down by it. `None` = uniform weights (the plain
/// Euclidean projection).
pub fn project_transitivity_weighted(
    gamma: &mut [f64],
    graph: &TransitivityGraph,
    weights: Option<&[f64]>,
    sweeps: usize,
    tol: f64,
) -> usize {
    if graph.triangles.is_empty() {
        return 0;
    }
    const EPS: f64 = 1e-6;
    let mut l: Vec<f64> = gamma
        .iter()
        .map(|&g| g.clamp(EPS, 1.0 - EPS).ln())
        .collect();
    let w = |i: usize| -> f64 { weights.map(|ws| ws[i].max(1e-3)).unwrap_or(1.0) };

    let mut done_sweeps = 0;
    for _ in 0..sweeps {
        done_sweeps += 1;
        let mut max_viol = 0.0f64;
        let mut adjusted = 0u64;
        for &[a, b, c] in &graph.triangles {
            // All three cyclic constraints of the triangle.
            for (x, y, z) in [(a, b, c), (a, c, b), (b, c, a)] {
                let viol = l[x] + l[y] - l[z];
                if viol > 0.0 {
                    max_viol = max_viol.max(viol);
                    adjusted += 1;
                    // W-weighted projection onto {l_x + l_y − l_z ≤ 0}:
                    // move ∝ 1/w along the constraint normal.
                    let (ix, iy, iz) = (1.0 / w(x), 1.0 / w(y), 1.0 / w(z));
                    let denom = ix + iy + iz;
                    l[x] -= viol * ix / denom;
                    l[y] -= viol * iy / denom;
                    l[z] += viol * iz / denom;
                    // γ ≤ 1 ⇒ l ≤ ~0.
                    l[z] = l[z].min((1.0 - EPS).ln());
                }
            }
        }
        // Per-sweep provenance: how much infeasibility each pass still had
        // to absorb, and how many constraints it touched — the convergence
        // trajectory of the projection.
        panda_obs::event("model.transitivity.sweep")
            .field("sweep", done_sweeps)
            .field("max_viol", max_viol)
            .field("adjusted", adjusted)
            .emit();
        if max_viol <= tol {
            break;
        }
    }
    for (g, &li) in gamma.iter_mut().zip(&l) {
        *g = li.exp().clamp(EPS, 1.0 - EPS);
    }
    done_sweeps
}

#[cfg(test)]
mod tests {
    use super::*;
    use panda_table::CandidatePair;

    /// A self-join triangle over records {0,1,2}.
    fn triangle_set() -> CandidateSet {
        CandidateSet::from_pairs([
            CandidatePair::new(0, 1),
            CandidatePair::new(0, 2),
            CandidatePair::new(1, 2),
        ])
    }

    #[test]
    fn two_table_mode_has_no_triangles_on_bipartite_candidates() {
        let cands = CandidateSet::from_pairs([
            CandidatePair::new(0, 0),
            CandidatePair::new(0, 1),
            CandidatePair::new(1, 0),
            CandidatePair::new(1, 1),
        ]);
        let g = TransitivityGraph::build(&cands, TransitivityMode::TwoTable, 0);
        assert_eq!(g.n_triangles(), 0);
    }

    #[test]
    fn self_join_finds_the_triangle() {
        let g = TransitivityGraph::build(&triangle_set(), TransitivityMode::SelfJoin, 0);
        assert_eq!(g.n_triangles(), 1);
    }

    #[test]
    fn feasible_input_is_unchanged() {
        let g = TransitivityGraph::build(&triangle_set(), TransitivityMode::SelfJoin, 0);
        let mut gamma = vec![0.9, 0.9, 0.9]; // 0.81 ≤ 0.9 ✓ all orderings
        let before = gamma.clone();
        project_transitivity(&mut gamma, &g, 10, 1e-9);
        for (a, b) in gamma.iter().zip(&before) {
            assert!((a - b).abs() < 1e-6);
        }
        assert!(g.max_violation(&gamma) <= 1e-9);
    }

    #[test]
    fn violated_triangle_moves_toward_feasibility() {
        let g = TransitivityGraph::build(&triangle_set(), TransitivityMode::SelfJoin, 0);
        // Two strong matches sharing a node, third pair near zero:
        // 0.9·0.9 = 0.81 > 0.05 → infeasible.
        let mut gamma = vec![0.9, 0.9, 0.05];
        let v0 = g.max_violation(&gamma);
        project_transitivity(&mut gamma, &g, 50, 1e-6);
        let v1 = g.max_violation(&gamma);
        assert!(v1 < v0, "violation must shrink: {v0} → {v1}");
        assert!(v1 < 0.05, "nearly feasible after sweeps: {v1}");
        // The third edge was pulled *up*, the other two *down*.
        assert!(gamma[2] > 0.05);
        assert!(gamma[0] < 0.9);
    }

    #[test]
    fn projection_is_idempotent_ish() {
        let g = TransitivityGraph::build(&triangle_set(), TransitivityMode::SelfJoin, 0);
        let mut gamma = vec![0.95, 0.8, 0.1];
        project_transitivity(&mut gamma, &g, 100, 1e-9);
        let once = gamma.clone();
        project_transitivity(&mut gamma, &g, 100, 1e-9);
        for (a, b) in gamma.iter().zip(&once) {
            assert!((a - b).abs() < 1e-3);
        }
    }

    #[test]
    fn self_pairs_are_ignored_in_self_join() {
        let cands = CandidateSet::from_pairs([
            CandidatePair::new(0, 0), // self pair
            CandidatePair::new(0, 1),
            CandidatePair::new(1, 0), // duplicate edge, other orientation
        ]);
        let g = TransitivityGraph::build(&cands, TransitivityMode::SelfJoin, 0);
        assert_eq!(g.n_triangles(), 0);
    }

    #[test]
    fn triangle_cap_bounds_enumeration() {
        // Complete self-join graph over 10 nodes → C(10,3)=120 triangles.
        let mut pairs = Vec::new();
        for i in 0..10u32 {
            for j in (i + 1)..10 {
                pairs.push(CandidatePair::new(i, j));
            }
        }
        let cands = CandidateSet::from_pairs(pairs);
        let full = TransitivityGraph::build(&cands, TransitivityMode::SelfJoin, 0);
        assert_eq!(full.n_triangles(), 120);
        let capped = TransitivityGraph::build(&cands, TransitivityMode::SelfJoin, 25);
        assert_eq!(capped.n_triangles(), 25);
    }
}
