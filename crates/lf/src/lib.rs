//! Labeling functions for entity matching — the data-programming core.
//!
//! A **labeling function** (LF) receives one candidate tuple pair and votes
//! [`Label::Match`] (+1), [`Label::NonMatch`] (−1) or [`Label::Abstain`]
//! (0). Users write LFs instead of labeling pairs by hand; a labeling
//! model (crate `panda-model`) then combines the noisy votes.
//!
//! This crate provides:
//!
//! * [`Label`] — the three-valued vote,
//! * [`LabelingFunction`] — the LF trait, plus [`LfRegistry`] managing the
//!   LF life-cycle (add / replace / remove, with versions so re-application
//!   is incremental, as in the paper's `labeler.apply()`),
//! * [`builders`] — a declarative DSL covering the LF shapes the paper
//!   shows: similarity-threshold LFs (`name_overlap`), extraction LFs
//!   (`size_unmatch`), attribute equality, numeric tolerance, and
//!   arbitrary closures,
//! * [`LabelMatrix`] — the `pairs × LFs` vote matrix with **incremental
//!   application** (only new/modified LFs are executed) and **failure
//!   quarantine** (an LF that panics is reported, not fatal — the IDE must
//!   survive buggy user code),
//! * [`stats`] — per-LF coverage / overlap / conflict statistics and the
//!   FPR/FNR estimates the LF Stats Panel displays.
//!
//! ```
//! use panda_lf::{ClosureLf, Label, LabelMatrix, LfRegistry};
//! use panda_table::{CandidatePair, CandidateSet, Schema, Table, TablePair};
//! use std::sync::Arc;
//!
//! // Two one-row tables and their single candidate pair.
//! let mut left = Table::new("l", Schema::of_text(&["name"]));
//! left.push(vec!["sony bravia"]).unwrap();
//! let mut right = Table::new("r", Schema::of_text(&["name"]));
//! right.push(vec!["sony bravia tv"]).unwrap();
//! let tables = TablePair::new(left, right);
//! let candidates = CandidateSet::from_pairs([CandidatePair::new(0, 0)]);
//!
//! // An LF, applied through the registry → matrix pipeline.
//! let mut registry = LfRegistry::new();
//! registry.upsert(Arc::new(ClosureLf::new("shares_brand", |p| {
//!     Label::from_bool(p.right.text("name").contains(&p.left.text("name")))
//! })));
//! let mut matrix = LabelMatrix::new();
//! let report = matrix.apply(&registry, &tables, &candidates);
//! assert_eq!(report.applied, vec!["shares_brand"]);
//! assert_eq!(matrix.column("shares_brand").unwrap(), &[1]);
//! ```

pub mod builders;
pub mod label;
pub mod lf;
pub mod library;
pub mod matrix;
pub mod stats;

pub use builders::{
    AttributeEqualityLf, ClosureLf, ExtractionLf, NumericToleranceLf, SimilarityLf,
};
pub use label::Label;
pub use lf::{BoxedLf, LabelingFunction, LfRegistry};
pub use library::{address_matcher, organization_matcher, people_matcher, phone_matcher};
pub use matrix::{ApplyReport, ColumnSnapshot, LabelMatrix, PackedVotes, VOTES_PER_WORD};
pub use stats::{lf_stats, LfStatsRow};
