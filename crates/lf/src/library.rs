//! Pre-built matchers for common entity types.
//!
//! The paper (§2.1, feature 1.2) plans to "expand the utility functions by
//! including pre-trained matchers for specific entity types (e.g., People,
//! Organization, Address, etc) [15], so that users can directly invoke
//! pre-trained matchers relevant to their EM task in their LFs". The
//! original intends transfer-learned models (Auto-EM); offline we provide
//! the deterministic equivalents: domain-aware comparison logic with the
//! normalisation conventions each entity type needs. Each constructor
//! returns a ready-to-register LF tagged [`LfProvenance::Builtin`].

use crate::builders::ClosureLf;
use crate::lf::{LabelingFunction, LfProvenance};
use crate::{BoxedLf, Label};
use std::sync::Arc;

/// Wrap a closure LF and tag it as a built-in matcher.
struct Builtin(ClosureLf);

impl LabelingFunction for Builtin {
    fn name(&self) -> &str {
        self.0.name()
    }
    fn label(&self, pair: &panda_table::PairRef<'_>) -> Label {
        self.0.label(pair)
    }
    fn description(&self) -> String {
        self.0.description()
    }
    fn provenance(&self) -> LfProvenance {
        LfProvenance::Builtin
    }
}

// ---------------------------------------------------------------------------
// People
// ---------------------------------------------------------------------------

/// One parsed person name: `(first-ish, last)`.
fn parse_person(token_group: &str) -> Option<(String, String)> {
    let cleaned = token_group.trim().trim_end_matches('.').to_lowercase();
    let parts: Vec<&str> = cleaned
        .split(|c: char| c.is_whitespace() || c == '.')
        .filter(|t| !t.is_empty())
        .collect();
    match parts.as_slice() {
        [] => None,
        [last] => Some((String::new(), (*last).to_string())),
        [first, .., last] => Some(((*first).to_string(), (*last).to_string())),
    }
}

/// Parse a comma/`and`/`;`-separated author/person list.
pub fn parse_person_list(text: &str) -> Vec<(String, String)> {
    text.replace(" and ", ",")
        .split([',', ';', '&'])
        .filter_map(parse_person)
        .collect()
}

/// Are two person names compatible? Last names must match exactly; first
/// names must match exactly or one must be the other's initial
/// (`"james" ~ "j"`).
pub fn persons_compatible(a: &(String, String), b: &(String, String)) -> bool {
    if a.1 != b.1 {
        return false;
    }
    if a.0.is_empty() || b.0.is_empty() || a.0 == b.0 {
        return true;
    }
    let (short, long) = if a.0.len() <= b.0.len() {
        (&a.0, &b.0)
    } else {
        (&b.0, &a.0)
    };
    short.len() == 1 && long.starts_with(short.as_str())
}

/// People matcher over a name-list attribute (e.g. bibliographic
/// `authors`): +1 when every person on the shorter list has a compatible
/// person on the other side, −1 when fewer than half do, abstain between
/// or when either side is empty.
pub fn people_matcher(name: impl Into<String>, attr: &str) -> BoxedLf {
    let attr = attr.to_string();
    let desc = format!("builtin people matcher on {attr}");
    Arc::new(Builtin(
        ClosureLf::new(name, move |pair| {
            let a = parse_person_list(&pair.left.text(&attr));
            let b = parse_person_list(&pair.right.text(&attr));
            if a.is_empty() || b.is_empty() {
                return Label::Abstain;
            }
            let (short, long) = if a.len() <= b.len() {
                (&a, &b)
            } else {
                (&b, &a)
            };
            let matched = short
                .iter()
                .filter(|p| long.iter().any(|q| persons_compatible(p, q)))
                .count();
            let frac = matched as f64 / short.len() as f64;
            if frac >= 1.0 {
                Label::Match
            } else if frac < 0.5 {
                Label::NonMatch
            } else {
                Label::Abstain
            }
        })
        .with_description(desc),
    ))
}

// ---------------------------------------------------------------------------
// Phone numbers
// ---------------------------------------------------------------------------

/// Canonicalise a phone number: digits only, leading `1` country code
/// stripped from 11-digit numbers.
pub fn normalize_phone(text: &str) -> Option<String> {
    let digits: String = text.chars().filter(char::is_ascii_digit).collect();
    match digits.len() {
        0..=6 => None,
        11 if digits.starts_with('1') => Some(digits[1..].to_string()),
        _ => Some(digits),
    }
}

/// Phone matcher: normalised numbers equal → +1, different → −1, either
/// side unparseable → abstain. Phone equality is close to an identity key,
/// which is why this is such a strong LF on restaurant data.
pub fn phone_matcher(name: impl Into<String>, attr: &str) -> BoxedLf {
    let attr = attr.to_string();
    let desc = format!("builtin phone matcher on {attr}");
    Arc::new(Builtin(
        ClosureLf::new(name, move |pair| {
            match (
                normalize_phone(&pair.left.text(&attr)),
                normalize_phone(&pair.right.text(&attr)),
            ) {
                (Some(a), Some(b)) => Label::from_bool(a == b),
                _ => Label::Abstain,
            }
        })
        .with_description(desc),
    ))
}

// ---------------------------------------------------------------------------
// Addresses
// ---------------------------------------------------------------------------

/// Street-suffix synonym normalisation.
fn normalize_street_token(tok: &str) -> String {
    match tok {
        "street" | "str" => "st".into(),
        "avenue" | "av" => "ave".into(),
        "road" => "rd".into(),
        "boulevard" | "blv" => "blvd".into(),
        "drive" | "dr." => "dr".into(),
        "lane" => "ln".into(),
        "1st" => "first".into(),
        "2nd" => "second".into(),
        "3rd" => "third".into(),
        other => other.to_string(),
    }
}

/// Parse an address into `(street number, normalised street tokens)`.
pub fn parse_address(text: &str) -> (Option<u64>, Vec<String>) {
    let lower = text.to_lowercase();
    let mut number = None;
    let mut tokens = Vec::new();
    for raw in lower.split(|c: char| !c.is_alphanumeric()) {
        if raw.is_empty() {
            continue;
        }
        if number.is_none() {
            if let Ok(n) = raw.parse::<u64>() {
                number = Some(n);
                continue;
            }
        }
        tokens.push(normalize_street_token(raw));
    }
    (number, tokens)
}

/// Address matcher: street numbers must agree (strong signal) and street
/// tokens must overlap; disagreeing numbers vote −1.
pub fn address_matcher(name: impl Into<String>, attr: &str) -> BoxedLf {
    let attr = attr.to_string();
    let desc = format!("builtin address matcher on {attr}");
    Arc::new(Builtin(
        ClosureLf::new(name, move |pair| {
            let (na, ta) = parse_address(&pair.left.text(&attr));
            let (nb, tb) = parse_address(&pair.right.text(&attr));
            match (na, nb) {
                (Some(x), Some(y)) if x != y => Label::NonMatch,
                (Some(_), Some(_)) => {
                    if ta.is_empty() || tb.is_empty() {
                        return Label::Abstain;
                    }
                    let overlap = ta.iter().filter(|t| tb.contains(t)).count();
                    if overlap * 2 >= ta.len().min(tb.len()) {
                        Label::Match
                    } else {
                        Label::Abstain
                    }
                }
                _ => Label::Abstain,
            }
        })
        .with_description(desc),
    ))
}

// ---------------------------------------------------------------------------
// Organizations
// ---------------------------------------------------------------------------

/// Legal-suffix tokens that don't identify an organisation.
const ORG_NOISE: &[&str] = &[
    "inc",
    "incorporated",
    "corp",
    "corporation",
    "ltd",
    "limited",
    "llc",
    "co",
    "company",
    "the",
    "group",
    "holdings",
];

/// Normalise an organisation name to its identifying tokens.
pub fn normalize_org(text: &str) -> Vec<String> {
    text.to_lowercase()
        .split(|c: char| !c.is_alphanumeric())
        .filter(|t| !t.is_empty() && !ORG_NOISE.contains(t))
        .map(str::to_string)
        .collect()
}

/// Organisation matcher: identifying tokens equal as sets → +1, disjoint
/// → −1, partial overlap → abstain.
pub fn organization_matcher(name: impl Into<String>, attr: &str) -> BoxedLf {
    let attr = attr.to_string();
    let desc = format!("builtin organization matcher on {attr}");
    Arc::new(Builtin(
        ClosureLf::new(name, move |pair| {
            let mut a = normalize_org(&pair.left.text(&attr));
            let mut b = normalize_org(&pair.right.text(&attr));
            if a.is_empty() || b.is_empty() {
                return Label::Abstain;
            }
            a.sort();
            a.dedup();
            b.sort();
            b.dedup();
            if a == b {
                Label::Match
            } else if a.iter().all(|t| !b.contains(t)) {
                Label::NonMatch
            } else {
                Label::Abstain
            }
        })
        .with_description(desc),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use panda_table::{CandidatePair, Schema, Table, TablePair};

    fn pairize(left_vals: Vec<&str>, right_vals: Vec<&str>, cols: &[&str]) -> TablePair {
        let schema = Schema::of_text(cols);
        let mut l = Table::new("l", schema.clone());
        let mut r = Table::new("r", schema);
        l.push(left_vals).unwrap();
        r.push(right_vals).unwrap();
        TablePair::new(l, r)
    }

    fn label_of(lf: &BoxedLf, tp: &TablePair) -> Label {
        lf.label(&tp.pair_ref(CandidatePair::new(0, 0)).unwrap())
    }

    #[test]
    fn person_parsing_and_compat() {
        let people = parse_person_list("James Smith, W. Chen and Anna K. Mueller");
        assert_eq!(people.len(), 3);
        assert_eq!(people[0], ("james".into(), "smith".into()));
        assert_eq!(people[1], ("w".into(), "chen".into()));
        assert_eq!(people[2].1, "mueller");
        assert!(persons_compatible(
            &("james".into(), "smith".into()),
            &("j".into(), "smith".into())
        ));
        assert!(!persons_compatible(
            &("james".into(), "smith".into()),
            &("john".into(), "smith".into())
        ));
        assert!(!persons_compatible(
            &("james".into(), "smith".into()),
            &("james".into(), "smythe".into())
        ));
    }

    #[test]
    fn people_matcher_handles_abbreviations() {
        let lf = people_matcher("authors", "authors");
        let tp = pairize(
            vec!["James Smith, Wei Chen"],
            vec!["j. smith, w. chen"],
            &["authors"],
        );
        assert_eq!(label_of(&lf, &tp), Label::Match);
        let tp = pairize(vec!["James Smith"], vec!["Elena Garcia"], &["authors"]);
        assert_eq!(label_of(&lf, &tp), Label::NonMatch);
        let tp = pairize(vec![""], vec!["Elena Garcia"], &["authors"]);
        assert_eq!(label_of(&lf, &tp), Label::Abstain);
        assert_eq!(lf.provenance(), LfProvenance::Builtin);
    }

    #[test]
    fn phone_normalisation() {
        assert_eq!(normalize_phone("415-555-0199"), Some("4155550199".into()));
        assert_eq!(
            normalize_phone("1 (415) 555.0199"),
            Some("4155550199".into())
        );
        assert_eq!(normalize_phone("x123"), None);
    }

    #[test]
    fn phone_matcher_votes() {
        let lf = phone_matcher("phone_eq", "phone");
        let tp = pairize(vec!["415-555-0199"], vec!["(415) 555 0199"], &["phone"]);
        assert_eq!(label_of(&lf, &tp), Label::Match);
        let tp = pairize(vec!["415-555-0199"], vec!["415-555-0100"], &["phone"]);
        assert_eq!(label_of(&lf, &tp), Label::NonMatch);
        let tp = pairize(vec![""], vec!["415-555-0100"], &["phone"]);
        assert_eq!(label_of(&lf, &tp), Label::Abstain);
    }

    #[test]
    fn address_parsing_normalises_suffixes() {
        let (n, toks) = parse_address("123 Main Street");
        assert_eq!(n, Some(123));
        assert_eq!(toks, vec!["main", "st"]);
    }

    #[test]
    fn address_matcher_votes() {
        let lf = address_matcher("addr", "addr");
        let tp = pairize(vec!["123 Main Street"], vec!["123 main st."], &["addr"]);
        assert_eq!(label_of(&lf, &tp), Label::Match);
        let tp = pairize(vec!["123 Main St"], vec!["99 Main St"], &["addr"]);
        assert_eq!(label_of(&lf, &tp), Label::NonMatch);
        let tp = pairize(vec!["Main St"], vec!["123 Main St"], &["addr"]);
        assert_eq!(label_of(&lf, &tp), Label::Abstain);
    }

    #[test]
    fn organization_matcher_strips_legal_suffixes() {
        let lf = organization_matcher("org", "org");
        let tp = pairize(vec!["Acme Corp."], vec!["The ACME Inc"], &["org"]);
        assert_eq!(label_of(&lf, &tp), Label::Match);
        let tp = pairize(vec!["Acme Corp"], vec!["Globex LLC"], &["org"]);
        assert_eq!(label_of(&lf, &tp), Label::NonMatch);
        let tp = pairize(vec!["Acme Widgets"], vec!["Acme Gadgets"], &["org"]);
        assert_eq!(label_of(&lf, &tp), Label::Abstain);
    }
}
