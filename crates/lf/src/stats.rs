//! Per-LF statistics — the data behind the paper's **LF Stats Panel**.
//!
//! For every LF the panel shows: name, #matches / #non-matches / #abstains,
//! and the estimated false-positive / false-negative rates. The estimates
//! come from the labeling model's probabilistic labels (no ground truth
//! needed); when gold labels are available (benchmarks), the true rates are
//! reported alongside so estimation quality is visible.

use crate::matrix::LabelMatrix;
use serde::{Deserialize, Serialize};

/// One row of the LF Stats Panel.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct LfStatsRow {
    /// LF name.
    pub name: String,
    /// Pairs voted +1.
    pub n_match: usize,
    /// Pairs voted −1.
    pub n_nonmatch: usize,
    /// Pairs abstained.
    pub n_abstain: usize,
    /// Fraction of pairs with a non-abstain vote.
    pub coverage: f64,
    /// Fraction of pairs where this LF and ≥1 other LF both vote.
    pub overlap: f64,
    /// Fraction of pairs where this LF disagrees with ≥1 other voting LF.
    pub conflict: f64,
    /// Model-estimated FPR: `E[1 − γ | vote = +1]` under the labeling
    /// model's posteriors γ. `None` until a model has run.
    pub est_fpr: Option<f64>,
    /// Model-estimated FNR: `E[γ | vote = −1]`.
    pub est_fnr: Option<f64>,
    /// True FPR against gold (benchmarks only).
    pub true_fpr: Option<f64>,
    /// True FNR against gold (benchmarks only).
    pub true_fnr: Option<f64>,
}

/// Compute the stats panel rows.
///
/// * `posteriors` — the labeling model's `P(match)` per pair, if a model
///   has been fit.
/// * `gold` — per-pair ground truth, if known.
pub fn lf_stats(
    matrix: &LabelMatrix,
    posteriors: Option<&[f64]>,
    gold: Option<&[bool]>,
) -> Vec<LfStatsRow> {
    let n = matrix.n_pairs();
    if let Some(p) = posteriors {
        assert_eq!(p.len(), n, "posteriors length must equal pair count");
    }
    if let Some(g) = gold {
        assert_eq!(g.len(), n, "gold length must equal pair count");
    }
    let columns: Vec<(&str, Vec<i8>)> = matrix.columns().collect();

    // votes_per_pair[i] = number of non-abstain votes on pair i.
    let mut votes_per_pair = vec![0usize; n];
    for (_, col) in &columns {
        for (i, &v) in col.iter().enumerate() {
            if v != 0 {
                votes_per_pair[i] += 1;
            }
        }
    }

    columns
        .iter()
        .map(|(name, col)| {
            let mut n_match = 0usize;
            let mut n_nonmatch = 0usize;
            let mut overlap = 0usize;
            let mut conflict = 0usize;
            for (i, &v) in col.iter().enumerate() {
                match v {
                    1.. => n_match += 1,
                    0 => {}
                    _ => n_nonmatch += 1,
                }
                if v != 0 && votes_per_pair[i] >= 2 {
                    overlap += 1;
                    // Does any other LF vote the other way on pair i?
                    let disagrees = columns
                        .iter()
                        .any(|(other, ocol)| *other != *name && ocol[i] != 0 && ocol[i] != v);
                    if disagrees {
                        conflict += 1;
                    }
                }
            }
            let n_abstain = n - n_match - n_nonmatch;
            let frac = |x: usize| if n == 0 { 0.0 } else { x as f64 / n as f64 };

            let est = posteriors.map(|gamma| rates(col, |i| gamma[i]));
            let tru = gold.map(|g| rates(col, |i| f64::from(u8::from(g[i]))));

            LfStatsRow {
                name: name.to_string(),
                n_match,
                n_nonmatch,
                n_abstain,
                coverage: frac(n_match + n_nonmatch),
                overlap: frac(overlap),
                conflict: frac(conflict),
                est_fpr: est.map(|(fpr, _)| fpr),
                est_fnr: est.map(|(_, fnr)| fnr),
                true_fpr: tru.map(|(fpr, _)| fpr),
                true_fnr: tru.map(|(_, fnr)| fnr),
            }
        })
        .collect()
}

/// `(fpr, fnr)` of a vote column against a (possibly probabilistic)
/// reference `p_match(i)`. FPR is over the LF's +1 votes; FNR over its −1
/// votes. An LF with no votes of a polarity gets rate 0 for it.
fn rates(col: &[i8], p_match: impl Fn(usize) -> f64) -> (f64, f64) {
    let mut fp = 0.0;
    let mut pos = 0usize;
    let mut fnr_mass = 0.0;
    let mut neg = 0usize;
    for (i, &v) in col.iter().enumerate() {
        if v > 0 {
            fp += 1.0 - p_match(i);
            pos += 1;
        } else if v < 0 {
            fnr_mass += p_match(i);
            neg += 1;
        }
    }
    (
        if pos == 0 { 0.0 } else { fp / pos as f64 },
        if neg == 0 { 0.0 } else { fnr_mass / neg as f64 },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::ClosureLf;
    use crate::lf::LfRegistry;
    use crate::Label;
    use panda_table::{CandidatePair, CandidateSet, Schema, Table, TablePair};
    use std::sync::Arc;

    /// 4 pairs; gold: pair 0 match, rest non-match.
    fn setup(lfs: Vec<(&'static str, Vec<i8>)>) -> (LabelMatrix, Vec<bool>) {
        let schema = Schema::of_text(&["k"]);
        let mut left = Table::new("l", schema.clone());
        let mut right = Table::new("r", schema);
        for i in 0..2 {
            left.push(vec![format!("{i}")]).unwrap();
            right.push(vec![format!("{i}")]).unwrap();
        }
        let tables = TablePair::new(left, right);
        let cands = CandidateSet::from_pairs([
            CandidatePair::new(0, 0),
            CandidatePair::new(0, 1),
            CandidatePair::new(1, 0),
            CandidatePair::new(1, 1),
        ]);
        let mut reg = LfRegistry::new();
        for (name, votes) in lfs {
            let votes = votes.clone();
            reg.upsert(Arc::new(ClosureLf::new(name, move |p| {
                // Index the fixed vote vector by pair identity.
                let idx = (p.pair.left.0 * 2 + p.pair.right.0) as usize;
                Label::from_i8(votes[idx])
            })));
        }
        let mut m = LabelMatrix::new();
        m.apply(&reg, &tables, &cands);
        (m, vec![true, false, false, true])
    }

    #[test]
    fn counts_and_coverage() {
        let (m, _) = setup(vec![("a", vec![1, 0, -1, 0])]);
        let rows = lf_stats(&m, None, None);
        assert_eq!(rows.len(), 1);
        let r = &rows[0];
        assert_eq!((r.n_match, r.n_nonmatch, r.n_abstain), (1, 1, 2));
        assert!((r.coverage - 0.5).abs() < 1e-12);
        assert_eq!(r.est_fpr, None);
        assert_eq!(r.true_fpr, None);
    }

    #[test]
    fn overlap_and_conflict() {
        let (m, _) = setup(vec![("a", vec![1, 1, 0, 0]), ("b", vec![1, -1, -1, 0])]);
        let rows = lf_stats(&m, None, None);
        let a = &rows[0];
        // a votes on pairs 0,1; b also votes there → overlap 2/4.
        assert!((a.overlap - 0.5).abs() < 1e-12);
        // They disagree on pair 1 only → conflict 1/4.
        assert!((a.conflict - 0.25).abs() < 1e-12);
        let b = &rows[1];
        assert!((b.conflict - 0.25).abs() < 1e-12);
    }

    #[test]
    fn true_rates_against_gold() {
        // LF votes +1 on pairs {0,1}: pair 0 is a true match, pair 1 isn't
        // → true FPR 0.5. Votes −1 on pair 3 which IS a match → FNR 1.0.
        let (m, gold) = setup(vec![("a", vec![1, 1, 0, -1])]);
        let rows = lf_stats(&m, None, Some(&gold));
        let r = &rows[0];
        assert!((r.true_fpr.unwrap() - 0.5).abs() < 1e-12);
        assert!((r.true_fnr.unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn estimated_rates_from_posteriors() {
        let (m, _) = setup(vec![("a", vec![1, 1, -1, -1])]);
        let gamma = [0.9, 0.2, 0.1, 0.8];
        let rows = lf_stats(&m, Some(&gamma), None);
        let r = &rows[0];
        // est FPR = mean(1-γ over +1 votes) = (0.1 + 0.8)/2
        assert!((r.est_fpr.unwrap() - 0.45).abs() < 1e-12);
        // est FNR = mean(γ over −1 votes) = (0.1 + 0.8)/2
        assert!((r.est_fnr.unwrap() - 0.45).abs() < 1e-12);
    }

    #[test]
    fn lf_with_no_positive_votes_has_zero_fpr() {
        let (m, gold) = setup(vec![("neg_only", vec![0, -1, -1, 0])]);
        let rows = lf_stats(&m, None, Some(&gold));
        assert_eq!(rows[0].true_fpr, Some(0.0));
    }

    #[test]
    #[should_panic(expected = "posteriors length")]
    fn posterior_length_is_validated() {
        let (m, _) = setup(vec![("a", vec![1, 0, 0, 0])]);
        lf_stats(&m, Some(&[0.5]), None);
    }
}
