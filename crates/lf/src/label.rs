//! The three-valued LF vote.

use serde::{Deserialize, Serialize};
use std::fmt;

/// An LF's vote on one candidate pair.
///
/// The numeric encoding (+1 / 0 / −1) matches the paper's Figure 2 and the
/// data-programming literature; [`Label::as_i8`] / [`Label::from_i8`]
/// convert to the compact matrix representation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Label {
    /// The pair refers to the same entity (+1).
    Match,
    /// No opinion (0).
    #[default]
    Abstain,
    /// The pair refers to different entities (−1).
    NonMatch,
}

impl Label {
    /// Compact encoding: +1 / 0 / −1.
    #[inline]
    pub fn as_i8(self) -> i8 {
        match self {
            Label::Match => 1,
            Label::Abstain => 0,
            Label::NonMatch => -1,
        }
    }

    /// Decode from the compact encoding. Any positive value maps to
    /// `Match`, any negative to `NonMatch`.
    #[inline]
    pub fn from_i8(v: i8) -> Label {
        match v {
            1.. => Label::Match,
            0 => Label::Abstain,
            _ => Label::NonMatch,
        }
    }

    /// Strict decode from the compact encoding: only `+1`, `0`, and `-1`
    /// are accepted. This is the decode the persistence/recovery path must
    /// use — a corrupt vote byte has to quarantine the session, not be
    /// silently reinterpreted as a vote (which [`Label::from_i8`] would
    /// do). Returns the offending value on failure.
    #[inline]
    pub fn try_from_i8(v: i8) -> Result<Label, i8> {
        match v {
            1 => Ok(Label::Match),
            0 => Ok(Label::Abstain),
            -1 => Ok(Label::NonMatch),
            other => Err(other),
        }
    }

    /// True unless the vote is [`Label::Abstain`].
    #[inline]
    pub fn is_vote(self) -> bool {
        self != Label::Abstain
    }

    /// Build from a boolean decision (`true` → match).
    #[inline]
    pub fn from_bool(is_match: bool) -> Label {
        if is_match {
            Label::Match
        } else {
            Label::NonMatch
        }
    }

    /// Build from a tri-state decision (`None` → abstain).
    #[inline]
    pub fn from_option(is_match: Option<bool>) -> Label {
        match is_match {
            Some(true) => Label::Match,
            Some(false) => Label::NonMatch,
            None => Label::Abstain,
        }
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Label::Match => "+1",
            Label::Abstain => "0",
            Label::NonMatch => "-1",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip() {
        for l in [Label::Match, Label::Abstain, Label::NonMatch] {
            assert_eq!(Label::from_i8(l.as_i8()), l);
        }
        assert_eq!(Label::from_i8(5), Label::Match);
        assert_eq!(Label::from_i8(-3), Label::NonMatch);
    }

    #[test]
    fn strict_decode_rejects_out_of_range() {
        assert_eq!(Label::try_from_i8(1), Ok(Label::Match));
        assert_eq!(Label::try_from_i8(0), Ok(Label::Abstain));
        assert_eq!(Label::try_from_i8(-1), Ok(Label::NonMatch));
        for bad in [2i8, 5, -2, -128, 127] {
            assert_eq!(Label::try_from_i8(bad), Err(bad));
        }
    }

    #[test]
    fn constructors() {
        assert_eq!(Label::from_bool(true), Label::Match);
        assert_eq!(Label::from_option(None), Label::Abstain);
        assert_eq!(Label::from_option(Some(false)), Label::NonMatch);
        assert!(Label::Match.is_vote());
        assert!(!Label::Abstain.is_vote());
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(Label::Match.to_string(), "+1");
        assert_eq!(Label::NonMatch.to_string(), "-1");
        assert_eq!(Label::Abstain.to_string(), "0");
    }
}
