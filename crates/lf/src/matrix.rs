//! The `pairs × LFs` label matrix with incremental application.

use crate::lf::{BoxedLf, LfRegistry};
use crate::Label;
use panda_table::{CandidateSet, TablePair};

/// Pairs per work item when applying LFs. A property of the data layout,
/// *not* of the worker count: results are identical under any
/// `PANDA_WORKERS`, and blocks are small enough that one slow LF spreads
/// over all workers instead of serializing a whole column.
const PAIR_BLOCK: usize = 1024;

/// Votes per packed `u64` word (2 bits each).
pub const VOTES_PER_WORD: usize = 32;

/// 2-bit vote codes. `0b11` is reserved and never stored.
const CODE_ABSTAIN: u64 = 0b00;
const CODE_MATCH: u64 = 0b01;
const CODE_NONMATCH: u64 = 0b10;

/// Code → historical `i8` encoding. The reserved code decodes to abstain
/// defensively; it is unreachable through any constructor.
const CODE_TO_I8: [i8; 4] = [0, 1, -1, 0];

/// Every-other-bit mask for word-at-a-time vote counting.
const LO_MASK: u64 = 0x5555_5555_5555_5555;

/// One LF's votes packed 2-bit, 32 per `u64` word.
///
/// Layout: vote `i` occupies bits `2·(i%32) .. 2·(i%32)+2` of word
/// `i/32` — `00` abstain, `01` match, `10` non-match, `11` reserved.
/// Unused tail lanes of the final word are always `00`, so word-at-a-time
/// consumers count matches/non-matches without a tail mask: with
/// `lo = w & 0x5555…` and `hi = (w >> 1) & 0x5555…`, match lanes are
/// `lo & !hi`, non-match lanes `hi & !lo`, and a popcount of each gives
/// the per-word tallies.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PackedVotes {
    words: Vec<u64>,
    len: usize,
}

impl PackedVotes {
    /// Empty storage with room for `n` votes.
    pub fn with_capacity(n: usize) -> Self {
        PackedVotes {
            words: Vec::with_capacity(n.div_ceil(VOTES_PER_WORD)),
            len: 0,
        }
    }

    /// Number of votes stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no votes are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Append one vote.
    #[inline]
    pub fn push(&mut self, label: Label) {
        let code = match label {
            Label::Abstain => CODE_ABSTAIN,
            Label::Match => CODE_MATCH,
            Label::NonMatch => CODE_NONMATCH,
        };
        let lane = self.len % VOTES_PER_WORD;
        if lane == 0 {
            self.words.push(0);
        }
        *self.words.last_mut().expect("word pushed above") |= code << (2 * lane);
        self.len += 1;
    }

    /// Strict-decode a persisted `i8` vote column. An out-of-range byte is
    /// rejected with its index and value — the recovery path's quarantine
    /// trigger (see [`LabelMatrix::restore`]).
    pub fn try_from_i8s(labels: &[i8]) -> Result<Self, (usize, i8)> {
        let mut out = Self::with_capacity(labels.len());
        for (i, &v) in labels.iter().enumerate() {
            out.push(Label::try_from_i8(v).map_err(|bad| (i, bad))?);
        }
        Ok(out)
    }

    /// Raw 2-bit code of vote `i`.
    #[inline]
    pub fn code(&self, i: usize) -> u8 {
        debug_assert!(i < self.len);
        ((self.words[i / VOTES_PER_WORD] >> (2 * (i % VOTES_PER_WORD))) & 0b11) as u8
    }

    /// Vote `i` in the historical `+1/0/-1` encoding.
    #[inline]
    pub fn get(&self, i: usize) -> i8 {
        CODE_TO_I8[self.code(i) as usize]
    }

    /// The packed words (zero-padded tail — see the type docs).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Decode to the historical `Vec<i8>` representation.
    pub fn decode(&self) -> Vec<i8> {
        (0..self.len).map(|i| self.get(i)).collect()
    }

    /// `(matches, non-matches, abstains)` via word-at-a-time popcounts.
    pub fn counts(&self) -> (usize, usize, usize) {
        let mut m = 0usize;
        let mut u = 0usize;
        for &w in &self.words {
            let lo = w & LO_MASK;
            let hi = (w >> 1) & LO_MASK;
            m += (lo & !hi).count_ones() as usize;
            u += (hi & !lo).count_ones() as usize;
        }
        (m, u, self.len - m - u)
    }
}

/// One LF's votes over the candidate set.
#[derive(Debug, Clone)]
struct Column {
    name: String,
    version: u64,
    votes: PackedVotes,
}

/// What one `apply` call did — surfaced in the IDE after
/// `labeler.apply()`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ApplyReport {
    /// LFs that were (re-)executed this call.
    pub applied: Vec<String>,
    /// LFs whose cached column was still valid (incremental skip).
    pub reused: Vec<String>,
    /// Columns dropped because their LF left the registry.
    pub removed: Vec<String>,
    /// LFs that panicked: `(name, panic message)`. Their columns are
    /// dropped; the session keeps running (quarantine, not crash).
    pub failed: Vec<(String, String)>,
}

/// The label matrix: for every candidate pair, every LF's vote.
///
/// Applying is *incremental*: a column is recomputed only when its LF is
/// new or has a bumped version (paper §2.2, "LFs are applied
/// incrementally"). Changing the candidate set invalidates everything.
#[derive(Debug, Clone, Default)]
pub struct LabelMatrix {
    n_pairs: usize,
    fingerprint: u64,
    columns: Vec<Column>,
}

impl LabelMatrix {
    /// An empty matrix.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of candidate pairs (rows).
    pub fn n_pairs(&self) -> usize {
        self.n_pairs
    }

    /// Number of LF columns currently materialised.
    pub fn n_lfs(&self) -> usize {
        self.columns.len()
    }

    /// Column names in registry order.
    pub fn lf_names(&self) -> Vec<&str> {
        self.columns.iter().map(|c| c.name.as_str()).collect()
    }

    /// One LF's votes (`+1/0/-1` per pair), decoded from packed storage.
    pub fn column(&self, name: &str) -> Option<Vec<i8>> {
        self.packed_column(name).map(PackedVotes::decode)
    }

    /// One LF's packed votes — the zero-copy accessor the EM hot loops
    /// iterate word-at-a-time.
    pub fn packed_column(&self, name: &str) -> Option<&PackedVotes> {
        self.columns
            .iter()
            .find(|c| c.name == name)
            .map(|c| &c.votes)
    }

    /// Iterate `(lf name, decoded votes)` in registry order.
    pub fn columns(&self) -> impl Iterator<Item = (&str, Vec<i8>)> {
        self.columns
            .iter()
            .map(|c| (c.name.as_str(), c.votes.decode()))
    }

    /// Iterate `(lf name, packed votes)` in registry order (hot paths).
    pub fn packed_columns(&self) -> impl Iterator<Item = (&str, &PackedVotes)> {
        self.columns.iter().map(|c| (c.name.as_str(), &c.votes))
    }

    /// The votes of all LFs on pair `i` (registry order).
    pub fn row(&self, i: usize) -> Vec<i8> {
        self.columns.iter().map(|c| c.votes.get(i)).collect()
    }

    /// `(matches, non-matches, abstains)` voted by one LF —
    /// word-at-a-time popcounts over the packed column.
    pub fn counts(&self, name: &str) -> Option<(usize, usize, usize)> {
        self.columns
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.votes.counts())
    }

    /// Apply the registry to the candidate set, reusing any column whose
    /// LF version is unchanged. LFs run in parallel; a panicking LF is
    /// quarantined into [`ApplyReport::failed`].
    pub fn apply(
        &mut self,
        registry: &LfRegistry,
        tables: &TablePair,
        candidates: &CandidateSet,
    ) -> ApplyReport {
        let _span = panda_obs::span("lf.matrix.apply");
        let fp = fingerprint(candidates);
        if fp != self.fingerprint || candidates.len() != self.n_pairs {
            // New candidate set: all cached columns are meaningless.
            self.columns.clear();
            self.fingerprint = fp;
            self.n_pairs = candidates.len();
        }

        let mut report = ApplyReport::default();

        // Drop columns for LFs that were removed from the registry.
        let keep: Vec<String> = registry.names();
        self.columns.retain(|c| {
            let stays = keep.iter().any(|n| n == &c.name);
            if !stays {
                report.removed.push(c.name.clone());
            }
            stays
        });

        // Decide what needs computing.
        let mut jobs: Vec<usize> = Vec::new(); // indices into registry
        for (idx, lf) in registry.lfs().iter().enumerate() {
            let version = registry.version(lf.name()).unwrap_or(0);
            match self.columns.iter().find(|c| c.name == lf.name()) {
                Some(c) if c.version == version && c.votes.len() == candidates.len() => {
                    report.reused.push(lf.name().to_string());
                }
                _ => jobs.push(idx),
            }
        }

        // Compute missing columns on the shared executor. Work items are
        // (LF × pair-block), so an expensive LF's column is spread over
        // all workers instead of pinning one thread, and a panicking LF
        // only poisons its own items (quarantine, not crash).
        let pairs = candidates.pairs();
        let n_blocks = pairs.len().div_ceil(PAIR_BLOCK).max(1);
        panda_obs::counter_add("lf.matrix.work_items", (jobs.len() * n_blocks) as u64);
        panda_obs::counter_add(
            "lf.matrix.labels_computed",
            (jobs.len() * pairs.len()) as u64,
        );
        let results = panda_exec::par_try_map_range(jobs.len() * n_blocks, |item| {
            let lf = &registry.lfs()[jobs[item / n_blocks]];
            let start = (item % n_blocks) * PAIR_BLOCK;
            let end = (start + PAIR_BLOCK).min(pairs.len());
            let mut out = Vec::with_capacity(end - start);
            for &pair in &pairs[start..end] {
                let label = match tables.pair_ref(pair) {
                    Ok(p) => lf.label(&p),
                    Err(_) => Label::Abstain,
                };
                out.push(label);
            }
            out
        });

        for (j, &idx) in jobs.iter().enumerate() {
            let lf = &registry.lfs()[idx];
            let name = lf.name().to_string();
            let version = registry.version(&name).unwrap_or(0);
            let mut votes = PackedVotes::with_capacity(pairs.len());
            let mut failure: Option<String> = None;
            for block in &results[j * n_blocks..(j + 1) * n_blocks] {
                match block {
                    Ok(part) => part.iter().for_each(|&l| votes.push(l)),
                    Err(payload) => {
                        // First failing block wins (deterministic message).
                        failure = Some(panic_message(payload.as_ref()));
                        break;
                    }
                }
            }
            match failure {
                None => {
                    report.applied.push(name.clone());
                    match self.columns.iter_mut().find(|c| c.name == name) {
                        Some(c) => {
                            c.version = version;
                            c.votes = votes;
                        }
                        None => self.columns.push(Column {
                            name,
                            version,
                            votes,
                        }),
                    }
                }
                Some(msg) => {
                    // Quarantine: drop any stale column, report the panic.
                    self.columns.retain(|c| c.name != name);
                    report.failed.push((name, msg));
                }
            }
        }

        panda_obs::counter_add("lf.matrix.applied", report.applied.len() as u64);
        panda_obs::counter_add("lf.matrix.reused", report.reused.len() as u64);
        panda_obs::counter_add("lf.matrix.quarantined", report.failed.len() as u64);

        // Keep matrix column order aligned with registry order.
        let order: Vec<&str> = registry.lfs().iter().map(|lf| lf.name()).collect();
        self.columns.sort_by_key(|c| {
            order
                .iter()
                .position(|n| *n == c.name)
                .unwrap_or(usize::MAX)
        });

        // Journal provenance: one event per LF this apply call touched,
        // with its vote split — the raw input to the IDE's LF panel.
        if panda_obs::journal_enabled() {
            for (names, action) in [(&report.applied, "applied"), (&report.reused, "reused")] {
                for name in names {
                    let (m, u, a) = self.counts(name).unwrap_or((0, 0, 0));
                    panda_obs::event("lf.apply")
                        .field("lf", name.as_str())
                        .field("action", action)
                        .field("n_match", m)
                        .field("n_nonmatch", u)
                        .field("n_abstain", a)
                        .emit();
                }
            }
            for (name, msg) in &report.failed {
                panda_obs::event("lf.apply")
                    .field("lf", name.as_str())
                    .field("action", "quarantined")
                    .field("error", msg.as_str())
                    .emit();
            }
        }
        report
    }

    /// Add (or replace) **one** column by running exactly one LF — the
    /// serving path of `POST /sessions/{id}/lfs`. Unlike [`apply`], this
    /// never scans the registry, so its cost is O(new LF × pairs)
    /// regardless of how many columns already exist; it records under its
    /// own span/event names (`lf.matrix.add_column` / `lf.column`) so a
    /// journal can prove no full-matrix apply ran.
    ///
    /// On a panic inside the LF the matrix is left **unchanged** (an
    /// existing same-name column survives) and the panic message is
    /// returned.
    ///
    /// [`apply`]: LabelMatrix::apply
    pub fn add_column(
        &mut self,
        lf: &BoxedLf,
        version: u64,
        tables: &TablePair,
        candidates: &CandidateSet,
    ) -> Result<(), String> {
        let _span = panda_obs::span("lf.matrix.add_column");
        let fp = fingerprint(candidates);
        if fp != self.fingerprint || candidates.len() != self.n_pairs {
            self.columns.clear();
            self.fingerprint = fp;
            self.n_pairs = candidates.len();
        }

        let pairs = candidates.pairs();
        let n_blocks = pairs.len().div_ceil(PAIR_BLOCK).max(1);
        panda_obs::counter_add("lf.matrix.column_work_items", n_blocks as u64);
        panda_obs::counter_add("lf.matrix.column_labels_computed", pairs.len() as u64);
        let results = panda_exec::par_try_map_range(n_blocks, |block| {
            let start = block * PAIR_BLOCK;
            let end = (start + PAIR_BLOCK).min(pairs.len());
            let mut out = Vec::with_capacity(end - start);
            for &pair in &pairs[start..end] {
                let label = match tables.pair_ref(pair) {
                    Ok(p) => lf.label(&p),
                    Err(_) => Label::Abstain,
                };
                out.push(label);
            }
            out
        });

        let mut votes = PackedVotes::with_capacity(pairs.len());
        for block in &results {
            match block {
                Ok(part) => part.iter().for_each(|&l| votes.push(l)),
                Err(payload) => {
                    let msg = panic_message(payload.as_ref());
                    if panda_obs::journal_enabled() {
                        panda_obs::event("lf.column")
                            .field("lf", lf.name())
                            .field("action", "quarantined")
                            .field("error", msg.as_str())
                            .emit();
                    }
                    return Err(msg);
                }
            }
        }

        let name = lf.name().to_string();
        match self.columns.iter_mut().find(|c| c.name == name) {
            Some(c) => {
                c.version = version;
                c.votes = votes;
            }
            None => self.columns.push(Column {
                name: name.clone(),
                version,
                votes,
            }),
        }
        if panda_obs::journal_enabled() {
            let (m, u, a) = self.counts(&name).unwrap_or((0, 0, 0));
            panda_obs::event("lf.column")
                .field("lf", name.as_str())
                .field("action", "add")
                .field("n_match", m)
                .field("n_nonmatch", u)
                .field("n_abstain", a)
                .emit();
        }
        Ok(())
    }

    /// Drop one column by name (the serving path of
    /// `DELETE /sessions/{id}/lfs/{name}`). O(columns); never re-runs any
    /// LF. Returns whether the column existed.
    pub fn remove_column(&mut self, name: &str) -> bool {
        let before = self.columns.len();
        self.columns.retain(|c| c.name != name);
        let removed = self.columns.len() != before;
        if removed && panda_obs::journal_enabled() {
            panda_obs::event("lf.column")
                .field("lf", name)
                .field("action", "remove")
                .emit();
        }
        removed
    }

    /// A digest of the **complete** matrix state: row count, candidate
    /// fingerprint, and every column's name, version, and label bytes in
    /// order. Two matrices with equal digests are byte-identical, so this
    /// is the invariant the incremental column path is checked against:
    /// `add_column(k)` followed by `remove_column(k)` must restore the
    /// original digest exactly.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        let mut mix = |byte: u8| {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x100000001b3);
        };
        for v in [self.n_pairs as u64, self.fingerprint] {
            for b in v.to_le_bytes() {
                mix(b);
            }
        }
        for c in &self.columns {
            for b in c.name.as_bytes() {
                mix(*b);
            }
            mix(0xff); // name terminator
            for b in c.version.to_le_bytes() {
                mix(b);
            }
            // Decode each packed vote back to the exact historical byte
            // (`+1` → 0x01, `0` → 0x00, `-1` → 0xff) so digests stay
            // byte-stable across the packed-storage change — the serve
            // wire-parity and WAL/snapshot recovery checks depend on it.
            for i in 0..c.votes.len() {
                mix(c.votes.get(i) as u8);
            }
        }
        h
    }

    /// Export every column for persistence, in column order.
    pub fn snapshot_columns(&self) -> Vec<ColumnSnapshot> {
        self.columns
            .iter()
            .map(|c| ColumnSnapshot {
                name: c.name.clone(),
                version: c.version,
                labels: c.votes.decode(),
            })
            .collect()
    }

    /// Rebuild a matrix from persisted columns against a **re-derived**
    /// candidate set. The fingerprint is recomputed from `candidates`
    /// (never trusted from disk), so a caller that afterwards compares
    /// [`LabelMatrix::digest`] against the persisted digest has also
    /// proven the candidate set matches the one the columns were computed
    /// over. Errors when a column's length disagrees with the pair count
    /// **or any persisted vote byte is outside `{-1, 0, +1}`** — corrupt
    /// votes must quarantine the session, never decode
    /// ([`Label::try_from_i8`]).
    pub fn restore(
        candidates: &CandidateSet,
        columns: Vec<ColumnSnapshot>,
    ) -> Result<LabelMatrix, String> {
        let n_pairs = candidates.len();
        let mut packed = Vec::with_capacity(columns.len());
        for c in &columns {
            if c.labels.len() != n_pairs {
                return Err(format!(
                    "column {:?} has {} labels but the candidate set has {n_pairs} pairs",
                    c.name,
                    c.labels.len()
                ));
            }
            let votes = PackedVotes::try_from_i8s(&c.labels).map_err(|(i, bad)| {
                format!(
                    "column {:?} has out-of-range vote {bad} at pair {i} (valid: -1/0/+1)",
                    c.name
                )
            })?;
            packed.push(votes);
        }
        Ok(LabelMatrix {
            n_pairs,
            fingerprint: fingerprint(candidates),
            columns: columns
                .into_iter()
                .zip(packed)
                .map(|(c, votes)| Column {
                    name: c.name,
                    version: c.version,
                    votes,
                })
                .collect(),
        })
    }
}

/// One persisted label-matrix column (see
/// [`LabelMatrix::snapshot_columns`] / [`LabelMatrix::restore`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnSnapshot {
    /// LF name (matrix column key).
    pub name: String,
    /// Registry version the column was computed at.
    pub version: u64,
    /// Votes, one per candidate pair: `+1` / `0` / `-1`.
    pub labels: Vec<i8>,
}

fn fingerprint(candidates: &CandidateSet) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for p in candidates.pairs() {
        for v in [p.left.0, p.right.0] {
            h ^= u64::from(v);
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h ^ candidates.len() as u64
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "LF panicked (non-string payload)".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::ClosureLf;
    use crate::lf::LfRegistry;
    use panda_table::{CandidatePair, Schema, Table};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    fn tiny() -> (TablePair, CandidateSet) {
        let schema = Schema::of_text(&["name"]);
        let mut left = Table::new("l", schema.clone());
        left.push(vec!["a"]).unwrap();
        left.push(vec!["b"]).unwrap();
        let mut right = Table::new("r", schema);
        right.push(vec!["a"]).unwrap();
        right.push(vec!["c"]).unwrap();
        let tables = TablePair::new(left, right);
        let cands = CandidateSet::from_pairs([
            CandidatePair::new(0, 0),
            CandidatePair::new(0, 1),
            CandidatePair::new(1, 0),
            CandidatePair::new(1, 1),
        ]);
        (tables, cands)
    }

    fn eq_lf(name: &str) -> Arc<ClosureLf> {
        Arc::new(ClosureLf::new(name, |p| {
            Label::from_bool(p.left.text("name") == p.right.text("name"))
        }))
    }

    #[test]
    fn apply_builds_columns() {
        let (tables, cands) = tiny();
        let mut reg = LfRegistry::new();
        reg.upsert(eq_lf("eq"));
        let mut m = LabelMatrix::new();
        let report = m.apply(&reg, &tables, &cands);
        assert_eq!(report.applied, vec!["eq"]);
        assert_eq!(m.n_pairs(), 4);
        assert_eq!(m.column("eq").unwrap(), &[1, -1, -1, -1]);
        assert_eq!(m.counts("eq"), Some((1, 3, 0)));
    }

    #[test]
    fn second_apply_is_incremental() {
        let (tables, cands) = tiny();
        let mut reg = LfRegistry::new();
        let calls = Arc::new(AtomicUsize::new(0));
        let c2 = calls.clone();
        reg.upsert(Arc::new(ClosureLf::new("counting", move |_| {
            c2.fetch_add(1, Ordering::SeqCst);
            Label::Abstain
        })));
        let mut m = LabelMatrix::new();
        m.apply(&reg, &tables, &cands);
        assert_eq!(calls.load(Ordering::SeqCst), 4);
        let report = m.apply(&reg, &tables, &cands);
        assert_eq!(calls.load(Ordering::SeqCst), 4, "no re-execution");
        assert_eq!(report.reused, vec!["counting"]);
        assert!(report.applied.is_empty());
    }

    #[test]
    fn version_bump_recomputes_only_that_lf() {
        let (tables, cands) = tiny();
        let mut reg = LfRegistry::new();
        reg.upsert(eq_lf("stable"));
        reg.upsert(Arc::new(ClosureLf::new("edited", |_| Label::Abstain)));
        let mut m = LabelMatrix::new();
        m.apply(&reg, &tables, &cands);
        // Replace "edited".
        reg.upsert(Arc::new(ClosureLf::new("edited", |_| Label::Match)));
        let report = m.apply(&reg, &tables, &cands);
        assert_eq!(report.applied, vec!["edited"]);
        assert_eq!(report.reused, vec!["stable"]);
        assert_eq!(m.column("edited").unwrap(), &[1, 1, 1, 1]);
    }

    #[test]
    fn removed_lf_drops_column() {
        let (tables, cands) = tiny();
        let mut reg = LfRegistry::new();
        reg.upsert(eq_lf("gone"));
        let mut m = LabelMatrix::new();
        m.apply(&reg, &tables, &cands);
        reg.remove("gone");
        let report = m.apply(&reg, &tables, &cands);
        assert_eq!(report.removed, vec!["gone"]);
        assert!(m.column("gone").is_none());
        assert_eq!(m.n_lfs(), 0);
    }

    #[test]
    fn panicking_lf_is_quarantined() {
        let (tables, cands) = tiny();
        let mut reg = LfRegistry::new();
        reg.upsert(eq_lf("good"));
        reg.upsert(Arc::new(ClosureLf::new("buggy", |_| {
            panic!("index out of bounds in user code")
        })));
        let mut m = LabelMatrix::new();
        let report = m.apply(&reg, &tables, &cands);
        assert_eq!(report.failed.len(), 1);
        assert_eq!(report.failed[0].0, "buggy");
        assert!(report.failed[0].1.contains("index out of bounds"));
        // The good LF still applied.
        assert!(m.column("good").is_some());
        assert!(m.column("buggy").is_none());
    }

    #[test]
    fn snapshot_restore_round_trips_the_digest() {
        let (tables, cands) = tiny();
        let mut reg = LfRegistry::new();
        reg.upsert(eq_lf("eq"));
        reg.upsert(Arc::new(ClosureLf::new("abstain", |_| Label::Abstain)));
        let mut m = LabelMatrix::new();
        m.apply(&reg, &tables, &cands);

        let restored = LabelMatrix::restore(&cands, m.snapshot_columns()).unwrap();
        assert_eq!(restored.digest(), m.digest());
        assert_eq!(restored.column("eq"), m.column("eq"));

        // A different candidate set changes the recomputed fingerprint,
        // so the digest no longer matches — the recovery-time check that
        // persisted columns belong to these tables.
        let other = CandidateSet::from_pairs([CandidatePair::new(0, 0)]);
        assert!(LabelMatrix::restore(&other, m.snapshot_columns()).is_err());
    }

    #[test]
    fn candidate_set_change_invalidates_cache() {
        let (tables, cands) = tiny();
        let mut reg = LfRegistry::new();
        reg.upsert(eq_lf("eq"));
        let mut m = LabelMatrix::new();
        m.apply(&reg, &tables, &cands);
        let smaller = CandidateSet::from_pairs([CandidatePair::new(0, 0)]);
        let report = m.apply(&reg, &tables, &smaller);
        assert_eq!(report.applied, vec!["eq"]);
        assert_eq!(m.n_pairs(), 1);
        assert_eq!(m.column("eq").unwrap(), &[1]);
    }

    #[test]
    fn rows_follow_registry_order() {
        let (tables, cands) = tiny();
        let mut reg = LfRegistry::new();
        reg.upsert(Arc::new(ClosureLf::new("z_first", |_| Label::Match)));
        reg.upsert(Arc::new(ClosureLf::new("a_second", |_| Label::NonMatch)));
        let mut m = LabelMatrix::new();
        m.apply(&reg, &tables, &cands);
        assert_eq!(m.lf_names(), vec!["z_first", "a_second"]);
        assert_eq!(m.row(0), vec![1, -1]);
    }

    #[test]
    fn add_column_matches_full_apply() {
        let (tables, cands) = tiny();
        let mut reg = LfRegistry::new();
        reg.upsert(eq_lf("eq"));
        let mut full = LabelMatrix::new();
        full.apply(&reg, &tables, &cands);

        let mut inc = LabelMatrix::new();
        let lf: BoxedLf = eq_lf("eq");
        let version = reg.version("eq").unwrap();
        inc.add_column(&lf, version, &tables, &cands).unwrap();
        assert_eq!(inc.n_pairs(), full.n_pairs());
        assert_eq!(inc.column("eq"), full.column("eq"));
        assert_eq!(inc.digest(), full.digest(), "byte-identical to full apply");
    }

    /// The satellite invariant: incremental add of LF k followed by
    /// remove of LF k restores a matrix byte-identical to the original.
    #[test]
    fn add_then_remove_restores_digest() {
        let (tables, cands) = tiny();
        let mut reg = LfRegistry::new();
        reg.upsert(eq_lf("base1"));
        reg.upsert(Arc::new(ClosureLf::new("base2", |_| Label::Abstain)));
        let mut m = LabelMatrix::new();
        m.apply(&reg, &tables, &cands);
        let original = m.digest();

        let extra: BoxedLf = Arc::new(ClosureLf::new("extra", |_| Label::Match));
        let version = reg.upsert(extra.clone());
        m.add_column(&extra, version, &tables, &cands).unwrap();
        assert_ne!(m.digest(), original, "digest sees the new column");
        assert_eq!(m.column("extra").unwrap(), &[1, 1, 1, 1]);

        assert!(m.remove_column("extra"));
        assert_eq!(
            m.digest(),
            original,
            "add then remove restores the matrix byte-identically"
        );
        assert!(!m.remove_column("extra"), "second remove is a no-op");
    }

    #[test]
    fn add_column_replaces_same_name_in_place() {
        let (tables, cands) = tiny();
        let mut reg = LfRegistry::new();
        reg.upsert(eq_lf("a"));
        reg.upsert(Arc::new(ClosureLf::new("b", |_| Label::Abstain)));
        let mut m = LabelMatrix::new();
        m.apply(&reg, &tables, &cands);

        let replacement: BoxedLf = Arc::new(ClosureLf::new("a", |_| Label::NonMatch));
        let version = reg.upsert(replacement.clone());
        m.add_column(&replacement, version, &tables, &cands)
            .unwrap();
        assert_eq!(m.lf_names(), vec!["a", "b"], "replacement keeps position");
        assert_eq!(m.column("a").unwrap(), &[-1, -1, -1, -1]);
    }

    #[test]
    fn add_column_quarantines_panics_and_leaves_matrix_unchanged() {
        let (tables, cands) = tiny();
        let mut reg = LfRegistry::new();
        reg.upsert(eq_lf("good"));
        let mut m = LabelMatrix::new();
        m.apply(&reg, &tables, &cands);
        let before = m.digest();

        let buggy: BoxedLf = Arc::new(ClosureLf::new("buggy", |_| panic!("boom in user code")));
        let err = m.add_column(&buggy, 99, &tables, &cands).unwrap_err();
        assert!(err.contains("boom in user code"));
        assert_eq!(m.digest(), before, "failed add leaves the matrix intact");
        assert!(m.column("buggy").is_none());
    }

    #[test]
    fn add_column_establishes_empty_matrix_dimensions() {
        let (tables, cands) = tiny();
        let mut m = LabelMatrix::new();
        assert_eq!(m.n_pairs(), 0);
        let lf: BoxedLf = eq_lf("eq");
        m.add_column(&lf, 1, &tables, &cands).unwrap();
        assert_eq!(m.n_pairs(), 4);
        assert_eq!(m.column("eq").unwrap(), &[1, -1, -1, -1]);
    }

    /// Incremental apply must be observationally identical to a fresh
    /// full apply (property check over a few random edit sequences).
    #[test]
    fn incremental_equals_full() {
        use proptest::prelude::*;
        let mut runner = proptest::test_runner::TestRunner::deterministic();
        let strategy = proptest::collection::vec(0u8..4, 1..12);
        runner
            .run(&strategy, |ops| {
                let (tables, cands) = tiny();
                let mut reg = LfRegistry::new();
                let mut inc = LabelMatrix::new();
                for (step, op) in ops.iter().enumerate() {
                    match op {
                        0 => {
                            reg.upsert(eq_lf(&format!("lf{step}")));
                        }
                        1 => {
                            reg.upsert(Arc::new(ClosureLf::new(
                                format!("lf{}", step.saturating_sub(1)),
                                |_| Label::Match,
                            )));
                        }
                        2 => {
                            reg.remove(&format!("lf{}", step.saturating_sub(2)));
                        }
                        _ => {}
                    }
                    inc.apply(&reg, &tables, &cands);
                    let mut fresh = LabelMatrix::new();
                    fresh.apply(&reg, &tables, &cands);
                    prop_assert_eq!(inc.lf_names(), fresh.lf_names());
                    for name in inc.lf_names() {
                        prop_assert_eq!(inc.column(name), fresh.column(name));
                    }
                }
                Ok(())
            })
            .unwrap();
    }

    // ---- packed 2-bit vote storage ------------------------------------

    #[test]
    fn packed_round_trips_near_word_boundaries() {
        // Lengths straddling the 32-votes-per-word boundary: push/get/
        // decode must agree with the source exactly.
        for n in [0usize, 1, 31, 32, 33, 63, 64, 65, 100] {
            let src: Vec<i8> = (0..n).map(|i| [1i8, 0, -1][i % 3]).collect();
            let packed = PackedVotes::try_from_i8s(&src).unwrap();
            assert_eq!(packed.len(), n);
            assert_eq!(packed.decode(), src);
            for (i, &v) in src.iter().enumerate() {
                assert_eq!(packed.get(i), v);
            }
            assert_eq!(packed.words().len(), n.div_ceil(VOTES_PER_WORD));
        }
    }

    #[test]
    fn packed_tail_lanes_are_zero() {
        // The zero-tail invariant word-at-a-time counting relies on.
        let mut v = PackedVotes::with_capacity(33);
        for _ in 0..33 {
            v.push(Label::Match);
        }
        let last = *v.words().last().unwrap();
        assert_eq!(last, 0b01, "only lane 0 of the tail word is set");
    }

    #[test]
    fn packed_counts_match_scalar_counts() {
        use proptest::prelude::*;
        let mut runner = proptest::test_runner::TestRunner::deterministic();
        let strategy = proptest::collection::vec(-1i8..=1, 0..200);
        runner
            .run(&strategy, |src| {
                let packed = PackedVotes::try_from_i8s(&src).unwrap();
                let m = src.iter().filter(|&&v| v == 1).count();
                let u = src.iter().filter(|&&v| v == -1).count();
                let a = src.iter().filter(|&&v| v == 0).count();
                prop_assert_eq!(packed.counts(), (m, u, a));
                prop_assert_eq!(packed.decode(), src);
                Ok(())
            })
            .unwrap();
    }

    #[test]
    fn all_abstain_column_counts_word_at_a_time() {
        let src = vec![0i8; 77];
        let packed = PackedVotes::try_from_i8s(&src).unwrap();
        assert_eq!(packed.counts(), (0, 0, 77));
        assert!(packed.words().iter().all(|&w| w == 0));
    }

    /// The recovery-path satellite: a persisted column with a vote byte
    /// outside `{-1, 0, +1}` must refuse to restore (quarantine), not be
    /// reinterpreted as a vote.
    #[test]
    fn restore_quarantines_out_of_range_votes() {
        let cands = CandidateSet::from_pairs([CandidatePair::new(0, 0), CandidatePair::new(0, 1)]);
        for bad in [2i8, 5, -3, 127, -128] {
            let snap = vec![ColumnSnapshot {
                name: "corrupt".into(),
                version: 1,
                labels: vec![1, bad],
            }];
            let err = LabelMatrix::restore(&cands, snap).unwrap_err();
            assert!(
                err.contains("out-of-range vote") && err.contains("pair 1"),
                "unexpected error: {err}"
            );
        }
        // Valid bytes still restore.
        let ok = vec![ColumnSnapshot {
            name: "fine".into(),
            version: 1,
            labels: vec![1, -1],
        }];
        assert!(LabelMatrix::restore(&cands, ok).is_ok());
    }
}
