//! The declarative LF builder DSL.
//!
//! These cover the LF shapes the paper demonstrates:
//!
//! * [`SimilarityLf`] — the paper's `name_overlap` (Figure 2, left): a
//!   similarity score with an upper threshold voting +1 and a lower
//!   threshold voting −1, abstaining in between;
//! * [`ExtractionLf`] — the paper's `size_unmatch` (Figure 2, right):
//!   extract a key attribute from both sides and vote −1 when the
//!   extractions disagree;
//! * [`AttributeEqualityLf`] — exact equality on an attribute (phone
//!   numbers, years);
//! * [`NumericToleranceLf`] — numeric attributes within a relative
//!   tolerance (prices);
//! * [`ClosureLf`] — anything else, from a Rust closure (the stand-in for
//!   arbitrary user Python in the original system).

use crate::lf::{LabelingFunction, LfProvenance};
use crate::Label;
use panda_table::PairRef;
use panda_text::{CorpusStats, SimilarityConfig};
use std::sync::Arc;

// ---------------------------------------------------------------------------
// ClosureLf
// ---------------------------------------------------------------------------

/// An LF defined by an arbitrary closure.
pub struct ClosureLf {
    name: String,
    description: String,
    f: Box<dyn Fn(&PairRef<'_>) -> Label + Send + Sync>,
}

impl ClosureLf {
    /// Wrap a closure as an LF.
    pub fn new(
        name: impl Into<String>,
        f: impl Fn(&PairRef<'_>) -> Label + Send + Sync + 'static,
    ) -> Self {
        let name = name.into();
        ClosureLf {
            description: format!("closure LF {name}"),
            name,
            f: Box::new(f),
        }
    }

    /// Attach a human description.
    pub fn with_description(mut self, d: impl Into<String>) -> Self {
        self.description = d.into();
        self
    }
}

impl LabelingFunction for ClosureLf {
    fn name(&self) -> &str {
        &self.name
    }
    fn label(&self, pair: &PairRef<'_>) -> Label {
        (self.f)(pair)
    }
    fn description(&self) -> String {
        self.description.clone()
    }
}

// ---------------------------------------------------------------------------
// SimilarityLf
// ---------------------------------------------------------------------------

/// Similarity-threshold LF over one attribute (possibly named differently
/// on each side).
///
/// Semantics match the paper's `name_overlap`: score > `upper` → +1,
/// score < `lower` → −1, otherwise abstain. Set `lower` to a negative
/// value for a match-only LF, or `upper` > 1 for a non-match-only LF.
/// When either side's attribute is missing the LF abstains.
#[derive(Debug, Clone)]
pub struct SimilarityLf {
    name: String,
    left_attr: String,
    right_attr: String,
    config: SimilarityConfig,
    upper: f64,
    lower: f64,
    stats: Option<Arc<CorpusStats>>,
    provenance: LfProvenance,
}

impl SimilarityLf {
    /// Build a similarity LF on `attr` (same name both sides).
    pub fn new(
        name: impl Into<String>,
        attr: impl Into<String>,
        config: SimilarityConfig,
        upper: f64,
        lower: f64,
    ) -> Self {
        let attr = attr.into();
        SimilarityLf {
            name: name.into(),
            left_attr: attr.clone(),
            right_attr: attr,
            config,
            upper,
            lower,
            stats: None,
            provenance: LfProvenance::Manual,
        }
    }

    /// Use different attribute names on the two sides (`title` vs `name`).
    pub fn with_attrs(mut self, left: impl Into<String>, right: impl Into<String>) -> Self {
        self.left_attr = left.into();
        self.right_attr = right.into();
        self
    }

    /// Attach corpus statistics for TF-IDF weighting.
    pub fn with_corpus(mut self, stats: Arc<CorpusStats>) -> Self {
        self.stats = Some(stats);
        self
    }

    /// Mark as auto-generated (used by Auto-FuzzyJoin).
    pub fn with_provenance(mut self, p: LfProvenance) -> Self {
        self.provenance = p;
        self
    }

    /// The similarity score this LF thresholds, exposed for debugging
    /// panels.
    pub fn score(&self, pair: &PairRef<'_>) -> Option<f64> {
        let l = pair.left.get(&self.left_attr);
        let r = pair.right.get(&self.right_attr);
        if l.is_missing() || r.is_missing() {
            return None;
        }
        Some(
            self.config
                .score(&l.to_text(), &r.to_text(), self.stats.as_deref()),
        )
    }

    /// Current thresholds `(upper, lower)`.
    pub fn thresholds(&self) -> (f64, f64) {
        (self.upper, self.lower)
    }

    /// A copy with new thresholds (Step 4 of the demo: the user tightens
    /// `name_overlap` from 0.4 to 0.6).
    pub fn with_thresholds(mut self, upper: f64, lower: f64) -> Self {
        self.upper = upper;
        self.lower = lower;
        self
    }
}

impl LabelingFunction for SimilarityLf {
    fn name(&self) -> &str {
        &self.name
    }

    fn label(&self, pair: &PairRef<'_>) -> Label {
        let l = pair.left.get(&self.left_attr);
        let r = pair.right.get(&self.right_attr);
        if l.is_missing() || r.is_missing() {
            return Label::Abstain;
        }
        // classify_thresholds == scoring then comparing, but edit-distance
        // measures get the banded DP instead of the full one.
        match self.config.classify_thresholds(
            &l.to_text(),
            &r.to_text(),
            self.stats.as_deref(),
            self.upper,
            self.lower,
        ) {
            std::cmp::Ordering::Greater => Label::Match,
            std::cmp::Ordering::Less => Label::NonMatch,
            std::cmp::Ordering::Equal => Label::Abstain,
        }
    }

    fn description(&self) -> String {
        format!(
            "sim[{}]({}, {}) > {:.2} => +1; < {:.2} => -1",
            self.config.id(),
            self.left_attr,
            self.right_attr,
            self.upper,
            self.lower
        )
    }

    fn provenance(&self) -> LfProvenance {
        self.provenance
    }
}

// ---------------------------------------------------------------------------
// ExtractionLf
// ---------------------------------------------------------------------------

/// Agreement semantics for [`ExtractionLf`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExtractionPolicy {
    /// Disagree → −1, agree → abstain (the paper's `size_unmatch`).
    UnmatchOnly,
    /// Disagree → −1, agree → +1.
    Symmetric,
    /// Agree → +1, disagree → abstain.
    MatchOnly,
}

/// Extract a key value from both sides (via a closure, typically wrapping
/// `panda_text::extract`) and compare. Abstains when either side has no
/// extraction.
/// Extraction callback: concatenated attribute text → extracted key values.
type ExtractFn = Box<dyn Fn(&str) -> Vec<String> + Send + Sync>;

pub struct ExtractionLf {
    name: String,
    attrs: Vec<String>,
    extract: ExtractFn,
    policy: ExtractionPolicy,
}

impl ExtractionLf {
    /// Build an extraction LF over the given attributes (their texts are
    /// concatenated before extraction, like the paper's `size_unmatch`
    /// which scans name *and* description).
    pub fn new(
        name: impl Into<String>,
        attrs: &[&str],
        policy: ExtractionPolicy,
        extract: impl Fn(&str) -> Vec<String> + Send + Sync + 'static,
    ) -> Self {
        ExtractionLf {
            name: name.into(),
            attrs: attrs.iter().map(|s| s.to_string()).collect(),
            extract: Box::new(extract),
            policy,
        }
    }

    /// The paper's `size_unmatch`: extract sizes from name+description,
    /// vote −1 when they disagree.
    pub fn size_unmatch(attrs: &[&str]) -> Self {
        ExtractionLf::new(
            "size_unmatch",
            attrs,
            ExtractionPolicy::UnmatchOnly,
            |text| {
                panda_text::extract::sizes(text)
                    .into_iter()
                    .map(|s| format!("{s}"))
                    .collect()
            },
        )
    }

    fn gather(&self, rec: &panda_table::Record<'_>) -> Vec<String> {
        let text: Vec<String> = self.attrs.iter().map(|a| rec.text(a)).collect();
        (self.extract)(&text.join(" "))
    }
}

impl LabelingFunction for ExtractionLf {
    fn name(&self) -> &str {
        &self.name
    }

    fn label(&self, pair: &PairRef<'_>) -> Label {
        let a = self.gather(&pair.left);
        let b = self.gather(&pair.right);
        if a.is_empty() || b.is_empty() {
            return Label::Abstain;
        }
        let agree = a.iter().any(|x| b.contains(x));
        match (agree, self.policy) {
            (true, ExtractionPolicy::UnmatchOnly) => Label::Abstain,
            (true, _) => Label::Match,
            (false, ExtractionPolicy::MatchOnly) => Label::Abstain,
            (false, _) => Label::NonMatch,
        }
    }

    fn description(&self) -> String {
        format!("extract over [{}], {:?}", self.attrs.join(","), self.policy)
    }
}

// ---------------------------------------------------------------------------
// AttributeEqualityLf
// ---------------------------------------------------------------------------

/// Exact (case/whitespace-normalised) equality on one attribute.
#[derive(Debug, Clone)]
pub struct AttributeEqualityLf {
    name: String,
    attr: String,
    /// Vote −1 on inequality (otherwise abstain on inequality).
    pub unmatch_on_differ: bool,
}

impl AttributeEqualityLf {
    /// Equality LF on `attr`.
    pub fn new(name: impl Into<String>, attr: impl Into<String>, unmatch_on_differ: bool) -> Self {
        AttributeEqualityLf {
            name: name.into(),
            attr: attr.into(),
            unmatch_on_differ,
        }
    }

    fn norm(s: &str) -> String {
        s.split_whitespace()
            .collect::<Vec<_>>()
            .join(" ")
            .to_lowercase()
    }
}

impl LabelingFunction for AttributeEqualityLf {
    fn name(&self) -> &str {
        &self.name
    }

    fn label(&self, pair: &PairRef<'_>) -> Label {
        let l = pair.left.get(&self.attr);
        let r = pair.right.get(&self.attr);
        if l.is_missing() || r.is_missing() {
            return Label::Abstain;
        }
        if Self::norm(&l.to_text()) == Self::norm(&r.to_text()) {
            Label::Match
        } else if self.unmatch_on_differ {
            Label::NonMatch
        } else {
            Label::Abstain
        }
    }

    fn description(&self) -> String {
        format!(
            "{} equal => +1{}",
            self.attr,
            if self.unmatch_on_differ {
                "; differ => -1"
            } else {
                ""
            }
        )
    }
}

// ---------------------------------------------------------------------------
// NumericToleranceLf
// ---------------------------------------------------------------------------

/// Numeric attribute within a relative tolerance → +1; far apart → −1;
/// in between (or missing) → abstain.
#[derive(Debug, Clone)]
pub struct NumericToleranceLf {
    name: String,
    attr: String,
    /// Relative difference below which the LF votes +1.
    pub match_tol: f64,
    /// Relative difference above which the LF votes −1.
    pub unmatch_tol: f64,
}

impl NumericToleranceLf {
    /// Build a numeric-tolerance LF; `match_tol ≤ unmatch_tol`.
    pub fn new(
        name: impl Into<String>,
        attr: impl Into<String>,
        match_tol: f64,
        unmatch_tol: f64,
    ) -> Self {
        assert!(match_tol <= unmatch_tol, "match_tol must be ≤ unmatch_tol");
        NumericToleranceLf {
            name: name.into(),
            attr: attr.into(),
            match_tol,
            unmatch_tol,
        }
    }
}

impl LabelingFunction for NumericToleranceLf {
    fn name(&self) -> &str {
        &self.name
    }

    fn label(&self, pair: &PairRef<'_>) -> Label {
        let Some((a, b)) = pair.numbers(&self.attr) else {
            return Label::Abstain;
        };
        let denom = a.abs().max(b.abs());
        if denom == 0.0 {
            return Label::Match; // both zero
        }
        let rel = (a - b).abs() / denom;
        if rel <= self.match_tol {
            Label::Match
        } else if rel > self.unmatch_tol {
            Label::NonMatch
        } else {
            Label::Abstain
        }
    }

    fn description(&self) -> String {
        format!(
            "|Δ{}|/max ≤ {:.2} => +1; > {:.2} => -1",
            self.attr, self.match_tol, self.unmatch_tol
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use panda_table::{CandidatePair, Schema, Table, TablePair};

    fn task() -> TablePair {
        let schema = Schema::of_text(&["name", "description", "price", "phone"]);
        let mut left = Table::new("l", schema.clone());
        left.push(vec![
            "Sony Bravia 40' LCD TV",
            "great 40 inch tv",
            "499",
            "555-1234",
        ])
        .unwrap();
        left.push(vec!["LG washer", "", "799", ""]).unwrap();
        let mut right = Table::new("r", schema);
        right
            .push(vec![
                "sony bravia 40in lcd tv",
                "hdmi 1080p",
                "489",
                "555-1234",
            ])
            .unwrap();
        right
            .push(vec![
                "Samsung 46' LED TV",
                "46 inch panel",
                "899",
                "555-9999",
            ])
            .unwrap();
        TablePair::new(left, right)
    }

    fn pair(tp: &TablePair, l: u32, r: u32) -> PairRef<'_> {
        tp.pair_ref(CandidatePair::new(l, r)).unwrap()
    }

    #[test]
    fn name_overlap_like_the_paper() {
        // Figure 2 left: jaccard on "name", > 0.6 → +1, < 0.1 → −1.
        let tp = task();
        let lf = SimilarityLf::new(
            "name_overlap",
            "name",
            SimilarityConfig::default_jaccard(),
            0.6,
            0.1,
        );
        assert_eq!(lf.label(&pair(&tp, 0, 0)), Label::Match);
        assert_eq!(lf.label(&pair(&tp, 1, 1)), Label::NonMatch);
        assert!(lf.description().contains("name"));
    }

    #[test]
    fn similarity_lf_abstains_on_missing() {
        let tp = task();
        let lf = SimilarityLf::new(
            "desc_overlap",
            "description",
            SimilarityConfig::default_jaccard(),
            0.5,
            0.05,
        );
        // Left row 1 has empty description.
        assert_eq!(lf.label(&pair(&tp, 1, 0)), Label::Abstain);
    }

    #[test]
    fn size_unmatch_like_the_paper() {
        // Figure 2 right: different extracted sizes → −1, else abstain.
        let tp = task();
        let lf = ExtractionLf::size_unmatch(&["name", "description"]);
        assert_eq!(lf.label(&pair(&tp, 0, 1)), Label::NonMatch, "40 vs 46");
        assert_eq!(
            lf.label(&pair(&tp, 0, 0)),
            Label::Abstain,
            "40 agrees → abstain"
        );
        assert_eq!(
            lf.label(&pair(&tp, 1, 0)),
            Label::Abstain,
            "no size on left"
        );
    }

    #[test]
    fn extraction_symmetric_policy_votes_both_ways() {
        let tp = task();
        let lf = ExtractionLf::new(
            "size_sym",
            &["name", "description"],
            ExtractionPolicy::Symmetric,
            |t| {
                panda_text::extract::sizes(t)
                    .iter()
                    .map(|s| s.to_string())
                    .collect()
            },
        );
        assert_eq!(lf.label(&pair(&tp, 0, 0)), Label::Match);
        assert_eq!(lf.label(&pair(&tp, 0, 1)), Label::NonMatch);
    }

    #[test]
    fn attribute_equality_on_phone() {
        let tp = task();
        let lf = AttributeEqualityLf::new("phone_eq", "phone", true);
        assert_eq!(lf.label(&pair(&tp, 0, 0)), Label::Match);
        assert_eq!(lf.label(&pair(&tp, 0, 1)), Label::NonMatch);
        // Missing phone abstains even with unmatch_on_differ.
        assert_eq!(lf.label(&pair(&tp, 1, 0)), Label::Abstain);
    }

    #[test]
    fn numeric_tolerance_on_price() {
        let tp = task();
        let lf = NumericToleranceLf::new("price_close", "price", 0.05, 0.5);
        assert_eq!(lf.label(&pair(&tp, 0, 0)), Label::Match); // 499 vs 489
        assert_eq!(lf.label(&pair(&tp, 0, 1)), Label::Abstain); // 499 vs 899 (~45%)
        let strict = NumericToleranceLf::new("price_strict", "price", 0.05, 0.3);
        assert_eq!(strict.label(&pair(&tp, 0, 1)), Label::NonMatch);
    }

    #[test]
    #[should_panic(expected = "match_tol")]
    fn numeric_tolerance_validates_bounds() {
        NumericToleranceLf::new("bad", "price", 0.5, 0.1);
    }

    #[test]
    fn closure_lf_runs() {
        let tp = task();
        let lf =
            ClosureLf::new("always_abstain", |_| Label::Abstain).with_description("does nothing");
        assert_eq!(lf.label(&pair(&tp, 0, 0)), Label::Abstain);
        assert_eq!(lf.description(), "does nothing");
    }

    #[test]
    fn threshold_update_changes_votes() {
        // The demo's Step 4: tightening the threshold flips borderline
        // pairs from +1 to abstain.
        let tp = task();
        let loose = SimilarityLf::new(
            "name_overlap",
            "name",
            SimilarityConfig::default_jaccard(),
            0.4,
            0.1,
        );
        let tight = loose.clone().with_thresholds(0.95, 0.1);
        let p = pair(&tp, 0, 0);
        assert_eq!(loose.label(&p), Label::Match);
        assert_eq!(tight.label(&p), Label::Abstain);
    }
}
