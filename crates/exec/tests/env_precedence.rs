//! `PANDA_WORKERS` resolution semantics.
//!
//! This lives in its own integration-test binary (= its own process) on
//! purpose: the env variable is read through a `OnceLock`, so the test
//! must control the *first* `worker_count()` call of the process. Unit
//! tests in the library share a process with dozens of other tests and
//! cannot guarantee that. Everything is one `#[test]` because the
//! assertions are order-dependent.

#[test]
fn env_is_read_once_and_loses_to_the_override() {
    // No worker_count() call has happened yet in this process.
    std::env::set_var(panda_exec::WORKERS_ENV, "5");
    assert_eq!(
        panda_exec::worker_count(),
        5,
        "env value honored on first read"
    );

    // The programmatic override outranks the env variable...
    panda_exec::set_worker_override(Some(7));
    assert_eq!(panda_exec::worker_count(), 7, "override wins over env");

    // ...and clearing it falls back to the env value again.
    panda_exec::set_worker_override(None);
    assert_eq!(panda_exec::worker_count(), 5);

    // The env variable was latched on first read: later changes to the
    // process environment are ignored (once-per-process semantics).
    std::env::set_var(panda_exec::WORKERS_ENV, "12345");
    assert_eq!(
        panda_exec::worker_count(),
        5,
        "env is read once per process, not per call"
    );

    // A parallel section actually runs with the env-resolved count: the
    // executor reports the worker gauge through panda-obs.
    panda_obs::set_enabled(true);
    let got = panda_exec::par_map_range(256, |i| i + 1);
    assert_eq!(got, (1..=256).collect::<Vec<_>>());
    let snap = panda_obs::snapshot();
    assert_eq!(snap.gauges.get("exec.workers"), Some(&5.0));
}
