//! Shared parallel-execution layer (std-only, zero external dependencies).
//!
//! Every hot path in the workspace — Auto-LF grid scoring, label-matrix
//! application, embedding tables, triangle enumeration — fans out through
//! this crate instead of hand-rolling `thread::spawn` chunking. The model
//! is deliberately small:
//!
//! - a **scoped** pool (`std::thread::scope`): borrows live only for the
//!   call, no 'static bounds, no channels;
//! - **work stealing via an atomic cursor**: workers claim small index
//!   batches with `fetch_add`, so one expensive item no longer serializes
//!   a whole statically-assigned chunk;
//! - **deterministic output**: results are reassembled in input-index
//!   order, so `par_map_indexed(xs, f)[i] == f(i, &xs[i])` regardless of
//!   worker count or scheduling. Any worker-count-dependent behavior is a
//!   bug in the closure (e.g. leaking shared mutable state), not in the
//!   executor.
//!
//! Worker-count resolution, highest priority first:
//! 1. [`set_worker_override`] (programmatic, e.g. tests),
//! 2. the `PANDA_WORKERS` environment variable (read once per process),
//! 3. `std::thread::available_parallelism()`.
//!
//! With one worker every combinator degrades to a plain serial loop on the
//! calling thread — no pool, no atomics in the item loop.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Environment variable controlling the default worker count.
pub const WORKERS_ENV: &str = "PANDA_WORKERS";

/// 0 = no override.
static WORKER_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

static ENV_WORKERS: OnceLock<Option<usize>> = OnceLock::new();

fn env_workers() -> Option<usize> {
    *ENV_WORKERS.get_or_init(|| {
        std::env::var(WORKERS_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
    })
}

/// Set (or with `None` clear) a process-wide worker-count override that
/// wins over `PANDA_WORKERS` and the detected parallelism.
pub fn set_worker_override(workers: Option<usize>) {
    WORKER_OVERRIDE.store(workers.unwrap_or(0), Ordering::SeqCst);
}

/// The number of workers parallel sections will use right now.
pub fn worker_count() -> usize {
    let over = WORKER_OVERRIDE.load(Ordering::SeqCst);
    if over > 0 {
        return over;
    }
    if let Some(n) = env_workers() {
        return n;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Map `f` over `0..n`, returning results in index order.
///
/// The workhorse primitive: `out[i] == f(i)` for every `i`, independent of
/// the worker count. Panics in `f` propagate to the caller with their
/// original payload (the first panicking worker wins; in-flight items on
/// other workers still run to completion of their current batch).
pub fn par_map_range<U, F>(n: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    let workers = worker_count().min(n);
    if workers <= 1 || n <= 1 {
        panda_obs::counter_add("exec.serial_sections", 1);
        panda_obs::counter_add("exec.items", n as u64);
        return (0..n).map(f).collect();
    }

    // Small claim batches keep stealing effective when item costs are
    // skewed; the divisor trades contention against balance.
    let batch = (n / (workers * 8)).max(1);
    panda_obs::counter_add("exec.sections", 1);
    panda_obs::counter_add("exec.items", n as u64);
    panda_obs::counter_add("exec.steal_batches", n.div_ceil(batch) as u64);
    panda_obs::gauge_set("exec.workers", workers as f64);
    let cursor = AtomicUsize::new(0);

    let mut locals: Vec<Vec<(usize, U)>> = Vec::with_capacity(workers);
    let mut panic_payload: Option<Box<dyn std::any::Any + Send>> = None;

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let cursor = &cursor;
                let f = &f;
                scope.spawn(move || {
                    let mut out: Vec<(usize, U)> = Vec::new();
                    loop {
                        let start = cursor.fetch_add(batch, Ordering::Relaxed);
                        if start >= n {
                            break;
                        }
                        let end = (start + batch).min(n);
                        for i in start..end {
                            out.push((i, f(i)));
                        }
                    }
                    out
                })
            })
            .collect();
        for handle in handles {
            match handle.join() {
                Ok(local) => locals.push(local),
                Err(payload) => {
                    panic_payload.get_or_insert(payload);
                }
            }
        }
    });

    if let Some(payload) = panic_payload {
        resume_unwind(payload);
    }

    let mut all: Vec<(usize, U)> = locals.into_iter().flatten().collect();
    debug_assert_eq!(all.len(), n);
    all.sort_unstable_by_key(|(i, _)| *i);
    all.into_iter().map(|(_, u)| u).collect()
}

/// Map `f(index, &item)` over a slice, results in input order.
pub fn par_map_indexed<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    par_map_range(items.len(), |i| f(i, &items[i]))
}

/// Map `f(chunk_index, chunk)` over fixed-size chunks of a slice, results
/// in chunk order. The chunk size is a property of the *data layout*, not
/// the worker count — keep it constant if downstream code must be
/// invariant under `PANDA_WORKERS`.
pub fn par_chunks<T, U, F>(items: &[T], chunk_size: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &[T]) -> U + Sync,
{
    assert!(chunk_size > 0, "par_chunks: chunk_size must be > 0");
    let chunks: Vec<&[T]> = items.chunks(chunk_size).collect();
    par_map_range(chunks.len(), |i| f(i, chunks[i]))
}

/// Run `f` over `0..n` purely for effects observable through `&T`'s
/// interior (e.g. per-index slots behind atomics). Provided for symmetry;
/// prefer the value-returning combinators.
pub fn par_for_each<F>(n: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    par_map_range(n, f);
}

/// Like [`par_map_range`] but each item's panic is caught and surfaced as
/// `Err(payload)` in that item's slot instead of tearing down the whole
/// map. Used by quarantine-style callers (label matrix) that must keep
/// healthy items' results when one item dies.
pub fn par_try_map_range<U, F>(n: usize, f: F) -> Vec<Result<U, Box<dyn std::any::Any + Send>>>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    par_map_range(n, |i| catch_unwind(AssertUnwindSafe(|| f(i))))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Mutex;

    /// Serialize tests that touch the global override so they can't race.
    static OVERRIDE_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn map_matches_serial_for_many_sizes() {
        let _g = OVERRIDE_LOCK.lock().unwrap();
        for workers in [1usize, 2, 3, 8] {
            set_worker_override(Some(workers));
            for n in [0usize, 1, 2, 7, 64, 1000] {
                let got = par_map_range(n, |i| i * i + 1);
                let want: Vec<usize> = (0..n).map(|i| i * i + 1).collect();
                assert_eq!(got, want, "workers={workers} n={n}");
            }
        }
        set_worker_override(None);
    }

    #[test]
    fn indexed_map_sees_the_right_items() {
        let _g = OVERRIDE_LOCK.lock().unwrap();
        set_worker_override(Some(4));
        let items: Vec<String> = (0..257).map(|i| format!("v{i}")).collect();
        let got = par_map_indexed(&items, |i, s| format!("{i}:{s}"));
        for (i, s) in got.iter().enumerate() {
            assert_eq!(s, &format!("{i}:v{i}"));
        }
        set_worker_override(None);
    }

    #[test]
    fn chunks_cover_everything_in_order() {
        let _g = OVERRIDE_LOCK.lock().unwrap();
        set_worker_override(Some(3));
        let items: Vec<u32> = (0..103).collect();
        let sums = par_chunks(&items, 10, |ci, chunk| {
            (ci, chunk.iter().sum::<u32>(), chunk.len())
        });
        assert_eq!(sums.len(), 11);
        assert_eq!(sums.last().unwrap().2, 3, "tail chunk is short");
        let total: u32 = sums.iter().map(|(_, s, _)| s).sum();
        assert_eq!(total, (0..103).sum::<u32>());
        for (i, (ci, _, _)) in sums.iter().enumerate() {
            assert_eq!(i, *ci);
        }
        set_worker_override(None);
    }

    #[test]
    fn skewed_items_are_stolen_not_serialized() {
        let _g = OVERRIDE_LOCK.lock().unwrap();
        set_worker_override(Some(4));
        // One item is 1000x the others; with static per-worker chunking
        // the whole first quarter would queue behind it. We can't assert
        // on wall-clock in CI, but we can assert every item still ran
        // exactly once and in-order output held.
        let counter = AtomicU64::new(0);
        let got = par_map_range(64, |i| {
            if i == 0 {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            counter.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(counter.load(Ordering::Relaxed), 64);
        assert_eq!(got, (0..64).collect::<Vec<_>>());
        set_worker_override(None);
    }

    #[test]
    fn panics_propagate_with_payload() {
        let _g = OVERRIDE_LOCK.lock().unwrap();
        set_worker_override(Some(4));
        let result = std::panic::catch_unwind(|| {
            par_map_range(32, |i| {
                if i == 17 {
                    panic!("boom at {i}");
                }
                i
            })
        });
        let payload = result.expect_err("panic must propagate");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("boom at 17"), "payload preserved: {msg}");
        set_worker_override(None);
    }

    #[test]
    fn try_map_quarantines_single_items() {
        let _g = OVERRIDE_LOCK.lock().unwrap();
        set_worker_override(Some(4));
        let results = par_try_map_range(16, |i| {
            if i % 5 == 0 {
                panic!("bad {i}");
            }
            i * 2
        });
        for (i, r) in results.iter().enumerate() {
            if i % 5 == 0 {
                assert!(r.is_err());
            } else {
                assert_eq!(*r.as_ref().unwrap(), i * 2);
            }
        }
        set_worker_override(None);
    }

    #[test]
    fn multiple_panicking_workers_still_propagate_one_payload() {
        let _g = OVERRIDE_LOCK.lock().unwrap();
        set_worker_override(Some(4));
        // Many items panic concurrently on different workers. Exactly one
        // payload must reach the caller (first joined worker wins), and it
        // must be an *original* payload, not a generic join error.
        let result = std::panic::catch_unwind(|| {
            par_map_range(64, |i| {
                if i % 3 == 0 {
                    panic!("multi-boom {i}");
                }
                i
            })
        });
        let payload = result.expect_err("panic must propagate");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(
            msg.starts_with("multi-boom "),
            "one of the original payloads survives: {msg:?}"
        );
        let idx: usize = msg["multi-boom ".len()..].parse().unwrap();
        assert_eq!(idx % 3, 0, "payload names a genuinely panicking item");
        set_worker_override(None);
    }

    #[test]
    fn override_wins_over_everything() {
        let _g = OVERRIDE_LOCK.lock().unwrap();
        set_worker_override(Some(7));
        assert_eq!(worker_count(), 7);
        set_worker_override(None);
        assert!(worker_count() >= 1);
    }
}
