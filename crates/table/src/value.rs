//! Dynamically typed cell values.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// A single cell value in a table.
///
/// EM benchmark data is messy: numeric columns contain `"$ 1,299.00"`,
/// identifiers mix digits and letters, and missing values abound. `Value`
/// therefore keeps typing loose and provides lossy accessors
/// ([`Value::as_text`], [`Value::as_f64`]) that labeling functions can rely
/// on without matching on the variant themselves.
#[derive(Debug, Clone, Serialize, Deserialize, Default)]
pub enum Value {
    /// Missing / unknown.
    #[default]
    Null,
    /// Free text.
    Text(String),
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
}

impl Value {
    /// True if the value is [`Value::Null`] or an empty / whitespace-only string.
    pub fn is_missing(&self) -> bool {
        match self {
            Value::Null => true,
            Value::Text(s) => s.trim().is_empty(),
            _ => false,
        }
    }

    /// The value as a string slice. `Null` maps to `""`; numbers are not
    /// rendered (use [`Value::to_text`] for an owned, always-successful
    /// rendering).
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            Value::Null => Some(""),
            _ => None,
        }
    }

    /// Render the value to owned text. `Null` becomes the empty string.
    pub fn to_text(&self) -> String {
        match self {
            Value::Null => String::new(),
            Value::Text(s) => s.clone(),
            Value::Int(i) => i.to_string(),
            Value::Float(x) => format_float(*x),
        }
    }

    /// Numeric interpretation: ints and floats directly, text via a lenient
    /// parse that strips currency symbols, thousands separators and
    /// surrounding junk (`"$ 1,299.00"` → `1299.0`).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(x) => Some(*x),
            Value::Text(s) => parse_lenient_f64(s),
            Value::Null => None,
        }
    }

    /// Integer interpretation (floats truncate only when exact).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Float(x) if x.fract() == 0.0 && x.abs() < i64::MAX as f64 => Some(*x as i64),
            Value::Text(s) => s.trim().parse().ok(),
            _ => None,
        }
    }

    /// Parse a raw CSV field into the most specific value type.
    ///
    /// Empty fields become `Null`; fields that parse exactly as `i64` become
    /// `Int`; fields that parse as `f64` become `Float`; everything else is
    /// `Text`. Leading zeros (`"007"`) and mixed content stay text so that
    /// identifiers survive round-trips.
    pub fn infer(raw: &str) -> Value {
        let trimmed = raw.trim();
        if trimmed.is_empty() {
            return Value::Null;
        }
        // Keep leading-zero "numbers" (ids like 007) textual.
        let looks_like_id = trimmed.len() > 1
            && trimmed.starts_with('0')
            && !trimmed.starts_with("0.")
            && !trimmed.starts_with("0,");
        if !looks_like_id {
            if let Ok(i) = trimmed.parse::<i64>() {
                return Value::Int(i);
            }
            if let Ok(x) = trimmed.parse::<f64>() {
                if x.is_finite() {
                    return Value::Float(x);
                }
            }
        }
        Value::Text(raw.to_string())
    }
}

/// Render a float without trailing noise: integers print without `.0` except
/// we keep one decimal to round-trip the type (`2.0`, `3.5`).
fn format_float(x: f64) -> String {
    if x.fract() == 0.0 && x.abs() < 1e15 {
        format!("{x:.1}")
    } else {
        format!("{x}")
    }
}

/// Lenient numeric parse used by [`Value::as_f64`]: strips `$`, `€`, `£`,
/// commas and whitespace, then parses the longest leading numeric run.
pub fn parse_lenient_f64(s: &str) -> Option<f64> {
    let cleaned: String = s
        .chars()
        .filter(|c| !matches!(c, '$' | '€' | '£' | ',' | ' ' | '\t'))
        .collect();
    let cleaned = cleaned.trim();
    if cleaned.is_empty() {
        return None;
    }
    if let Ok(x) = cleaned.parse::<f64>() {
        return x.is_finite().then_some(x);
    }
    // Longest leading numeric prefix, e.g. "1299.00USD".
    let mut end = 0;
    for (i, c) in cleaned.char_indices() {
        if c.is_ascii_digit() || c == '.' || (i == 0 && (c == '-' || c == '+')) {
            end = i + c.len_utf8();
        } else {
            break;
        }
    }
    if end == 0 {
        return None;
    }
    cleaned[..end].parse::<f64>().ok().filter(|x| x.is_finite())
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Text(a), Value::Text(b)) => a == b,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => a == b || (a.is_nan() && b.is_nan()),
            (Value::Int(a), Value::Float(b)) | (Value::Float(b), Value::Int(a)) => *a as f64 == *b,
            _ => false,
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, Value::Null) => Some(Ordering::Equal),
            (Value::Null, _) => Some(Ordering::Less),
            (_, Value::Null) => Some(Ordering::Greater),
            (Value::Text(a), Value::Text(b)) => a.partial_cmp(b),
            (a, b) => a.as_f64()?.partial_cmp(&b.as_f64()?),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_text())
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Text(s.to_string())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Text(s)
    }
}
impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}
impl From<f64> for Value {
    fn from(x: f64) -> Self {
        Value::Float(x)
    }
}
impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        v.map(Into::into).unwrap_or(Value::Null)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn infer_types() {
        assert_eq!(Value::infer(""), Value::Null);
        assert_eq!(Value::infer("   "), Value::Null);
        assert_eq!(Value::infer("42"), Value::Int(42));
        assert_eq!(Value::infer("-7"), Value::Int(-7));
        assert_eq!(Value::infer("3.25"), Value::Float(3.25));
        assert_eq!(Value::infer("hello"), Value::Text("hello".into()));
        // Leading-zero identifiers stay textual.
        assert_eq!(Value::infer("007"), Value::Text("007".into()));
        assert_eq!(Value::infer("0.5"), Value::Float(0.5));
    }

    #[test]
    fn lenient_numeric_parse() {
        assert_eq!(parse_lenient_f64("$ 1,299.00"), Some(1299.0));
        assert_eq!(parse_lenient_f64("1299.00USD"), Some(1299.0));
        assert_eq!(parse_lenient_f64("€45"), Some(45.0));
        assert_eq!(parse_lenient_f64("n/a"), None);
        assert_eq!(parse_lenient_f64(""), None);
        assert_eq!(parse_lenient_f64("-3.5"), Some(-3.5));
    }

    #[test]
    fn missing_detection() {
        assert!(Value::Null.is_missing());
        assert!(Value::Text("  ".into()).is_missing());
        assert!(!Value::Text("x".into()).is_missing());
        assert!(!Value::Int(0).is_missing());
    }

    #[test]
    fn cross_type_numeric_equality_and_order() {
        assert_eq!(Value::Int(2), Value::Float(2.0));
        assert!(Value::Int(1) < Value::Float(1.5));
        assert!(Value::Null < Value::Int(-100));
        assert!(Value::Text("a".into()) < Value::Text("b".into()));
    }

    #[test]
    fn to_text_rendering() {
        assert_eq!(Value::Null.to_text(), "");
        assert_eq!(Value::Int(5).to_text(), "5");
        assert_eq!(Value::Float(2.0).to_text(), "2.0");
        assert_eq!(Value::Float(2.5).to_text(), "2.5");
    }

    #[test]
    fn as_f64_accessors() {
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Text("$12".into()).as_f64(), Some(12.0));
        assert_eq!(Value::Null.as_f64(), None);
        assert_eq!(Value::Float(4.5).as_i64(), None);
        assert_eq!(Value::Float(4.0).as_i64(), Some(4));
    }
}
