//! Named, typed columns.

use crate::{Result, TableError};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Declared type of a column. Purely advisory — cells are [`crate::Value`]s
/// and may deviate (real EM data is dirty); the type records the *intended*
/// interpretation and drives CSV inference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum DataType {
    /// Free text (default).
    #[default]
    Text,
    /// Integer.
    Int,
    /// Floating point.
    Float,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            DataType::Text => "text",
            DataType::Int => "int",
            DataType::Float => "float",
        })
    }
}

/// One column: a name plus a declared [`DataType`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Field {
    /// Column name, unique within a schema.
    pub name: String,
    /// Declared type.
    pub dtype: DataType,
}

impl Field {
    /// A text field with the given name.
    pub fn text(name: impl Into<String>) -> Self {
        Field {
            name: name.into(),
            dtype: DataType::Text,
        }
    }
    /// An integer field with the given name.
    pub fn int(name: impl Into<String>) -> Self {
        Field {
            name: name.into(),
            dtype: DataType::Int,
        }
    }
    /// A float field with the given name.
    pub fn float(name: impl Into<String>) -> Self {
        Field {
            name: name.into(),
            dtype: DataType::Float,
        }
    }
}

/// An ordered set of [`Field`]s with O(1) lookup by name.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Schema {
    fields: Vec<Field>,
    #[serde(skip)]
    by_name: HashMap<String, usize>,
}

impl Schema {
    /// Build a schema from fields. Duplicate names keep the *first*
    /// occurrence in the lookup map (later columns remain addressable by
    /// index).
    pub fn new(fields: Vec<Field>) -> Self {
        let mut by_name = HashMap::with_capacity(fields.len());
        for (i, f) in fields.iter().enumerate() {
            by_name.entry(f.name.clone()).or_insert(i);
        }
        Schema { fields, by_name }
    }

    /// Convenience constructor: all-text columns from names.
    pub fn of_text(names: &[&str]) -> Self {
        Schema::new(names.iter().map(|n| Field::text(*n)).collect())
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True when the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// The fields in declaration order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Column names in declaration order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.fields.iter().map(|f| f.name.as_str())
    }

    /// Index of a column by name.
    pub fn index_of(&self, name: &str) -> Result<usize> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| TableError::ColumnNotFound(name.to_string()))
    }

    /// True when the schema contains a column with this name.
    pub fn contains(&self, name: &str) -> bool {
        self.by_name.contains_key(name)
    }

    /// The field at `idx`, if any.
    pub fn field(&self, idx: usize) -> Option<&Field> {
        self.fields.get(idx)
    }

    /// Rebuild the name→index map (needed after deserialization, which
    /// skips the derived map).
    pub fn rebuild_index(&mut self) {
        self.by_name.clear();
        for (i, f) in self.fields.iter().enumerate() {
            self.by_name.entry(f.name.clone()).or_insert(i);
        }
    }
}

impl PartialEq for Schema {
    fn eq(&self, other: &Self) -> bool {
        self.fields == other.fields
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_by_name() {
        let s = Schema::of_text(&["id", "name", "price"]);
        assert_eq!(s.index_of("name").unwrap(), 1);
        assert!(s.contains("price"));
        assert!(matches!(
            s.index_of("missing"),
            Err(TableError::ColumnNotFound(_))
        ));
    }

    #[test]
    fn duplicate_names_resolve_to_first() {
        let s = Schema::new(vec![Field::text("a"), Field::text("a"), Field::int("b")]);
        assert_eq!(s.index_of("a").unwrap(), 0);
        assert_eq!(s.index_of("b").unwrap(), 2);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn serde_round_trip_rebuilds_index() {
        let s = Schema::of_text(&["x", "y"]);
        let json = serde_json::to_string(&s).unwrap();
        let mut back: Schema = serde_json::from_str(&json).unwrap();
        back.rebuild_index();
        assert_eq!(back.index_of("y").unwrap(), 1);
        assert_eq!(s, back);
    }

    #[test]
    fn typed_constructors() {
        let s = Schema::new(vec![Field::int("id"), Field::float("price")]);
        assert_eq!(s.field(0).unwrap().dtype, DataType::Int);
        assert_eq!(s.field(1).unwrap().dtype, DataType::Float);
        assert_eq!(s.field(1).unwrap().dtype.to_string(), "float");
    }
}
