//! A small, from-scratch RFC-4180 CSV reader and writer.
//!
//! Benchmark EM datasets ship as CSV with quoted fields containing commas,
//! embedded quotes (`""`) and embedded newlines (product descriptions). The
//! parser handles all of those, accepts both `\n` and `\r\n` row
//! terminators, and reports 1-based line numbers on malformed input.
//!
//! Written in-tree (rather than pulling the `csv` crate) per the
//! reproduction's from-scratch dependency policy; see DESIGN.md §6.

use crate::{Result, TableError};

/// Parse CSV text into rows of raw string fields.
///
/// * Fields are separated by `,` and rows by `\n` or `\r\n`.
/// * A field starting with `"` is quoted: it may contain commas, newlines
///   and doubled quotes (`""` → `"`); it must end with a closing quote
///   followed by a separator or end-of-input.
/// * A trailing newline does not produce an empty final row.
pub fn parse(input: &str) -> Result<Vec<Vec<String>>> {
    let mut rows = Vec::new();
    let mut row: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut chars = input.chars().peekable();
    let mut line = 1usize;
    // Did the current row consume any input? (distinguishes a genuinely
    // empty trailing line from a final row ending without a newline)
    let mut row_started = false;

    while let Some(c) = chars.next() {
        row_started = true;
        match c {
            '"' if field.is_empty() => {
                // Quoted field.
                loop {
                    match chars.next() {
                        Some('"') => {
                            if chars.peek() == Some(&'"') {
                                chars.next();
                                field.push('"');
                            } else {
                                break; // closing quote
                            }
                        }
                        Some('\n') => {
                            line += 1;
                            field.push('\n');
                        }
                        Some(other) => field.push(other),
                        None => {
                            return Err(TableError::Csv {
                                line,
                                msg: "unterminated quoted field".into(),
                            })
                        }
                    }
                }
                // After the closing quote only a separator, newline or EOF
                // is legal.
                match chars.peek() {
                    Some(',') | Some('\n') | Some('\r') | None => {}
                    Some(other) => {
                        return Err(TableError::Csv {
                            line,
                            msg: format!("unexpected character {other:?} after closing quote"),
                        })
                    }
                }
            }
            '"' => {
                return Err(TableError::Csv {
                    line,
                    msg: "quote inside unquoted field".into(),
                })
            }
            ',' => {
                row.push(std::mem::take(&mut field));
            }
            '\r' => {
                // Only meaningful as part of CRLF; a bare \r inside a field
                // is kept verbatim.
                if chars.peek() == Some(&'\n') {
                    chars.next();
                    row.push(std::mem::take(&mut field));
                    rows.push(std::mem::take(&mut row));
                    line += 1;
                    row_started = false;
                } else {
                    field.push('\r');
                }
            }
            '\n' => {
                row.push(std::mem::take(&mut field));
                rows.push(std::mem::take(&mut row));
                line += 1;
                row_started = false;
            }
            other => field.push(other),
        }
    }
    if row_started {
        row.push(field);
        rows.push(row);
    }
    Ok(rows)
}

/// Append one CSV row (with trailing `\n`) to `out`, quoting fields that
/// contain separators, quotes or newlines.
pub fn write_row<I, S>(out: &mut String, fields: I)
where
    I: IntoIterator<Item = S>,
    S: AsRef<str>,
{
    let mut first = true;
    for f in fields {
        if !first {
            out.push(',');
        }
        first = false;
        write_field(out, f.as_ref());
    }
    out.push('\n');
}

fn write_field(out: &mut String, field: &str) {
    let needs_quoting = field.chars().any(|c| matches!(c, ',' | '"' | '\n' | '\r'));
    if !needs_quoting {
        out.push_str(field);
        return;
    }
    out.push('"');
    for c in field.chars() {
        if c == '"' {
            out.push('"');
        }
        out.push(c);
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn simple_rows() {
        let rows = parse("a,b,c\n1,2,3\n").unwrap();
        assert_eq!(rows, vec![vec!["a", "b", "c"], vec!["1", "2", "3"]]);
    }

    #[test]
    fn no_trailing_newline() {
        let rows = parse("a,b\n1,2").unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1], vec!["1", "2"]);
    }

    #[test]
    fn quoted_fields() {
        let rows = parse("name,desc\n\"TV, 40 inch\",\"says \"\"best\"\"\"\n").unwrap();
        assert_eq!(rows[1], vec!["TV, 40 inch", "says \"best\""]);
    }

    #[test]
    fn embedded_newline() {
        let rows = parse("a\n\"line1\nline2\"\n").unwrap();
        assert_eq!(rows[1], vec!["line1\nline2"]);
    }

    #[test]
    fn crlf_rows() {
        let rows = parse("a,b\r\n1,2\r\n").unwrap();
        assert_eq!(rows, vec![vec!["a", "b"], vec!["1", "2"]]);
    }

    #[test]
    fn empty_fields() {
        let rows = parse("a,,c\n,,\n").unwrap();
        assert_eq!(rows[0], vec!["a", "", "c"]);
        assert_eq!(rows[1], vec!["", "", ""]);
    }

    #[test]
    fn unterminated_quote_errors() {
        let err = parse("a\n\"oops\n").unwrap_err();
        assert!(err.to_string().contains("unterminated"));
    }

    #[test]
    fn junk_after_closing_quote_errors() {
        assert!(parse("\"ab\"c,d\n").is_err());
    }

    #[test]
    fn quote_inside_unquoted_field_errors() {
        assert!(parse("ab\"c\n").is_err());
    }

    #[test]
    fn writer_quotes_when_needed() {
        let mut out = String::new();
        write_row(&mut out, ["plain", "a,b", "q\"uote", "nl\nnl"]);
        assert_eq!(out, "plain,\"a,b\",\"q\"\"uote\",\"nl\nnl\"\n");
    }

    proptest! {
        /// Any grid of arbitrary unicode strings must survive a
        /// write→parse round trip exactly.
        #[test]
        fn round_trip(grid in proptest::collection::vec(
            proptest::collection::vec(".{0,12}", 1..5), 1..6)
        ) {
            // Normalize: all rows same width as the first.
            let width = grid[0].len();
            let grid: Vec<Vec<String>> = grid
                .into_iter()
                .map(|mut r| { r.resize(width, String::new()); r })
                .collect();
            let mut text = String::new();
            for row in &grid {
                write_row(&mut text, row.iter());
            }
            let parsed = parse(&text).unwrap();
            // A row of all-empty fields that is the last row is still
            // emitted as "\n" and parses back; equality must hold exactly.
            prop_assert_eq!(parsed, grid);
        }
    }
}
