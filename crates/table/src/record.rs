//! Record identifiers and borrowed row views.

use crate::{Schema, Value};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of a row within one table.
///
/// `u32` bounds tables at ~4.3 billion rows — far beyond the candidate-set
/// sizes EM development works with — while halving the footprint of the
/// candidate pair lists that dominate memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RecordId(pub u32);

impl RecordId {
    /// The row index as `usize`.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for RecordId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

impl From<u32> for RecordId {
    fn from(v: u32) -> Self {
        RecordId(v)
    }
}

/// A borrowed view of one row together with its schema.
///
/// This is what labeling functions see for each side of a tuple pair:
/// attribute access by name, plus whole-row text rendering for embedding.
#[derive(Debug, Clone, Copy)]
pub struct Record<'a> {
    pub(crate) schema: &'a Schema,
    pub(crate) values: &'a [Value],
    pub(crate) id: RecordId,
}

impl<'a> Record<'a> {
    /// Construct a view (used by [`crate::Table`]).
    pub fn new(schema: &'a Schema, values: &'a [Value], id: RecordId) -> Self {
        Record { schema, values, id }
    }

    /// This row's id within its table.
    pub fn id(&self) -> RecordId {
        self.id
    }

    /// The schema of the owning table.
    pub fn schema(&self) -> &'a Schema {
        self.schema
    }

    /// All cell values in column order.
    pub fn values(&self) -> &'a [Value] {
        self.values
    }

    /// Cell by column name; `Value::Null` for unknown columns.
    ///
    /// LFs frequently probe optional attributes ("description" exists in
    /// abt but not in every dataset), so a missing column is *data*
    /// missingness, not a programming error. Use [`Record::try_get`] for
    /// the strict variant.
    pub fn get(&self, column: &str) -> &'a Value {
        static NULL: Value = Value::Null;
        match self.schema.index_of(column) {
            Ok(i) => self.values.get(i).unwrap_or(&NULL),
            Err(_) => &NULL,
        }
    }

    /// Cell by column name, erroring on unknown columns.
    pub fn try_get(&self, column: &str) -> crate::Result<&'a Value> {
        let i = self.schema.index_of(column)?;
        Ok(self.values.get(i).unwrap_or(&Value::Null))
    }

    /// Cell text by column name (empty string for null/missing column).
    pub fn text(&self, column: &str) -> String {
        self.get(column).to_text()
    }

    /// Lenient numeric read of a column.
    pub fn number(&self, column: &str) -> Option<f64> {
        self.get(column).as_f64()
    }

    /// Concatenate every non-null attribute into one string, space
    /// separated, in column order. This is the "sentence" the blocking
    /// embedder consumes (the paper embeds whole tuples with
    /// sentence-BERT).
    pub fn full_text(&self) -> String {
        let mut out = String::new();
        for v in self.values {
            if v.is_missing() {
                continue;
            }
            if !out.is_empty() {
                out.push(' ');
            }
            out.push_str(&v.to_text());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Field;

    fn sample() -> (Schema, Vec<Value>) {
        let schema = Schema::new(vec![
            Field::int("id"),
            Field::text("name"),
            Field::float("price"),
        ]);
        let row = vec![Value::Int(7), Value::from("Sony TV"), Value::Float(499.0)];
        (schema, row)
    }

    #[test]
    fn get_by_name() {
        let (schema, row) = sample();
        let r = Record::new(&schema, &row, RecordId(0));
        assert_eq!(r.text("name"), "Sony TV");
        assert_eq!(r.number("price"), Some(499.0));
        assert_eq!(r.get("nope"), &Value::Null);
        assert!(r.try_get("nope").is_err());
        assert_eq!(r.id().idx(), 0);
    }

    #[test]
    fn full_text_skips_missing() {
        let schema = Schema::of_text(&["a", "b", "c"]);
        let row = vec![Value::from("x"), Value::Null, Value::from("z")];
        let r = Record::new(&schema, &row, RecordId(1));
        assert_eq!(r.full_text(), "x z");
    }

    #[test]
    fn record_id_display_and_conv() {
        let id: RecordId = 42u32.into();
        assert_eq!(id.to_string(), "#42");
        assert_eq!(id.idx(), 42);
    }
}
