//! Row-oriented relations.

use crate::{csv, Record, RecordId, Result, Schema, TableError, Value};
use serde::{Deserialize, Serialize};

/// A named, row-oriented relation.
///
/// Rows are stored contiguously (`Vec<Value>` of length `rows × cols`) to
/// keep scans cache-friendly; a [`Record`] is a borrowed slice view.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table {
    name: String,
    schema: Schema,
    /// Flattened row-major cell storage, `len = n_rows * schema.len()`.
    cells: Vec<Value>,
}

impl Table {
    /// An empty table with the given name and schema.
    pub fn new(name: impl Into<String>, schema: Schema) -> Self {
        Table {
            name: name.into(),
            schema,
            cells: Vec::new(),
        }
    }

    /// Table name (e.g. `"abt"`, `"buy"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        if self.schema.is_empty() {
            0
        } else {
            self.cells.len() / self.schema.len()
        }
    }

    /// True when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Append a row. Errors when the arity differs from the schema.
    pub fn push_row(&mut self, row: Vec<Value>) -> Result<RecordId> {
        if row.len() != self.schema.len() {
            return Err(TableError::ArityMismatch {
                expected: self.schema.len(),
                got: row.len(),
            });
        }
        let id = RecordId(self.len() as u32);
        self.cells.extend(row);
        Ok(id)
    }

    /// Append a row of anything convertible to [`Value`].
    pub fn push<T: Into<Value>>(&mut self, row: Vec<T>) -> Result<RecordId> {
        self.push_row(row.into_iter().map(Into::into).collect())
    }

    /// The row at `id` as a borrowed [`Record`] view.
    pub fn record(&self, id: RecordId) -> Result<Record<'_>> {
        let n = self.len();
        if id.idx() >= n {
            return Err(TableError::RowOutOfBounds {
                row: id.idx(),
                len: n,
            });
        }
        let w = self.schema.len();
        let start = id.idx() * w;
        Ok(Record::new(&self.schema, &self.cells[start..start + w], id))
    }

    /// Iterate over all rows as [`Record`] views.
    pub fn records(&self) -> impl Iterator<Item = Record<'_>> + '_ {
        let w = self.schema.len().max(1);
        self.cells
            .chunks(w)
            .enumerate()
            .map(move |(i, chunk)| Record::new(&self.schema, chunk, RecordId(i as u32)))
    }

    /// One cell, by row id and column name.
    pub fn cell(&self, id: RecordId, column: &str) -> Result<&Value> {
        let col = self.schema.index_of(column)?;
        let n = self.len();
        if id.idx() >= n {
            return Err(TableError::RowOutOfBounds {
                row: id.idx(),
                len: n,
            });
        }
        Ok(&self.cells[id.idx() * self.schema.len() + col])
    }

    /// Replace one cell.
    pub fn set_cell(&mut self, id: RecordId, column: &str, value: Value) -> Result<()> {
        let col = self.schema.index_of(column)?;
        let n = self.len();
        if id.idx() >= n {
            return Err(TableError::RowOutOfBounds {
                row: id.idx(),
                len: n,
            });
        }
        let w = self.schema.len();
        self.cells[id.idx() * w + col] = value;
        Ok(())
    }

    /// Parse a table from CSV text. The first line is the header; cell types
    /// are inferred with [`Value::infer`] when `infer_types`, otherwise all
    /// cells stay text.
    pub fn from_csv_str(name: impl Into<String>, input: &str, infer_types: bool) -> Result<Table> {
        let rows = csv::parse(input)?;
        let mut it = rows.into_iter();
        let header = it.next().ok_or(TableError::Csv {
            line: 1,
            msg: "empty input: missing header row".into(),
        })?;
        let schema = Schema::of_text(&header.iter().map(String::as_str).collect::<Vec<_>>());
        let mut table = Table::new(name, schema);
        for (i, raw) in it.enumerate() {
            if raw.len() != table.schema.len() {
                return Err(TableError::Csv {
                    line: i + 2,
                    msg: format!(
                        "expected {} fields, found {}",
                        table.schema.len(),
                        raw.len()
                    ),
                });
            }
            let row: Vec<Value> = raw
                .into_iter()
                .map(|s| {
                    if infer_types {
                        Value::infer(&s)
                    } else if s.is_empty() {
                        Value::Null
                    } else {
                        Value::Text(s)
                    }
                })
                .collect();
            table.push_row(row)?;
        }
        Ok(table)
    }

    /// Serialize the table to CSV text (header + rows, RFC-4180 quoting).
    pub fn to_csv_string(&self) -> String {
        let mut out = String::new();
        csv::write_row(&mut out, self.schema.names());
        for rec in self.records() {
            csv::write_row(&mut out, rec.values().iter().map(|v| v.to_text()));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Field;

    fn products() -> Table {
        let mut t = Table::new(
            "products",
            Schema::new(vec![
                Field::int("id"),
                Field::text("name"),
                Field::float("price"),
            ]),
        );
        t.push_row(vec![
            Value::Int(1),
            Value::from("Sony Bravia 40"),
            Value::Float(499.0),
        ])
        .unwrap();
        t.push_row(vec![Value::Int(2), Value::from("LG OLED 55"), Value::Null])
            .unwrap();
        t
    }

    #[test]
    fn push_and_read() {
        let t = products();
        assert_eq!(t.len(), 2);
        let r = t.record(RecordId(0)).unwrap();
        assert_eq!(r.text("name"), "Sony Bravia 40");
        assert_eq!(t.cell(RecordId(1), "price").unwrap(), &Value::Null);
    }

    #[test]
    fn arity_checked() {
        let mut t = products();
        let err = t.push_row(vec![Value::Int(3)]).unwrap_err();
        assert!(matches!(
            err,
            TableError::ArityMismatch {
                expected: 3,
                got: 1
            }
        ));
    }

    #[test]
    fn out_of_bounds_checked() {
        let t = products();
        assert!(t.record(RecordId(2)).is_err());
        assert!(t.cell(RecordId(9), "name").is_err());
    }

    #[test]
    fn records_iterator_yields_all() {
        let t = products();
        let names: Vec<String> = t.records().map(|r| r.text("name")).collect();
        assert_eq!(names, vec!["Sony Bravia 40", "LG OLED 55"]);
        let ids: Vec<u32> = t.records().map(|r| r.id().0).collect();
        assert_eq!(ids, vec![0, 1]);
    }

    #[test]
    fn csv_round_trip() {
        let t = products();
        let csv_text = t.to_csv_string();
        let back = Table::from_csv_str("products", &csv_text, true).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.cell(RecordId(0), "id").unwrap(), &Value::Int(1));
        assert_eq!(
            back.cell(RecordId(0), "price").unwrap(),
            &Value::Float(499.0)
        );
        assert_eq!(back.cell(RecordId(1), "price").unwrap(), &Value::Null);
    }

    #[test]
    fn csv_ragged_row_errors_with_line_number() {
        let err = Table::from_csv_str("t", "a,b\n1,2\n3\n", true).unwrap_err();
        match err {
            TableError::Csv { line, .. } => assert_eq!(line, 3),
            other => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    fn set_cell_mutates() {
        let mut t = products();
        t.set_cell(RecordId(1), "price", Value::Float(899.0))
            .unwrap();
        assert_eq!(t.cell(RecordId(1), "price").unwrap(), &Value::Float(899.0));
    }
}
