//! Relational table substrate for the Panda entity-matching system.
//!
//! Entity matching operates over *two* relations (a "left" and a "right"
//! table) plus a set of candidate tuple pairs produced by blocking. This
//! crate provides the data model everything else builds on:
//!
//! * [`Value`] — a dynamically typed cell value (null / text / int / float),
//! * [`Schema`] / [`Field`] — named, typed columns,
//! * [`Table`] — a row-oriented relation with O(1) column lookup,
//! * [`csv`] — a from-scratch RFC-4180 CSV reader/writer (no external deps),
//! * [`TablePair`] / [`MatchSet`] — the two input relations of an EM task
//!   together with optional ground truth,
//! * [`PairRef`] — a borrowed view of one candidate tuple pair, the value
//!   labeling functions receive.
//!
//! The design favours simplicity and cache-friendly row storage over
//! columnar cleverness: EM candidate sets are small relative to analytic
//! workloads (typically 10⁴–10⁷ pairs), and labeling functions access whole
//! tuples, not single columns.

pub mod csv;
pub mod pair;
pub mod record;
pub mod schema;
pub mod table;
pub mod value;

pub use pair::{CandidatePair, CandidateSet, MatchSet, PairRef, Side, TablePair};
pub use record::{Record, RecordId};
pub use schema::{DataType, Field, Schema};
pub use table::Table;
pub use value::Value;

use std::fmt;

/// Errors produced by the table substrate.
#[derive(Debug, Clone, PartialEq)]
pub enum TableError {
    /// A column name was not found in the schema.
    ColumnNotFound(String),
    /// A row had a different arity than the schema.
    ArityMismatch { expected: usize, got: usize },
    /// CSV input was malformed.
    Csv { line: usize, msg: String },
    /// A record id was out of bounds for the table.
    RowOutOfBounds { row: usize, len: usize },
}

impl fmt::Display for TableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableError::ColumnNotFound(name) => write!(f, "column not found: {name:?}"),
            TableError::ArityMismatch { expected, got } => {
                write!(
                    f,
                    "row arity mismatch: schema has {expected} columns, row has {got}"
                )
            }
            TableError::Csv { line, msg } => write!(f, "CSV error at line {line}: {msg}"),
            TableError::RowOutOfBounds { row, len } => {
                write!(f, "row {row} out of bounds for table of length {len}")
            }
        }
    }
}

impl std::error::Error for TableError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, TableError>;
