//! Table pairs, candidate pairs, and ground-truth match sets.

use crate::{Record, RecordId, Result, Table};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Which input table a record belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Side {
    /// The left table (conventionally the duplicate-free reference table —
    /// the property Auto-FuzzyJoin exploits).
    Left,
    /// The right table.
    Right,
}

/// One candidate tuple pair: a row of the left table and a row of the right
/// table that blocking deemed worth comparing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CandidatePair {
    /// Row in the left table.
    pub left: RecordId,
    /// Row in the right table.
    pub right: RecordId,
}

impl CandidatePair {
    /// Construct from raw indices.
    pub fn new(left: u32, right: u32) -> Self {
        CandidatePair {
            left: RecordId(left),
            right: RecordId(right),
        }
    }
}

/// The set of ground-truth matching pairs of an EM task.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MatchSet {
    pairs: HashSet<CandidatePair>,
}

impl MatchSet {
    /// An empty match set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `(left, right)` as a true match.
    pub fn insert(&mut self, left: RecordId, right: RecordId) -> bool {
        self.pairs.insert(CandidatePair { left, right })
    }

    /// Is this pair a true match?
    pub fn contains(&self, pair: &CandidatePair) -> bool {
        self.pairs.contains(pair)
    }

    /// Number of true matches.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True when there are no matches.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Iterate over all true matches.
    pub fn iter(&self) -> impl Iterator<Item = &CandidatePair> {
        self.pairs.iter()
    }
}

impl FromIterator<CandidatePair> for MatchSet {
    fn from_iter<T: IntoIterator<Item = CandidatePair>>(iter: T) -> Self {
        MatchSet {
            pairs: iter.into_iter().collect(),
        }
    }
}

/// An ordered list of candidate pairs (the output of blocking; the unit of
/// work for LF application). Order is stable so that label matrices index
/// by position.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CandidateSet {
    pairs: Vec<CandidatePair>,
}

impl CandidateSet {
    /// An empty candidate set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from pairs, deduplicating while preserving first-seen order.
    pub fn from_pairs(pairs: impl IntoIterator<Item = CandidatePair>) -> Self {
        let mut seen = HashSet::new();
        let mut out = Vec::new();
        for p in pairs {
            if seen.insert(p) {
                out.push(p);
            }
        }
        CandidateSet { pairs: out }
    }

    /// Number of candidate pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// The pair at position `i`.
    pub fn get(&self, i: usize) -> Option<CandidatePair> {
        self.pairs.get(i).copied()
    }

    /// All pairs in order.
    pub fn pairs(&self) -> &[CandidatePair] {
        &self.pairs
    }

    /// Iterate over `(position, pair)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, CandidatePair)> + '_ {
        self.pairs.iter().copied().enumerate()
    }

    /// Append a pair (no dedup — callers that need dedup should use
    /// [`CandidateSet::from_pairs`]).
    pub fn push(&mut self, pair: CandidatePair) {
        self.pairs.push(pair);
    }
}

/// The two input relations of an EM task, with optional ground truth.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TablePair {
    /// Left input table.
    pub left: Table,
    /// Right input table.
    pub right: Table,
    /// Ground-truth matches, when known (benchmark datasets).
    pub gold: Option<MatchSet>,
}

impl TablePair {
    /// Bundle two tables without ground truth.
    pub fn new(left: Table, right: Table) -> Self {
        TablePair {
            left,
            right,
            gold: None,
        }
    }

    /// Bundle two tables with ground truth.
    pub fn with_gold(left: Table, right: Table, gold: MatchSet) -> Self {
        TablePair {
            left,
            right,
            gold: Some(gold),
        }
    }

    /// Borrow one candidate pair as a [`PairRef`] (what LFs receive).
    pub fn pair_ref(&self, pair: CandidatePair) -> Result<PairRef<'_>> {
        Ok(PairRef {
            left: self.left.record(pair.left)?,
            right: self.right.record(pair.right)?,
            pair,
        })
    }

    /// Is `pair` a gold match? `None` when no ground truth is attached.
    pub fn is_gold_match(&self, pair: CandidatePair) -> Option<bool> {
        self.gold.as_ref().map(|g| g.contains(&pair))
    }

    /// The full cross product as a candidate set — only sensible for small
    /// inputs and for measuring blocking recall.
    pub fn cross_product(&self) -> CandidateSet {
        let mut pairs = Vec::with_capacity(self.left.len() * self.right.len());
        for l in 0..self.left.len() as u32 {
            for r in 0..self.right.len() as u32 {
                pairs.push(CandidatePair::new(l, r));
            }
        }
        CandidateSet { pairs }
    }
}

/// A borrowed view of one candidate tuple pair — the argument every
/// labeling function receives.
#[derive(Debug, Clone, Copy)]
pub struct PairRef<'a> {
    /// The left record.
    pub left: Record<'a>,
    /// The right record.
    pub right: Record<'a>,
    /// The identifying pair.
    pub pair: CandidatePair,
}

impl<'a> PairRef<'a> {
    /// Text of `column` from both sides: `(left_text, right_text)`.
    pub fn texts(&self, column: &str) -> (String, String) {
        (self.left.text(column), self.right.text(column))
    }

    /// Numbers of `column` from both sides when both parse.
    pub fn numbers(&self, column: &str) -> Option<(f64, f64)> {
        Some((self.left.number(column)?, self.right.number(column)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Schema;

    fn tiny_pair() -> TablePair {
        let mut left = Table::new("abt", Schema::of_text(&["name", "price"]));
        left.push(vec!["sony bravia 40", "499"]).unwrap();
        left.push(vec!["lg oled 55", "1299"]).unwrap();
        let mut right = Table::new("buy", Schema::of_text(&["name", "price"]));
        right.push(vec!["sony bravia kdl 40", "489"]).unwrap();
        let mut gold = MatchSet::new();
        gold.insert(RecordId(0), RecordId(0));
        TablePair::with_gold(left, right, gold)
    }

    #[test]
    fn pair_ref_access() {
        let tp = tiny_pair();
        let p = tp.pair_ref(CandidatePair::new(0, 0)).unwrap();
        let (l, r) = p.texts("name");
        assert!(l.starts_with("sony"));
        assert!(r.contains("kdl"));
        assert_eq!(p.numbers("price"), Some((499.0, 489.0)));
    }

    #[test]
    fn gold_lookup() {
        let tp = tiny_pair();
        assert_eq!(tp.is_gold_match(CandidatePair::new(0, 0)), Some(true));
        assert_eq!(tp.is_gold_match(CandidatePair::new(1, 0)), Some(false));
    }

    #[test]
    fn cross_product_size() {
        let tp = tiny_pair();
        assert_eq!(tp.cross_product().len(), 2);
    }

    #[test]
    fn candidate_set_dedups_preserving_order() {
        let cs = CandidateSet::from_pairs([
            CandidatePair::new(1, 0),
            CandidatePair::new(0, 0),
            CandidatePair::new(1, 0),
        ]);
        assert_eq!(cs.len(), 2);
        assert_eq!(cs.get(0), Some(CandidatePair::new(1, 0)));
        assert_eq!(cs.get(1), Some(CandidatePair::new(0, 0)));
    }

    #[test]
    fn pair_ref_out_of_bounds() {
        let tp = tiny_pair();
        assert!(tp.pair_ref(CandidatePair::new(0, 5)).is_err());
    }

    #[test]
    fn match_set_basics() {
        let mut m = MatchSet::new();
        assert!(m.is_empty());
        assert!(m.insert(RecordId(0), RecordId(1)));
        assert!(!m.insert(RecordId(0), RecordId(1)));
        assert_eq!(m.len(), 1);
        assert_eq!(m.iter().count(), 1);
    }
}
