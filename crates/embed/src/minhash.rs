//! MinHash LSH — the classic Jaccard-based blocking alternative.
//!
//! Where [`crate::lsh::HyperplaneLsh`] approximates *cosine* similarity of
//! embedding vectors, MinHash approximates *Jaccard* similarity of token
//! sets directly: `P[min-hash collision] = J(A, B)` per hash function.
//! Banding then turns the per-hash collision probability into the usual
//! S-curve. Included both as an E5 baseline and because token-set LSH is
//! what many production blocking stacks actually run.

use crate::hashing::fnv1a_seeded;
use panda_table::{CandidatePair, CandidateSet, TablePair};
use panda_text::preprocess::{apply_pipeline, standard_pipeline};
use panda_text::tokenize::Tokenizer;
use std::collections::{HashMap, HashSet};

/// A MinHash signature generator.
#[derive(Debug, Clone)]
pub struct MinHasher {
    n_hashes: usize,
    seed: u64,
}

impl MinHasher {
    /// `n_hashes` independent permutations (seeded hash families).
    pub fn new(n_hashes: usize, seed: u64) -> Self {
        MinHasher {
            n_hashes: n_hashes.max(1),
            seed,
        }
    }

    /// Number of hash functions.
    pub fn n_hashes(&self) -> usize {
        self.n_hashes
    }

    /// The signature of a token set. Empty input → all-`u64::MAX`
    /// signature (collides only with other empty sets in practice).
    pub fn signature<S: AsRef<str>>(&self, tokens: &[S]) -> Vec<u64> {
        let mut sig = vec![u64::MAX; self.n_hashes];
        for t in tokens {
            let bytes = t.as_ref().as_bytes();
            for (i, slot) in sig.iter_mut().enumerate() {
                let h = fnv1a_seeded(bytes, self.seed ^ (i as u64).wrapping_mul(0x9e37));
                if h < *slot {
                    *slot = h;
                }
            }
        }
        sig
    }

    /// Estimate Jaccard similarity from two signatures (fraction of
    /// agreeing slots).
    pub fn estimate_jaccard(a: &[u64], b: &[u64]) -> f64 {
        assert_eq!(a.len(), b.len(), "signature length mismatch");
        if a.is_empty() {
            return 0.0;
        }
        let agree = a.iter().zip(b).filter(|(x, y)| x == y).count();
        agree as f64 / a.len() as f64
    }
}

/// MinHash-LSH blocking over the cleaned full-text word tokens.
#[derive(Debug, Clone)]
pub struct MinHashBlocker {
    hasher: MinHasher,
    bands: usize,
    rows_per_band: usize,
    /// Drop candidates whose signature-estimated Jaccard is below this.
    pub min_jaccard: f64,
}

impl MinHashBlocker {
    /// Defaults: 128 hashes as 32 bands × 4 rows, Jaccard floor 0.1.
    pub fn new(seed: u64) -> Self {
        MinHashBlocker {
            hasher: MinHasher::new(128, seed),
            bands: 32,
            rows_per_band: 4,
            min_jaccard: 0.1,
        }
    }

    fn tokens_of(text: String) -> Vec<String> {
        let cleaned = apply_pipeline(&standard_pipeline(), &text);
        Tokenizer::Whitespace.tokens(&cleaned)
    }

    fn band_keys(&self, sig: &[u64]) -> Vec<u64> {
        (0..self.bands)
            .map(|b| {
                let start = b * self.rows_per_band;
                let mut key = 0xcbf29ce484222325u64;
                for &v in &sig[start..(start + self.rows_per_band).min(sig.len())] {
                    key ^= v;
                    key = key.wrapping_mul(0x100000001b3);
                }
                key
            })
            .collect()
    }
}

impl crate::blocking::Blocker for MinHashBlocker {
    fn candidates(&self, tables: &TablePair) -> CandidateSet {
        let lsigs: Vec<Vec<u64>> = tables
            .left
            .records()
            .map(|r| {
                self.hasher
                    .signature(&Self::tokens_of(crate::blocking::blocking_text(&r)))
            })
            .collect();
        let rsigs: Vec<Vec<u64>> = tables
            .right
            .records()
            .map(|r| {
                self.hasher
                    .signature(&Self::tokens_of(crate::blocking::blocking_text(&r)))
            })
            .collect();

        let mut buckets: HashMap<(usize, u64), Vec<u32>> = HashMap::new();
        for (rid, sig) in rsigs.iter().enumerate() {
            for (band, key) in self.band_keys(sig).into_iter().enumerate() {
                buckets.entry((band, key)).or_default().push(rid as u32);
            }
        }
        let mut seen: HashSet<CandidatePair> = HashSet::new();
        let mut pairs = Vec::new();
        for (lid, sig) in lsigs.iter().enumerate() {
            for (band, key) in self.band_keys(sig).into_iter().enumerate() {
                let Some(rids) = buckets.get(&(band, key)) else {
                    continue;
                };
                for &rid in rids {
                    let pair = CandidatePair::new(lid as u32, rid);
                    if !seen.insert(pair) {
                        continue;
                    }
                    if MinHasher::estimate_jaccard(sig, &rsigs[rid as usize]) >= self.min_jaccard {
                        pairs.push(pair);
                    }
                }
            }
        }
        pairs.sort();
        CandidateSet::from_pairs(pairs)
    }

    fn name(&self) -> &'static str {
        "minhash"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use panda_text::sim::jaccard;
    use proptest::prelude::*;

    #[test]
    fn identical_sets_identical_signatures() {
        let mh = MinHasher::new(64, 3);
        let toks = ["sony", "bravia", "tv"];
        assert_eq!(mh.signature(&toks), mh.signature(&toks));
        assert_eq!(
            MinHasher::estimate_jaccard(&mh.signature(&toks), &mh.signature(&toks)),
            1.0
        );
    }

    #[test]
    fn disjoint_sets_rarely_agree() {
        let mh = MinHasher::new(128, 5);
        let a = mh.signature(&["alpha", "beta", "gamma"]);
        let b = mh.signature(&["delta", "epsilon", "zeta"]);
        assert!(MinHasher::estimate_jaccard(&a, &b) < 0.1);
    }

    #[test]
    fn blocker_finds_matches_on_a_tiny_task() {
        use crate::blocking::{blocking_stats, Blocker};
        use panda_table::{MatchSet, RecordId, Schema, Table};
        let schema = Schema::of_text(&["name"]);
        let mut l = Table::new("l", schema.clone());
        let mut r = Table::new("r", schema);
        l.push(vec!["sony bravia kdl 40 lcd tv black"]).unwrap();
        l.push(vec!["apple ipod nano 8gb silver player"]).unwrap();
        r.push(vec!["sony bravia kdl40 lcd tv (black)"]).unwrap();
        r.push(vec!["nikon coolpix camera 10mp red"]).unwrap();
        let mut gold = MatchSet::new();
        gold.insert(RecordId(0), RecordId(0));
        let task = panda_table::TablePair::with_gold(l, r, gold);
        let cands = MinHashBlocker::new(1).candidates(&task);
        let stats = blocking_stats(&task, &cands);
        assert_eq!(stats.matches_covered, 1, "the true match collides");
    }

    proptest! {
        /// The signature-based Jaccard estimate approximates the true
        /// Jaccard: with 256 hashes, |estimate − truth| is small in
        /// expectation (bounded loosely here to keep the test stable).
        #[test]
        fn estimate_tracks_true_jaccard(
            a in proptest::collection::hash_set("[a-e]{1,2}", 1..10),
            b in proptest::collection::hash_set("[a-e]{1,2}", 1..10),
        ) {
            let av: Vec<String> = a.into_iter().collect();
            let bv: Vec<String> = b.into_iter().collect();
            let truth = jaccard(&av, &bv);
            let mh = MinHasher::new(256, 9);
            let est = MinHasher::estimate_jaccard(&mh.signature(&av), &mh.signature(&bv));
            prop_assert!(
                (est - truth).abs() < 0.25,
                "estimate {est:.3} vs truth {truth:.3}"
            );
        }
    }
}
