//! Blocking strategies: embedding-LSH (the paper's), plus token blocking
//! and sorted neighbourhood as baselines for experiment E5.

use crate::embedding::{cosine, TupleEmbedder};
use crate::lsh::HyperplaneLsh;
use panda_table::{CandidatePair, CandidateSet, Record, TablePair};
use panda_text::preprocess::{apply_pipeline, standard_pipeline};
use panda_text::tokenize::Tokenizer;
use std::collections::{HashMap, HashSet};

/// The text blocking keys are built from: every non-missing attribute
/// *except* id-like columns. Surrogate ids are unique per row and often
/// systematically different between tables (`10042` vs `58731`), so
/// including them poisons sort keys and adds pure noise to token sets.
pub fn blocking_text(rec: &Record<'_>) -> String {
    let mut out = String::new();
    for (field, value) in rec.schema().fields().iter().zip(rec.values()) {
        let lower = field.name.to_lowercase();
        if lower == "id" || lower.ends_with("_id") || value.is_missing() {
            continue;
        }
        if !out.is_empty() {
            out.push(' ');
        }
        out.push_str(&value.to_text());
    }
    out
}

/// A blocking strategy: reduce `left × right` to a candidate set.
pub trait Blocker {
    /// Produce the candidate pairs for an EM task.
    fn candidates(&self, tables: &TablePair) -> CandidateSet;

    /// Human-readable name for reports.
    fn name(&self) -> &'static str;
}

// ---------------------------------------------------------------------------
// Embedding + LSH (the paper's scheme)
// ---------------------------------------------------------------------------

/// The paper's blocking pipeline: embed every tuple, band-hash the
/// embeddings, and emit all left-right collisions. An optional cosine
/// floor prunes accidental collisions; an optional per-record cap bounds
/// worst-case candidate counts.
#[derive(Debug, Clone)]
pub struct EmbeddingLshBlocker {
    embedder: TupleEmbedder,
    bands: usize,
    bits_per_band: usize,
    seed: u64,
    /// Drop collisions whose embedding cosine falls below this.
    pub min_cosine: f32,
    /// Keep at most this many candidates per left record (by cosine).
    pub max_per_record: Option<usize>,
}

impl EmbeddingLshBlocker {
    /// Reasonable defaults: 256-dim embeddings, 24 bands × 6 bits, cosine
    /// floor 0.25. Wide-band/low-bit LSH over-generates collisions on
    /// purpose — the exact-cosine floor then prunes them — because recall
    /// lost at the LSH stage is unrecoverable while spurious collisions
    /// only cost a dot product each.
    pub fn new(seed: u64) -> Self {
        EmbeddingLshBlocker {
            embedder: TupleEmbedder::new(256),
            bands: 24,
            bits_per_band: 6,
            seed,
            min_cosine: 0.25,
            max_per_record: Some(32),
        }
    }

    /// Override LSH shape.
    pub fn with_lsh(mut self, bands: usize, bits_per_band: usize) -> Self {
        self.bands = bands;
        self.bits_per_band = bits_per_band;
        self
    }

    /// Override the embedder.
    pub fn with_embedder(mut self, embedder: TupleEmbedder) -> Self {
        self.embedder = embedder;
        self
    }

    /// Embed all records of both tables (exposed so the smart sampler can
    /// reuse the vectors instead of re-embedding). Records are embedded in
    /// parallel on the shared executor; output order is record order.
    pub fn embed_tables(&self, tables: &TablePair) -> (Vec<Vec<f32>>, Vec<Vec<f32>>) {
        let _span = panda_obs::span("blocking.embed_tables");
        let embed_all = |table: &panda_table::Table| -> Vec<Vec<f32>> {
            panda_exec::par_map_range(table.len(), |i| {
                let rec = table
                    .record(panda_table::RecordId(i as u32))
                    .expect("row index in range");
                self.embedder.embed_record(&rec)
            })
        };
        (embed_all(&tables.left), embed_all(&tables.right))
    }
}

impl Blocker for EmbeddingLshBlocker {
    fn candidates(&self, tables: &TablePair) -> CandidateSet {
        let _span = panda_obs::span("blocking.candidates");
        let (lvecs, rvecs) = self.embed_tables(tables);
        let lsh = HyperplaneLsh::new(
            self.embedder.dim(),
            self.bands,
            self.bits_per_band,
            self.seed,
        );

        // Bucket right records by (band, key).
        let mut buckets: HashMap<(usize, u64), Vec<u32>> = HashMap::new();
        for (rid, v) in rvecs.iter().enumerate() {
            for (band, key) in lsh.signature(v).into_iter().enumerate() {
                buckets.entry((band, key)).or_default().push(rid as u32);
            }
        }

        let mut seen: HashSet<CandidatePair> = HashSet::new();
        let mut per_left: Vec<Vec<(f32, u32)>> = vec![Vec::new(); lvecs.len()];
        for (lid, v) in lvecs.iter().enumerate() {
            for (band, key) in lsh.signature(v).into_iter().enumerate() {
                let Some(rids) = buckets.get(&(band, key)) else {
                    continue;
                };
                for &rid in rids {
                    let pair = CandidatePair::new(lid as u32, rid);
                    if !seen.insert(pair) {
                        continue;
                    }
                    let c = cosine(v, &rvecs[rid as usize]);
                    if c >= self.min_cosine {
                        per_left[lid].push((c, rid));
                    }
                }
            }
        }

        // Per-record cap, keeping the highest-cosine candidates.
        let mut pairs = Vec::new();
        for (lid, mut cands) in per_left.into_iter().enumerate() {
            if let Some(cap) = self.max_per_record {
                if cands.len() > cap {
                    cands.sort_by(|a, b| b.0.total_cmp(&a.0));
                    cands.truncate(cap);
                }
            }
            // Deterministic order within a record.
            cands.sort_by_key(|&(_, rid)| rid);
            for (_, rid) in cands {
                pairs.push(CandidatePair::new(lid as u32, rid));
            }
        }
        panda_obs::counter_add("blocking.lsh_collisions", seen.len() as u64);
        panda_obs::counter_add("blocking.candidates_emitted", pairs.len() as u64);
        CandidateSet::from_pairs(pairs)
    }

    fn name(&self) -> &'static str {
        "embedding-lsh"
    }
}

// ---------------------------------------------------------------------------
// Token blocking baseline
// ---------------------------------------------------------------------------

/// Classic token blocking: pairs sharing at least one non-frequent token
/// become candidates. `max_token_df` skips tokens whose blocks would be
/// huge (stop words, "tv").
#[derive(Debug, Clone)]
pub struct TokenBlocker {
    /// Skip tokens appearing in more than this fraction of right records.
    pub max_token_df: f64,
}

impl Default for TokenBlocker {
    fn default() -> Self {
        TokenBlocker { max_token_df: 0.05 }
    }
}

impl Blocker for TokenBlocker {
    fn candidates(&self, tables: &TablePair) -> CandidateSet {
        let clean = |s: String| apply_pipeline(&standard_pipeline(), &s);
        let mut token_to_rights: HashMap<String, Vec<u32>> = HashMap::new();
        for rec in tables.right.records() {
            let text = clean(blocking_text(&rec));
            let mut seen_tok: HashSet<String> = HashSet::new();
            for t in Tokenizer::Whitespace.tokens(&text) {
                if seen_tok.insert(t.clone()) {
                    token_to_rights.entry(t).or_default().push(rec.id().0);
                }
            }
        }
        let cap = ((tables.right.len() as f64) * self.max_token_df).ceil() as usize;
        let cap = cap.max(2);

        let mut seen: HashSet<CandidatePair> = HashSet::new();
        let mut pairs = Vec::new();
        for rec in tables.left.records() {
            let text = clean(blocking_text(&rec));
            for t in Tokenizer::Whitespace.tokens(&text) {
                let Some(rights) = token_to_rights.get(&t) else {
                    continue;
                };
                if rights.len() > cap {
                    continue; // frequent token: block too big to be useful
                }
                for &rid in rights {
                    let p = CandidatePair::new(rec.id().0, rid);
                    if seen.insert(p) {
                        pairs.push(p);
                    }
                }
            }
        }
        pairs.sort();
        CandidateSet::from_pairs(pairs)
    }

    fn name(&self) -> &'static str {
        "token"
    }
}

// ---------------------------------------------------------------------------
// Sorted neighbourhood baseline
// ---------------------------------------------------------------------------

/// Sorted neighbourhood: sort all records (both tables) by a key — here
/// the cleaned full text — then slide a window and pair up left/right
/// records that co-occur within it.
#[derive(Debug, Clone)]
pub struct SortedNeighborhoodBlocker {
    /// Window size (number of records).
    pub window: usize,
}

impl Default for SortedNeighborhoodBlocker {
    fn default() -> Self {
        SortedNeighborhoodBlocker { window: 10 }
    }
}

impl Blocker for SortedNeighborhoodBlocker {
    fn candidates(&self, tables: &TablePair) -> CandidateSet {
        #[derive(Clone)]
        struct Entry {
            key: String,
            side_left: bool,
            id: u32,
        }
        let clean = |s: String| apply_pipeline(&standard_pipeline(), &s);
        let mut entries: Vec<Entry> = Vec::with_capacity(tables.left.len() + tables.right.len());
        for rec in tables.left.records() {
            entries.push(Entry {
                key: clean(blocking_text(&rec)),
                side_left: true,
                id: rec.id().0,
            });
        }
        for rec in tables.right.records() {
            entries.push(Entry {
                key: clean(blocking_text(&rec)),
                side_left: false,
                id: rec.id().0,
            });
        }
        entries.sort_by(|a, b| a.key.cmp(&b.key));

        let w = self.window.max(2);
        let mut seen: HashSet<CandidatePair> = HashSet::new();
        let mut pairs = Vec::new();
        for i in 0..entries.len() {
            let end = (i + w).min(entries.len());
            for j in i + 1..end {
                let (a, b) = (&entries[i], &entries[j]);
                let p = match (a.side_left, b.side_left) {
                    (true, false) => CandidatePair::new(a.id, b.id),
                    (false, true) => CandidatePair::new(b.id, a.id),
                    _ => continue,
                };
                if seen.insert(p) {
                    pairs.push(p);
                }
            }
        }
        pairs.sort();
        CandidateSet::from_pairs(pairs)
    }

    fn name(&self) -> &'static str {
        "sorted-neighborhood"
    }
}

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

/// Blocking quality: candidate-set size vs gold recall.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockingStats {
    /// Candidate pairs emitted.
    pub candidates: usize,
    /// Gold matches present in the candidate set.
    pub matches_covered: usize,
    /// Total gold matches.
    pub total_matches: usize,
    /// `matches_covered / total_matches` (1.0 when no gold).
    pub recall: f64,
    /// `candidates / (|L| × |R|)`.
    pub reduction_ratio: f64,
}

/// Compute [`BlockingStats`] for a candidate set against the pair's gold.
pub fn blocking_stats(tables: &TablePair, candidates: &CandidateSet) -> BlockingStats {
    let total = tables.gold.as_ref().map(|g| g.len()).unwrap_or(0);
    let covered = match &tables.gold {
        Some(gold) => candidates
            .pairs()
            .iter()
            .filter(|p| gold.contains(p))
            .count(),
        None => 0,
    };
    let cross = (tables.left.len() * tables.right.len()).max(1);
    BlockingStats {
        candidates: candidates.len(),
        matches_covered: covered,
        total_matches: total,
        recall: if total == 0 {
            1.0
        } else {
            covered as f64 / total as f64
        },
        reduction_ratio: candidates.len() as f64 / cross as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use panda_table::{MatchSet, RecordId, Schema, Table};

    /// A tiny product task: 4 left, 4 right, 3 true matches.
    fn tiny_task() -> TablePair {
        let schema = Schema::of_text(&["name", "price"]);
        let mut left = Table::new("abt", schema.clone());
        left.push(vec!["sony bravia kdl-40v2500 40 lcd tv", "999"])
            .unwrap();
        left.push(vec!["apple ipod nano 8gb silver", "149"])
            .unwrap();
        left.push(vec!["canon powershot sd1000 digital camera", "299"])
            .unwrap();
        left.push(vec!["panasonic viera 50 plasma hdtv", "1299"])
            .unwrap();
        let mut right = Table::new("buy", schema);
        right
            .push(vec!["sony bravia 40in kdl40v2500 lcd hdtv", "989"])
            .unwrap();
        right
            .push(vec!["apple ipod nano 8 gb (silver)", "145"])
            .unwrap();
        right
            .push(vec!["panasonic 50in viera plasma television", "1250"])
            .unwrap();
        right
            .push(vec!["nikon coolpix 10mp camera bundle", "399"])
            .unwrap();
        let mut gold = MatchSet::new();
        gold.insert(RecordId(0), RecordId(0));
        gold.insert(RecordId(1), RecordId(1));
        gold.insert(RecordId(3), RecordId(2));
        TablePair::with_gold(left, right, gold)
    }

    #[test]
    fn embedding_lsh_recovers_matches() {
        let task = tiny_task();
        let blocker = EmbeddingLshBlocker::new(7);
        let cands = blocker.candidates(&task);
        let stats = blocking_stats(&task, &cands);
        assert_eq!(stats.total_matches, 3);
        assert_eq!(
            stats.matches_covered, 3,
            "all matches must survive blocking"
        );
        assert!(stats.candidates < 16, "should prune the cross product");
    }

    #[test]
    fn token_blocking_recovers_matches() {
        let task = tiny_task();
        let blocker = TokenBlocker { max_token_df: 0.6 };
        let cands = blocker.candidates(&task);
        let stats = blocking_stats(&task, &cands);
        assert_eq!(stats.matches_covered, 3);
    }

    #[test]
    fn sorted_neighborhood_produces_cross_side_pairs_only() {
        let task = tiny_task();
        let blocker = SortedNeighborhoodBlocker { window: 4 };
        let cands = blocker.candidates(&task);
        assert!(!cands.is_empty());
        for p in cands.pairs() {
            assert!(p.left.idx() < task.left.len());
            assert!(p.right.idx() < task.right.len());
        }
    }

    #[test]
    fn stats_on_cross_product_have_full_recall() {
        let task = tiny_task();
        let stats = blocking_stats(&task, &task.cross_product());
        assert_eq!(stats.recall, 1.0);
        assert_eq!(stats.reduction_ratio, 1.0);
    }

    #[test]
    fn per_record_cap_is_enforced() {
        let task = tiny_task();
        let mut blocker = EmbeddingLshBlocker::new(3);
        blocker.min_cosine = -1.0; // keep everything LSH emits
        blocker.max_per_record = Some(1);
        let cands = blocker.candidates(&task);
        let mut per_left = std::collections::HashMap::new();
        for p in cands.pairs() {
            *per_left.entry(p.left).or_insert(0) += 1;
        }
        assert!(per_left.values().all(|&c| c <= 1));
    }
}
