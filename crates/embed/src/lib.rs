//! Tuple embeddings and LSH blocking.
//!
//! The paper blocks by (1) embedding every tuple with a pre-trained
//! sentence model (sentence-BERT) and (2) bucketing the embedding vectors
//! with locality-sensitive hashing; only pairs that collide in some LSH
//! band become candidate pairs (§2.1 feature 1.1 and §4).
//!
//! A 400 MB transformer is neither available offline nor necessary for the
//! blocking code path: what blocking needs is *similar strings → nearby
//! vectors*. [`embedding::TupleEmbedder`] provides exactly that property
//! with deterministic **feature hashing** of character trigrams and word
//! tokens into a fixed-dimension vector (cosine similarity then
//! approximates weighted n-gram overlap). The LSH stage
//! ([`lsh::HyperplaneLsh`]) is the same random-hyperplane + banding scheme
//! the paper describes, and is oblivious to where the vectors came from —
//! swap in real sentence embeddings and nothing else changes. The
//! substitution is recorded in DESIGN.md §2.
//!
//! [`blocking`] additionally provides two classic baselines (token
//! blocking, sorted neighbourhood) used by experiment E5 to compare
//! candidate-set size vs recall.

pub mod blocking;
pub mod embedding;
pub mod hashing;
pub mod lsh;
pub mod minhash;

pub use blocking::{
    blocking_stats, Blocker, BlockingStats, EmbeddingLshBlocker, SortedNeighborhoodBlocker,
    TokenBlocker,
};
pub use embedding::{cosine, TupleEmbedder};
pub use lsh::HyperplaneLsh;
pub use minhash::{MinHashBlocker, MinHasher};
