//! Deterministic string hashing.
//!
//! `std`'s `DefaultHasher` is not guaranteed stable across releases, and
//! embeddings must be reproducible run-to-run for experiments to be
//! comparable — so feature hashing uses an in-tree FNV-1a with explicit
//! seed mixing.

/// 64-bit FNV-1a over `bytes`.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf29ce484222325;
    const PRIME: u64 = 0x100000001b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// FNV-1a with a seed mixed in (different seeds give independent-ish hash
/// families — used for signs vs buckets).
pub fn fnv1a_seeded(bytes: &[u8], seed: u64) -> u64 {
    splitmix64(fnv1a(bytes) ^ splitmix64(seed))
}

/// SplitMix64 finaliser — a cheap, well-distributed 64-bit mixer.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_is_deterministic_and_spread() {
        assert_eq!(fnv1a(b"sony"), fnv1a(b"sony"));
        assert_ne!(fnv1a(b"sony"), fnv1a(b"sonz"));
        assert_ne!(fnv1a(b""), fnv1a(b"\0"));
    }

    #[test]
    fn seeds_give_different_families() {
        let a = fnv1a_seeded(b"token", 1);
        let b = fnv1a_seeded(b"token", 2);
        assert_ne!(a, b);
        assert_eq!(a, fnv1a_seeded(b"token", 1));
    }

    #[test]
    fn splitmix_changes_all_zero_input() {
        assert_ne!(splitmix64(0), 0);
        assert_ne!(splitmix64(1), splitmix64(2));
    }
}
