//! Random-hyperplane LSH with banding.
//!
//! Sign-random-projection LSH: `P[h(a) = h(b)] = 1 − θ(a,b)/π` per
//! hyperplane. Bits are grouped into bands; two vectors become a candidate
//! pair when *all* bits of at least one band agree — the classic banding
//! construction that turns per-bit collision probability into an S-curve
//! over cosine similarity.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random-hyperplane LSH parameters + sampled hyperplanes.
#[derive(Debug, Clone)]
pub struct HyperplaneLsh {
    dim: usize,
    bands: usize,
    bits_per_band: usize,
    /// `bands × bits_per_band` hyperplane normals, row-major.
    planes: Vec<Vec<f32>>,
}

impl HyperplaneLsh {
    /// Sample hyperplanes for `dim`-dimensional inputs.
    ///
    /// `bands` × `bits_per_band` ≤ 64·bands total bits. More bands → higher
    /// recall; more bits per band → higher precision.
    pub fn new(dim: usize, bands: usize, bits_per_band: usize, seed: u64) -> Self {
        assert!(
            (1..=64).contains(&bits_per_band),
            "band width must be 1..=64 bits"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let n = bands * bits_per_band;
        let planes = (0..n)
            .map(|_| {
                // Rademacher ±1 normals are as good as Gaussian for SRP and
                // cheaper to generate/apply.
                (0..dim)
                    .map(|_| if rng.gen::<bool>() { 1.0 } else { -1.0 })
                    .collect()
            })
            .collect();
        HyperplaneLsh {
            dim,
            bands,
            bits_per_band,
            planes,
        }
    }

    /// Number of bands.
    pub fn bands(&self) -> usize {
        self.bands
    }

    /// Band signatures of a vector: one `u64` key per band.
    pub fn signature(&self, v: &[f32]) -> Vec<u64> {
        assert_eq!(v.len(), self.dim, "vector dimension mismatch");
        let mut sig = Vec::with_capacity(self.bands);
        for band in 0..self.bands {
            let mut key = 0u64;
            for bit in 0..self.bits_per_band {
                let plane = &self.planes[band * self.bits_per_band + bit];
                let dot: f32 = plane.iter().zip(v).map(|(p, x)| p * x).sum();
                key = (key << 1) | u64::from(dot >= 0.0);
            }
            sig.push(key);
        }
        sig
    }

    /// Do two vectors collide in at least one band?
    pub fn collides(&self, a: &[f32], b: &[f32]) -> bool {
        self.signature(a)
            .iter()
            .zip(self.signature(b).iter())
            .any(|(x, y)| x == y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::embedding::TupleEmbedder;

    #[test]
    fn identical_vectors_always_collide() {
        let lsh = HyperplaneLsh::new(64, 8, 8, 42);
        let e = TupleEmbedder::new(64);
        let v = e.embed_text("sony bravia tv");
        assert_eq!(lsh.signature(&v), lsh.signature(&v));
        assert!(lsh.collides(&v, &v));
    }

    #[test]
    fn similar_collide_more_than_dissimilar() {
        let e = TupleEmbedder::new(128);
        let base = e.embed_text("sony bravia kdl-40v2500 lcd tv 40 inch");
        let near = e.embed_text("sony bravia kdl 40v2500 lcd tv");
        let far = e.embed_text("nikon coolpix digital camera 10mp");
        // Average collisions over several seeds (probabilistic statement).
        let mut near_hits = 0;
        let mut far_hits = 0;
        for seed in 0..20 {
            let lsh = HyperplaneLsh::new(128, 8, 6, seed);
            near_hits += usize::from(lsh.collides(&base, &near));
            far_hits += usize::from(lsh.collides(&base, &far));
        }
        assert!(
            near_hits > far_hits,
            "near collided {near_hits}/20, far {far_hits}/20"
        );
        assert!(
            near_hits >= 15,
            "high-cosine pairs should almost always collide"
        );
    }

    #[test]
    fn signature_is_deterministic_per_seed() {
        let e = TupleEmbedder::new(32);
        let v = e.embed_text("abc def");
        let a = HyperplaneLsh::new(32, 4, 8, 7).signature(&v);
        let b = HyperplaneLsh::new(32, 4, 8, 7).signature(&v);
        let c = HyperplaneLsh::new(32, 4, 8, 8).signature(&v);
        assert_eq!(a, b);
        assert_ne!(a, c, "different seed should give different planes");
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dimension_mismatch_panics() {
        let lsh = HyperplaneLsh::new(16, 2, 4, 0);
        lsh.signature(&[0.0; 8]);
    }
}
