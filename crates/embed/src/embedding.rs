//! Feature-hashed tuple embeddings (the sentence-model substitute).

use crate::hashing::fnv1a_seeded;
use panda_table::Record;
use panda_text::preprocess::{apply_pipeline, standard_pipeline};
use panda_text::tokenize::Tokenizer;

/// Embeds a tuple's concatenated text into a fixed-dimension dense vector
/// by feature hashing.
///
/// Features are (a) word tokens and (b) character trigrams of the cleaned
/// text. Each feature `f` maps to bucket `h(f) mod dim` with sign
/// `±1` from an independent hash bit; word features carry more weight than
/// trigram features (words are more discriminative; trigrams provide
/// typo robustness). Vectors are L2-normalised, so dot product = cosine.
///
/// The construction guarantees the property blocking relies on: strings
/// with high weighted n-gram overlap get high cosine similarity, in
/// expectation proportional to the overlap (standard feature-hashing
/// inner-product preservation).
#[derive(Debug, Clone)]
pub struct TupleEmbedder {
    dim: usize,
    word_weight: f32,
    trigram_weight: f32,
    seed: u64,
}

impl TupleEmbedder {
    /// Embedder with the given dimension (≥ 8 recommended; 256 default).
    pub fn new(dim: usize) -> Self {
        TupleEmbedder {
            dim: dim.max(2),
            word_weight: 1.0,
            trigram_weight: 0.4,
            seed: 0x9e1e_55ed_u64,
        }
    }

    /// Override the feature weights (word, trigram).
    pub fn with_weights(mut self, word: f32, trigram: f32) -> Self {
        self.word_weight = word;
        self.trigram_weight = trigram;
        self
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Embed arbitrary text.
    pub fn embed_text(&self, text: &str) -> Vec<f32> {
        let cleaned = apply_pipeline(&standard_pipeline(), text);
        let mut v = vec![0.0f32; self.dim];
        for word in Tokenizer::Whitespace.tokens(&cleaned) {
            self.add_feature(&mut v, word.as_bytes(), self.word_weight);
        }
        for gram in Tokenizer::QGram(3).tokens(&cleaned) {
            self.add_feature(&mut v, gram.as_bytes(), self.trigram_weight);
        }
        normalize(&mut v);
        v
    }

    /// Embed a whole record: all non-null attributes concatenated — the
    /// "sentence" of the tuple, as the paper embeds whole tuples — except
    /// id-like columns (see [`crate::blocking::blocking_text`]).
    pub fn embed_record(&self, record: &Record<'_>) -> Vec<f32> {
        self.embed_text(&crate::blocking::blocking_text(record))
    }

    fn add_feature(&self, v: &mut [f32], feature: &[u8], weight: f32) {
        let h = fnv1a_seeded(feature, self.seed);
        let bucket = (h % self.dim as u64) as usize;
        // An independent bit decides the sign (unbiased estimator of the
        // inner product).
        let sign = if (h >> 63) & 1 == 1 { -1.0 } else { 1.0 };
        v[bucket] += sign * weight;
    }
}

impl Default for TupleEmbedder {
    fn default() -> Self {
        TupleEmbedder::new(256)
    }
}

/// Cosine similarity of two same-length vectors (0 for zero vectors).
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut dot = 0.0;
    let mut na = 0.0;
    let mut nb = 0.0;
    for (x, y) in a.iter().zip(b) {
        dot += x * y;
        na += x * x;
        nb += y * y;
    }
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    dot / (na.sqrt() * nb.sqrt())
}

fn normalize(v: &mut [f32]) {
    let n: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    if n > 0.0 {
        for x in v {
            *x /= n;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn identical_text_identical_embedding() {
        let e = TupleEmbedder::new(64);
        let a = e.embed_text("Sony Bravia 40 LCD TV");
        let b = e.embed_text("Sony Bravia 40 LCD TV");
        assert_eq!(a, b);
        assert!((cosine(&a, &b) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn similar_beats_dissimilar() {
        let e = TupleEmbedder::new(256);
        let base = e.embed_text("sony bravia kdl-40v2500 40 inch lcd tv");
        let near = e.embed_text("sony bravia kdl 40v2500 lcd hdtv 40in");
        let far = e.embed_text("apple ipod nano 8gb silver music player");
        assert!(
            cosine(&base, &near) > cosine(&base, &far) + 0.2,
            "near {} far {}",
            cosine(&base, &near),
            cosine(&base, &far)
        );
    }

    #[test]
    fn typo_robustness_via_trigrams() {
        let e = TupleEmbedder::new(256);
        let a = e.embed_text("panasonic viera plasma");
        let b = e.embed_text("panasonik viera plasma"); // typo
        assert!(cosine(&a, &b) > 0.7, "typo cosine {}", cosine(&a, &b));
    }

    #[test]
    fn empty_text_is_zero_vector() {
        let e = TupleEmbedder::new(32);
        let v = e.embed_text("");
        assert!(v.iter().all(|&x| x == 0.0));
        assert_eq!(cosine(&v, &v), 0.0);
    }

    proptest! {
        /// Embeddings are unit-length (or zero) and cosine stays in [-1,1].
        #[test]
        fn embedding_invariants(a in ".{0,30}", b in ".{0,30}") {
            let e = TupleEmbedder::new(64);
            let va = e.embed_text(&a);
            let vb = e.embed_text(&b);
            let na: f32 = va.iter().map(|x| x * x).sum::<f32>().sqrt();
            prop_assert!(na < 1.0 + 1e-4, "norm {na}");
            let c = cosine(&va, &vb);
            prop_assert!((-1.0 - 1e-4..=1.0 + 1e-4).contains(&c));
            prop_assert!((cosine(&va, &vb) - cosine(&vb, &va)).abs() < 1e-6);
        }
    }
}
