//! The durability guarantee: a SIGKILL between requests loses at most
//! the in-flight request. Sessions rebuilt from snapshot + WAL replay
//! are **bit-identical** to the pre-crash session and to an offline
//! [`PandaSession`] replaying the same edits; corrupted state is
//! quarantined, never served wrong.
//!
//! A dropped [`AppState`] is exactly a SIGKILL from the store's point of
//! view: nothing flushes on drop, so whatever the WAL and snapshot files
//! hold at that moment is what recovery sees.

mod common;

use panda_serve::api::{CreateSessionRequest, SessionConfigDto};
use panda_serve::http::{Request, Response};
use panda_serve::router::handle;
use panda_serve::{AppState, StateOptions};
use panda_session::PandaSession;
use panda_table::CandidatePair;
use std::path::PathBuf;

fn req(method: &str, path: &str, body: &str) -> Request {
    Request {
        method: method.to_string(),
        path: path.to_string(),
        query: String::new(),
        body: body.as_bytes().to_vec(),
    }
}

/// A fresh per-test state directory (cleaned from any earlier run).
fn state_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("panda-durability-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn open(dir: &std::path::Path, snapshot_every: u64, max_sessions: usize) -> AppState {
    AppState::open(StateOptions {
        state_dir: Some(dir.to_path_buf()),
        max_sessions,
        session_ttl: None,
        snapshot_every,
        ..Default::default()
    })
    .expect("open state dir")
}

fn create_request() -> CreateSessionRequest {
    let (left_csv, right_csv, gold) = common::demo_csvs();
    CreateSessionRequest {
        left_csv,
        right_csv,
        gold: Some(gold),
        config: Some(SessionConfigDto {
            auto_lfs: Some(false),
            ..Default::default()
        }),
    }
}

fn create_body() -> String {
    serde_json::to_string(&create_request()).unwrap()
}

fn session_id(resp: &Response) -> u64 {
    let v = serde_json::parse_value(&resp.body).unwrap();
    match v.get_field("session") {
        Some(serde::Value::UInt(u)) => *u,
        Some(serde::Value::Int(i)) => *i as u64,
        other => panic!("no session id in {other:?}"),
    }
}

const LF1: &str =
    r#"{"name":"name_overlap","kind":"similarity","attr":"name","upper":0.5,"lower":0.1}"#;
const LF2: &str = r#"{"name":"price_tol","kind":"numeric_tolerance","attr":"price","match_tol":0.05,"unmatch_tol":0.5}"#;

/// Drive the standard edit sequence: create, two LFs, fit, one label.
/// With `snapshot_every = 3` this leaves *both* a snapshot (covering the
/// create + LFs) and live WAL records (fit + label) on disk — the exact
/// "kill between WAL append and snapshot compaction" window.
fn drive_session(state: &AppState) -> u64 {
    let resp = handle(state, &req("POST", "/sessions", &create_body()));
    assert_eq!(resp.status, 200, "{}", resp.body);
    let id = session_id(&resp);
    for lf in [LF1, LF2] {
        let resp = handle(state, &req("POST", &format!("/sessions/{id}/lfs"), lf));
        assert_eq!(resp.status, 200, "{}", resp.body);
    }
    let resp = handle(state, &req("POST", &format!("/sessions/{id}/fit"), ""));
    assert_eq!(resp.status, 200, "{}", resp.body);
    let resp = handle(
        state,
        &req(
            "POST",
            &format!("/sessions/{id}/labels"),
            r#"{"candidate":0,"is_match":true}"#,
        ),
    );
    assert_eq!(resp.status, 200, "{}", resp.body);
    id
}

fn snapshot_body(state: &AppState, id: u64) -> String {
    handle(state, &req("GET", &format!("/sessions/{id}"), "")).body
}

fn match_body(state: &AppState, id: u64) -> String {
    let pairs = format!(r#"{{"session":{id},"pairs":[[0,0],[1,1],[2,5],[7,7]]}}"#);
    let resp = handle(state, &req("POST", "/match", &pairs));
    assert_eq!(resp.status, 200, "{}", resp.body);
    resp.body
}

fn matrix_digest(state: &AppState, id: u64) -> u64 {
    let slot = state.get(id).expect("session present");
    let slot = slot.lock().unwrap();
    slot.session.matrix().digest()
}

#[test]
fn kill_between_append_and_compaction_recovers_bit_identically() {
    let dir = state_dir("crash");
    let (pre_digest, pre_snapshot, pre_match) = {
        let state = open(&dir, 3, 0);
        let id = drive_session(&state);
        (
            matrix_digest(&state, id),
            snapshot_body(&state, id),
            match_body(&state, id),
        )
        // `state` dropped here without compact_all(): the SIGKILL.
    };

    // Snapshot AND uncompacted WAL records must both exist on disk —
    // otherwise this test is not exercising the interesting window.
    let session_dir = dir.join("sessions").join("1");
    assert!(session_dir.join("snapshot.json").exists(), "no snapshot");
    let wal = std::fs::read_to_string(session_dir.join("wal.jsonl")).unwrap();
    assert!(
        wal.lines().count() >= 2,
        "expected live WAL records past the snapshot, got {wal:?}"
    );

    let state = open(&dir, 3, 0);
    let listing = handle(&state, &req("GET", "/sessions", ""));
    assert_eq!(listing.status, 200);
    assert!(
        listing.body.contains("\"recovered\":true"),
        "{}",
        listing.body
    );

    assert_eq!(
        matrix_digest(&state, 1),
        pre_digest,
        "matrix digest drifted"
    );
    assert_eq!(
        snapshot_body(&state, 1),
        pre_snapshot,
        "snapshot body drifted"
    );
    assert_eq!(match_body(&state, 1), pre_match, "match scores drifted");

    // Offline reference: the same edits through the library, no server.
    let create = create_request();
    let tables = panda_serve::api::build_tables(&create).unwrap();
    let config = create.config.clone().unwrap().resolve().unwrap();
    let mut offline = PandaSession::load(tables, config);
    for lf in [LF1, LF2] {
        let spec: panda_serve::api::LfSpec = serde_json::from_str(lf).unwrap();
        offline
            .upsert_lf_incremental(spec.build().unwrap())
            .unwrap();
    }
    offline.fit();
    offline.label_pair(0, true);
    assert_eq!(
        offline.matrix().digest(),
        pre_digest,
        "offline digest differs"
    );
    let slot = state.get(1).unwrap();
    let slot = slot.lock().unwrap();
    for pair in [[0u32, 0], [1, 1], [2, 5], [7, 7]] {
        let offline_score = offline
            .score_pair(CandidatePair::new(pair[0], pair[1]))
            .unwrap();
        let recovered_score = slot
            .session
            .score_pair(CandidatePair::new(pair[0], pair[1]))
            .unwrap();
        assert_eq!(
            offline_score.to_bits(),
            recovered_score.to_bits(),
            "posterior for {pair:?} not bit-identical"
        );
    }
    drop(slot);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_wal_tail_is_dropped_not_fatal() {
    let dir = state_dir("torn");
    let (pre_digest, pre_snapshot) = {
        let state = open(&dir, 0, 0); // never compact: everything in the WAL
        let id = drive_session(&state);
        (matrix_digest(&state, id), snapshot_body(&state, id))
    };
    // Simulate a crash mid-append: half a record at the end of the WAL.
    // That op was never acknowledged, so recovery must drop it and land
    // on the pre-append state.
    let wal_path = dir.join("sessions").join("1").join("wal.jsonl");
    let mut wal = std::fs::read_to_string(&wal_path).unwrap();
    wal.push_str("{\"seq\":6,\"digest\":123,\"op\":{\"Fi");
    std::fs::write(&wal_path, wal).unwrap();

    let state = open(&dir, 0, 0);
    assert_eq!(matrix_digest(&state, 1), pre_digest);
    assert_eq!(snapshot_body(&state, 1), pre_snapshot);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_state_is_quarantined_not_served() {
    // Mid-WAL corruption (not the tail) → the session must not come back.
    let dir = state_dir("corrupt-wal");
    {
        let state = open(&dir, 0, 0);
        drive_session(&state);
    }
    let wal_path = dir.join("sessions").join("1").join("wal.jsonl");
    let wal = std::fs::read_to_string(&wal_path).unwrap();
    let mut lines: Vec<String> = wal.lines().map(String::from).collect();
    assert!(lines.len() >= 3);
    lines[1] = "{\"seq\":2,\"garbage\":true}".to_string();
    std::fs::write(&wal_path, lines.join("\n") + "\n").unwrap();
    let state = open(&dir, 0, 0);
    assert!(state.is_empty(), "corrupted session must not be served");
    assert!(
        wal_path.exists(),
        "quarantined state is kept for inspection"
    );

    // Corrupted snapshot → same policy.
    let dir2 = state_dir("corrupt-snap");
    {
        let state = open(&dir2, 1, 0); // snapshot after every op
        drive_session(&state);
    }
    let snap_path = dir2.join("sessions").join("1").join("snapshot.json");
    let snap = std::fs::read_to_string(&snap_path).unwrap();
    std::fs::write(&snap_path, snap.replace("\"format\"", "\"fmt\"")).unwrap();
    let state = open(&dir2, 1, 0);
    assert!(state.is_empty(), "corrupted snapshot must not be served");
    assert!(snap_path.exists());
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&dir2);
}

#[test]
fn lru_eviction_rehydrates_bit_identically() {
    let dir = state_dir("evict");
    let state = open(&dir, 4, 2);
    let a = drive_session(&state);
    let pre_a = snapshot_body(&state, a);
    let b = drive_session(&state);
    assert_eq!(state.live_len(), 2);
    // Touch `b` so `a` is the LRU victim, then push past capacity.
    let _ = snapshot_body(&state, b);
    let c = drive_session(&state);
    assert_eq!(state.live_len(), 2, "capacity bound respected");
    let listing = handle(&state, &req("GET", "/sessions", ""));
    assert!(
        listing.body.contains("\"status\":\"evicted\""),
        "{}",
        listing.body
    );
    assert_eq!(state.len(), 3, "evicted session still listed");

    // Touching the evicted session rehydrates it transparently, with a
    // byte-identical snapshot body.
    assert_eq!(snapshot_body(&state, a), pre_a, "rehydrated state drifted");
    let listing = handle(&state, &req("GET", "/sessions", ""));
    assert!(listing.body.contains(&format!("\"session\":{c}")));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn delete_removes_on_disk_state() {
    let dir = state_dir("delete");
    {
        let state = open(&dir, 4, 0);
        let id = drive_session(&state);
        let resp = handle(&state, &req("DELETE", &format!("/sessions/{id}"), ""));
        assert_eq!(resp.status, 200);
        assert!(!dir.join("sessions").join(id.to_string()).exists());
    }
    let state = open(&dir, 4, 0);
    assert!(state.is_empty(), "deleted session must not resurrect");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn graceful_compaction_leaves_an_empty_wal() {
    let dir = state_dir("compact");
    {
        let state = open(&dir, 0, 0); // no cadence: only compact_all writes
        drive_session(&state);
        state.compact_all();
    }
    let session_dir = dir.join("sessions").join("1");
    assert!(session_dir.join("snapshot.json").exists());
    let wal = std::fs::read_to_string(session_dir.join("wal.jsonl")).unwrap();
    assert!(wal.is_empty(), "graceful shutdown should reset the WAL");
    // Recovery replays zero records and still serves the session.
    let state = open(&dir, 0, 0);
    assert_eq!(state.len(), 1);
    assert!(handle(&state, &req("GET", "/sessions/1", "")).status == 200);
    let _ = std::fs::remove_dir_all(&dir);
}
