//! The replication plane, end to end: WAL shipping to live followers,
//! byte-identical follower reads, 421 mutation rejection, promotion,
//! drain-time tail shipping, rebalance handoff, and — mirroring
//! `durability.rs` — follower-side quarantine on corrupt or gapped
//! shipped records (quarantine, never crash, never serve wrong).

mod common;

use panda_serve::api::{CreateSessionRequest, SessionConfigDto};
use panda_serve::http::{Request, Response};
use panda_serve::persist::{SnapshotFile, WalRecord};
use panda_serve::repl::{HandoffRequest, ReplMsg};
use panda_serve::router::handle;
use panda_serve::{AppState, Server, ServerConfig, StateOptions};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn req(method: &str, path: &str, body: &str) -> Request {
    Request {
        method: method.to_string(),
        path: path.to_string(),
        query: String::new(),
        body: body.as_bytes().to_vec(),
    }
}

fn state_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("panda-repl-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn create_body() -> String {
    let (left_csv, right_csv, gold) = common::demo_csvs();
    serde_json::to_string(&CreateSessionRequest {
        left_csv,
        right_csv,
        gold: Some(gold),
        config: Some(SessionConfigDto {
            auto_lfs: Some(false),
            ..Default::default()
        }),
    })
    .unwrap()
}

fn session_id(resp: &Response) -> u64 {
    let v = serde_json::parse_value(&resp.body).unwrap();
    match v.get_field("session") {
        Some(serde::Value::UInt(u)) => *u,
        Some(serde::Value::Int(i)) => *i as u64,
        other => panic!("no session id in {other:?}"),
    }
}

const LF1: &str =
    r#"{"name":"name_overlap","kind":"similarity","attr":"name","upper":0.5,"lower":0.1}"#;
const LF2: &str = r#"{"name":"price_tol","kind":"numeric_tolerance","attr":"price","match_tol":0.05,"unmatch_tol":0.5}"#;

/// The standard edit sequence over the wire: create, two LFs, fit, one
/// label — WAL seqs 1..=5.
fn drive_over_http(addr: SocketAddr) -> u64 {
    let (status, body) = common::request(addr, "POST", "/sessions", &create_body());
    assert_eq!(status, 200, "{body}");
    let id: u64 = body
        .split("\"session\":")
        .nth(1)
        .and_then(|s| s.split(|c: char| !c.is_ascii_digit()).next())
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no session id in {body}"));
    for lf in [LF1, LF2] {
        let (status, body) = common::request(addr, "POST", &format!("/sessions/{id}/lfs"), lf);
        assert_eq!(status, 200, "{body}");
    }
    let (status, body) = common::request(addr, "POST", &format!("/sessions/{id}/fit"), "");
    assert_eq!(status, 200, "{body}");
    let (status, body) = common::request(
        addr,
        "POST",
        &format!("/sessions/{id}/labels"),
        r#"{"candidate":0,"is_match":true}"#,
    );
    assert_eq!(status, 200, "{body}");
    id
}

fn match_request(id: u64) -> String {
    format!(r#"{{"session":{id},"pairs":[[0,0],[1,1],[2,5],[7,7]]}}"#)
}

fn wait_for(mut cond: impl FnMut() -> bool, what: &str) {
    let deadline = Instant::now() + Duration::from_secs(20);
    while Instant::now() < deadline {
        if cond() {
            return;
        }
        std::thread::sleep(Duration::from_millis(30));
    }
    panic!("timed out waiting for {what}");
}

/// Follower listing shows the session caught up to `seq`.
fn follower_caught_up(addr: SocketAddr, id: u64, seq: u64) -> bool {
    let (status, body) = common::request(addr, "GET", "/sessions", "");
    status == 200 && body.contains(&format!("\"session\":{id}")) && {
        body.contains(&format!("\"wal_seq\":{seq}"))
    }
}

#[test]
fn follower_reads_are_byte_identical_and_mutations_answer_421() {
    let dir = state_dir("follow");
    let primary = Server::start(ServerConfig {
        workers: 2,
        state_dir: Some(dir.clone()),
        repl_addr: Some("127.0.0.1:0".to_string()),
        ..Default::default()
    })
    .unwrap();
    let repl = primary.repl_addr().expect("repl listener bound");
    let follower = Server::start(ServerConfig {
        workers: 2,
        follow: Some(repl.to_string()),
        ..Default::default()
    })
    .unwrap();
    let (p, f) = (primary.addr(), follower.addr());

    let id = drive_over_http(p);
    wait_for(|| follower_caught_up(f, id, 5), "follower to apply seq 5");

    // The listing agrees on cursor AND digest, and names the roles.
    let (_, p_list) = common::request(p, "GET", "/sessions", "");
    let (_, f_list) = common::request(f, "GET", "/sessions", "");
    let digest_of = |body: &str| {
        body.split("\"matrix_digest\":\"")
            .nth(1)
            .and_then(|s| s.split('"').next())
            .map(str::to_string)
            .unwrap_or_else(|| panic!("no matrix_digest in {body}"))
    };
    assert_eq!(digest_of(&p_list), digest_of(&f_list));
    assert!(p_list.contains("\"role\":\"primary\""), "{p_list}");
    assert!(f_list.contains("\"role\":\"follower\""), "{f_list}");

    // Follower reads are byte-identical to the primary's.
    let (ps, p_match) = common::request(p, "POST", "/match", &match_request(id));
    let (fs, f_match) = common::request(f, "POST", "/match", &match_request(id));
    assert_eq!((ps, fs), (200, 200), "{p_match} / {f_match}");
    assert_eq!(p_match, f_match, "follower /match must be byte-identical");
    let q = r#"{"lf":"name_overlap","query":"VotedMatch","limit":8}"#;
    let (_, p_rows) = common::request(p, "POST", &format!("/sessions/{id}/query"), q);
    let (_, f_rows) = common::request(f, "POST", &format!("/sessions/{id}/query"), q);
    assert_eq!(p_rows, f_rows, "follower query must be byte-identical");

    // Mutations on the follower answer 421 naming the primary.
    let (status, body) = common::request(f, "POST", &format!("/sessions/{id}/lfs"), LF1);
    assert_eq!(status, 421, "{body}");
    assert!(body.contains("not_primary"), "{body}");
    assert!(
        body.contains(&p.to_string()),
        "421 must name the primary {p}: {body}"
    );

    // Promote: the follower becomes a primary and accepts writes.
    let (status, body) = common::request(f, "POST", "/promote", "");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"promoted\":true"), "{body}");
    let (status, body) = common::request(f, "POST", "/promote", "");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"promoted\":false"), "idempotent: {body}");
    let (status, body) = common::request(
        f,
        "POST",
        &format!("/sessions/{id}/labels"),
        r#"{"candidate":1,"is_match":false}"#,
    );
    assert_eq!(status, 200, "promoted follower takes writes: {body}");

    primary.shutdown();
    primary.join();
    follower.shutdown();
    follower.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn graceful_drain_ships_the_unreplicated_tail() {
    let dir = state_dir("drain");
    let primary = Server::start(ServerConfig {
        workers: 1,
        state_dir: Some(dir.clone()),
        repl_addr: Some("127.0.0.1:0".to_string()),
        ..Default::default()
    })
    .unwrap();
    let repl = primary.repl_addr().unwrap();
    let follower = Server::start(ServerConfig {
        workers: 1,
        follow: Some(repl.to_string()),
        ..Default::default()
    })
    .unwrap();
    let (p, f) = (primary.addr(), follower.addr());

    // The follower must be subscribed before the burst, or the whole
    // session arrives as a sync instead of a shipped tail.
    let warm = drive_over_http(p);
    wait_for(|| follower_caught_up(f, warm, 5), "subscription warm-up");

    let (_, p_match) = common::request(p, "POST", "/match", &match_request(warm));
    // Shut down immediately after the last ack: join() must ship
    // whatever the hub still holds before the process lets go.
    primary.shutdown();
    primary.join();

    wait_for(|| follower_caught_up(f, warm, 5), "drain-shipped tail");
    let (status, f_match) = common::request(f, "POST", "/match", &match_request(warm));
    assert_eq!(status, 200, "{f_match}");
    assert_eq!(p_match, f_match, "post-drain follower state must match");

    follower.shutdown();
    follower.join();
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Follower-side quarantine (router-level, no sockets — durability.rs idiom)
// ---------------------------------------------------------------------------

/// Drive a durable session and return its id plus every fsynced WAL
/// record (snapshotting disabled so the full history stays in the log).
fn driven_wal(dir: &std::path::Path) -> (u64, Vec<WalRecord>) {
    let state = AppState::open(StateOptions {
        state_dir: Some(dir.to_path_buf()),
        snapshot_every: 0,
        ..Default::default()
    })
    .unwrap();
    let resp = handle(&state, &req("POST", "/sessions", &create_body()));
    assert_eq!(resp.status, 200, "{}", resp.body);
    let id = session_id(&resp);
    for lf in [LF1, LF2] {
        assert_eq!(
            handle(&state, &req("POST", &format!("/sessions/{id}/lfs"), lf)).status,
            200
        );
    }
    assert_eq!(
        handle(&state, &req("POST", &format!("/sessions/{id}/fit"), "")).status,
        200
    );
    assert_eq!(
        handle(
            &state,
            &req(
                "POST",
                &format!("/sessions/{id}/labels"),
                r#"{"candidate":0,"is_match":true}"#,
            ),
        )
        .status,
        200
    );
    let raw = std::fs::read_to_string(dir.join("sessions").join(id.to_string()).join("wal.jsonl"))
        .unwrap();
    let records: Vec<WalRecord> = raw
        .lines()
        .map(|line| serde_json::from_str(line).map_err(|e| e.0).unwrap())
        .collect();
    assert_eq!(records.len(), 5, "create + 2 LFs + fit + label");
    (id, records)
}

fn apply_records(state: &AppState, id: u64, records: &[WalRecord]) {
    for rec in records {
        state.apply_repl_frame(ReplMsg::Record {
            session: id,
            record: rec.clone(),
        });
    }
}

#[test]
fn shipped_records_rebuild_bit_identically_and_corruption_quarantines() {
    let dir = state_dir("quarantine");
    let (id, records) = driven_wal(&dir);

    // A clean replica of the full stream is byte-identical to the
    // durable original.
    let source = AppState::open(StateOptions {
        state_dir: Some(dir.clone()),
        snapshot_every: 0,
        ..Default::default()
    })
    .unwrap();
    let replica = AppState::new();
    apply_records(&replica, id, &records);
    let m = req("POST", "/match", &match_request(id));
    assert_eq!(
        handle(&source, &m).body,
        handle(&replica, &m).body,
        "replayed replica must be byte-identical"
    );

    // A digest-corrupted record quarantines the session: reads answer
    // 409, the listing says so, and nothing crashes.
    let torn = AppState::new();
    apply_records(&torn, id, &records[..4]);
    let mut bad = records[4].clone();
    bad.digest ^= 1;
    torn.apply_repl_frame(ReplMsg::Record {
        session: id,
        record: bad,
    });
    assert!(torn.quarantined(id), "digest mismatch must quarantine");
    let resp = handle(&torn, &m);
    assert_eq!(resp.status, 409, "{}", resp.body);
    assert!(resp.body.contains("session_quarantined"), "{}", resp.body);
    let listing = handle(&torn, &req("GET", "/sessions", ""));
    assert!(listing.body.contains("\"quarantined\""), "{}", listing.body);

    // A seq gap does the same.
    let gapped = AppState::new();
    gapped.apply_repl_frame(ReplMsg::Record {
        session: id,
        record: records[0].clone(),
    });
    gapped.apply_repl_frame(ReplMsg::Record {
        session: id,
        record: records[2].clone(),
    });
    assert!(gapped.quarantined(id), "seq gap must quarantine");

    // A full sync (what the primary sends for a session missing from
    // the subscribe cursors) replaces the quarantined state wholesale.
    source.compact_all();
    let raw = std::fs::read_to_string(
        dir.join("sessions")
            .join(id.to_string())
            .join("snapshot.json"),
    )
    .unwrap();
    let snapshot: SnapshotFile = serde_json::from_str(&raw).map_err(|e| e.0).unwrap();
    torn.apply_repl_frame(ReplMsg::Sync {
        session: id,
        snapshot,
    });
    assert!(!torn.quarantined(id), "sync clears the quarantine");
    assert_eq!(
        handle(&torn, &m).body,
        handle(&source, &m).body,
        "resynced replica must be byte-identical"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn handoff_rejects_gapped_or_corrupt_tails_and_adopts_clean_ones() {
    let dir = state_dir("handoff");
    let (id, records) = driven_wal(&dir);
    let target = AppState::new();

    // A gapped tail rejects the whole handoff and installs nothing.
    let mut gapped = records.clone();
    gapped.remove(2);
    let body = serde_json::to_string(&HandoffRequest {
        session: id,
        snapshot: None,
        tail: gapped,
    })
    .unwrap();
    let resp = handle(&target, &req("POST", "/handoff", &body));
    assert_eq!(resp.status, 422, "{}", resp.body);
    assert!(resp.body.contains("handoff_invalid"), "{}", resp.body);
    assert!(!target.contains(id), "rejected handoff installs nothing");

    // So does a digest mismatch.
    let mut corrupt = records.clone();
    corrupt[3].digest ^= 1;
    let body = serde_json::to_string(&HandoffRequest {
        session: id,
        snapshot: None,
        tail: corrupt,
    })
    .unwrap();
    let resp = handle(&target, &req("POST", "/handoff", &body));
    assert_eq!(resp.status, 422, "{}", resp.body);
    assert!(!target.contains(id));

    // The clean tail adopts, byte-identical to the source.
    let body = serde_json::to_string(&HandoffRequest {
        session: id,
        snapshot: None,
        tail: records,
    })
    .unwrap();
    let resp = handle(&target, &req("POST", "/handoff", &body));
    assert_eq!(resp.status, 200, "{}", resp.body);
    let source = AppState::open(StateOptions {
        state_dir: Some(dir.clone()),
        snapshot_every: 0,
        ..Default::default()
    })
    .unwrap();
    let m = req("POST", "/match", &match_request(id));
    assert_eq!(handle(&source, &m).body, handle(&target, &m).body);

    // Adopting a second time is refused (the session already lives here).
    let resp = handle(&target, &req("POST", "/handoff", &body));
    assert_eq!(resp.status, 409, "{}", resp.body);
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Rebalance and sharding over real sockets
// ---------------------------------------------------------------------------

#[test]
fn rebalance_moves_a_session_with_byte_parity() {
    let dir = state_dir("rebalance");
    let a = Server::start(ServerConfig {
        workers: 1,
        state_dir: Some(dir.clone()),
        ..Default::default()
    })
    .unwrap();
    let b = Server::start(ServerConfig {
        workers: 1,
        ..Default::default()
    })
    .unwrap();

    let id = drive_over_http(a.addr());
    let (_, pre) = common::request(a.addr(), "POST", "/match", &match_request(id));

    let body = format!(r#"{{"session":{id},"target":"{}"}}"#, b.addr());
    let (status, resp) = common::request(a.addr(), "POST", "/rebalance", &body);
    assert_eq!(status, 200, "{resp}");
    assert!(resp.contains("\"status\":\"moved\""), "{resp}");

    // Gone from the source, byte-identical on the target.
    let (status, resp) = common::request(a.addr(), "POST", "/match", &match_request(id));
    assert_eq!(status, 404, "moved session must leave the source: {resp}");
    let (status, post) = common::request(b.addr(), "POST", "/match", &match_request(id));
    assert_eq!(status, 200, "{post}");
    assert_eq!(pre, post, "moved session must answer byte-identically");

    a.shutdown();
    a.join();
    b.shutdown();
    b.join();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Reserve two distinct loopback ports (bind-then-drop; raceable in
/// principle, fine in practice for a test).
fn two_free_ports() -> (SocketAddr, SocketAddr) {
    let l1 = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let l2 = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let (a, b) = (l1.local_addr().unwrap(), l2.local_addr().unwrap());
    drop((l1, l2));
    (a, b)
}

#[test]
fn shard_ring_misdirects_foreign_sessions_with_421() {
    let (addr_a, addr_b) = two_free_ports();
    let peers = vec![addr_a.to_string(), addr_b.to_string()];
    let a = Server::start(ServerConfig {
        addr: addr_a.to_string(),
        workers: 1,
        peers: peers.clone(),
        ..Default::default()
    })
    .unwrap();
    let b = Server::start(ServerConfig {
        addr: addr_b.to_string(),
        workers: 1,
        peers: peers.clone(),
        ..Default::default()
    })
    .unwrap();

    // Sessions minted on A are always A-owned: the listing proves it
    // and publishes the shard map.
    let id = drive_over_http(a.addr());
    let (_, listing) = common::request(a.addr(), "GET", "/sessions", "");
    assert!(
        listing.contains(&format!("\"shard\":\"{addr_a}\"")),
        "{listing}"
    );
    assert!(listing.contains("\"self_addr\""), "{listing}");
    assert!(listing.contains(&addr_b.to_string()), "{listing}");

    // B refuses A's session, naming the owner.
    let (status, body) = common::request(b.addr(), "GET", &format!("/sessions/{id}"), "");
    assert_eq!(status, 421, "{body}");
    assert!(body.contains("misdirected"), "{body}");
    assert!(body.contains(&addr_a.to_string()), "{body}");

    // A serves its own session normally despite the ring.
    let (status, _) = common::request(a.addr(), "POST", "/match", &match_request(id));
    assert_eq!(status, 200);

    a.shutdown();
    a.join();
    b.shutdown();
    b.join();
}

#[test]
fn topology_flag_conflicts_name_the_offending_flag() {
    let err = Server::start(ServerConfig {
        follow: Some("127.0.0.1:1".to_string()),
        state_dir: Some(state_dir("conflict")),
        ..Default::default()
    })
    .map(|_| ())
    .unwrap_err();
    assert!(err.to_string().contains("--follow"), "{err}");
    assert!(err.to_string().contains("--state-dir"), "{err}");

    let err = Server::start(ServerConfig {
        repl_addr: Some("127.0.0.1:0".to_string()),
        ..Default::default()
    })
    .map(|_| ())
    .unwrap_err();
    assert!(err.to_string().contains("--repl-addr"), "{err}");
    assert!(err.to_string().contains("--state-dir"), "{err}");

    let err = Server::start(ServerConfig {
        peers: vec!["10.0.0.1:7700".to_string(), "10.0.0.2:7700".to_string()],
        advertise: Some("10.0.0.9:7700".to_string()),
        ..Default::default()
    })
    .map(|_| ())
    .unwrap_err();
    assert!(err.to_string().contains("10.0.0.9:7700"), "{err}");
}
