//! The tentpole guarantee: driving the IDE loop over HTTP produces
//! results **bit-identical** to the same flow through the offline
//! [`PandaSession`] — the server adds transport, not semantics.

mod common;

use panda_serve::api::{
    CreateSessionRequest, LfSpec, MatchRequest, MatchResponse, SessionConfigDto, SessionResponse,
};
use panda_serve::{Server, ServerConfig};
use panda_session::{DebugQuery, PandaSession};
use panda_table::CandidatePair;

fn create_request() -> CreateSessionRequest {
    let (left_csv, right_csv, gold) = common::demo_csvs();
    CreateSessionRequest {
        left_csv,
        right_csv,
        gold: Some(gold),
        config: Some(SessionConfigDto {
            auto_lfs: Some(false),
            ..Default::default()
        }),
    }
}

fn lf_specs() -> Vec<LfSpec> {
    vec![
        LfSpec {
            name: "name_overlap".into(),
            kind: "similarity".into(),
            attr: Some("name".into()),
            upper: Some(0.5),
            lower: Some(0.1),
            ..Default::default()
        },
        LfSpec {
            name: "price_tol".into(),
            kind: "numeric_tolerance".into(),
            attr: Some("price".into()),
            match_tol: Some(0.05),
            unmatch_tol: Some(0.5),
            ..Default::default()
        },
    ]
}

#[test]
fn server_flow_is_bit_identical_to_offline_session() {
    let create = create_request();
    let probe_pairs: Vec<Vec<u32>> = vec![vec![0, 0], vec![1, 1], vec![2, 5], vec![7, 7]];

    // ---- Offline reference: the same flow through the library. ----
    let tables = panda_serve::api::build_tables(&create).unwrap();
    let config = create.config.clone().unwrap().resolve().unwrap();
    let mut offline = PandaSession::load(tables, config);
    for spec in lf_specs() {
        offline
            .upsert_lf_incremental(spec.build().unwrap())
            .unwrap();
    }
    offline.fit();
    let offline_rows = offline.debug_pairs("name_overlap", DebugQuery::VotedMatch, 10);
    let offline_scores: Vec<f64> = probe_pairs
        .iter()
        .map(|p| offline.score_pair(CandidatePair::new(p[0], p[1])).unwrap())
        .collect();

    // ---- The same flow over the wire. ----
    let handle = Server::start(ServerConfig {
        workers: 2,
        ..Default::default()
    })
    .unwrap();
    let addr = handle.addr();

    let (status, body) = common::request(
        addr,
        "POST",
        "/sessions",
        &serde_json::to_string(&create).unwrap(),
    );
    assert_eq!(status, 200, "{body}");
    let created: SessionResponse = serde_json::from_str(&body).unwrap();
    let id = created.session;

    for spec in lf_specs() {
        let (status, body) = common::request(
            addr,
            "POST",
            &format!("/sessions/{id}/lfs"),
            &serde_json::to_string(&spec).unwrap(),
        );
        assert_eq!(status, 200, "{body}");
    }

    let (status, fit_body) = common::request(addr, "POST", &format!("/sessions/{id}/fit"), "");
    assert_eq!(status, 200, "{fit_body}");

    // Snapshot parity: EM stats, every LF stats row, event count — the
    // whole panel state serializes identically.
    let expected = serde_json::to_string(&SessionResponse {
        session: id,
        snapshot: offline.snapshot(),
    })
    .unwrap();
    assert_eq!(fit_body, expected, "server snapshot != offline snapshot");

    // Query parity: same rows, same order, same posteriors.
    let (status, q_body) = common::request(
        addr,
        "POST",
        &format!("/sessions/{id}/query"),
        r#"{"lf":"name_overlap","query":"VotedMatch","limit":10}"#,
    );
    assert_eq!(status, 200, "{q_body}");
    let expected_rows = format!(
        "{{\"rows\":{}}}",
        serde_json::to_string(&offline_rows).unwrap()
    );
    assert_eq!(q_body, expected_rows, "server query != offline debug_pairs");

    // Match parity: ad-hoc scores are the exact same f64s.
    let (status, m_body) = common::request(
        addr,
        "POST",
        "/match",
        &serde_json::to_string(&MatchRequest {
            session: id,
            pairs: probe_pairs,
        })
        .unwrap(),
    );
    assert_eq!(status, 200, "{m_body}");
    let scores: MatchResponse = serde_json::from_str(&m_body).unwrap();
    assert_eq!(scores.scores, offline_scores, "server scores != offline");

    // A pair that is also a candidate scores its fitted posterior exactly.
    let cand0 = offline.candidates().get(0).unwrap();
    let (_, one) = common::request(
        addr,
        "POST",
        "/match",
        &format!(
            r#"{{"session":{id},"pairs":[[{},{}]]}}"#,
            cand0.left.0, cand0.right.0
        ),
    );
    let one: MatchResponse = serde_json::from_str(&one).unwrap();
    assert_eq!(one.scores[0], offline.posteriors()[0]);

    handle.shutdown();
    handle.join();
}
