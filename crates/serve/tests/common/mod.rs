//! Shared helpers for the serve integration tests: a tiny blocking HTTP
//! client and a deterministic demo dataset.
#![allow(dead_code)]

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};

/// Issue one request; returns `(status, body)`.
pub fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("send");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("recv");
    let status: u16 = raw
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unparseable response: {raw:?}"));
    let body = raw.split("\r\n\r\n").nth(1).unwrap_or_default().to_string();
    (status, body)
}

/// A small product-matching task with overlapping vocabulary, enough rows
/// for blocking to find candidates, and known gold pairs.
pub fn demo_csvs() -> (String, String, Vec<Vec<u32>>) {
    let brands = [
        "acme", "zenith", "orion", "vertex", "nimbus", "quartz", "ember", "cobalt",
    ];
    let mut left = String::from("id,name,price\n");
    let mut right = String::from("id,name,price\n");
    let mut gold = Vec::new();
    for (i, brand) in brands.iter().enumerate() {
        left.push_str(&format!(
            "{i},{brand} turbo widget model {i},{}\n",
            100 + i * 10
        ));
        right.push_str(&format!(
            "{i},{brand} widget turbo mk {i},{}\n",
            101 + i * 10
        ));
        gold.push(vec![i as u32, i as u32]);
    }
    (left, right, gold)
}
