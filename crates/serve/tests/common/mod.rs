//! Shared helpers for the serve integration tests: a tiny blocking HTTP
//! client and a deterministic demo dataset.
#![allow(dead_code)]

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};

/// Issue one request on a fresh connection (`Connection: close`, so the
/// server ends the stream after the response); returns `(status, body)`.
pub fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("send");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("recv");
    let status: u16 = raw
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unparseable response: {raw:?}"));
    let body = raw.split("\r\n\r\n").nth(1).unwrap_or_default().to_string();
    (status, body)
}

/// A persistent-connection client: many requests over one socket.
pub struct KeepAliveClient {
    stream: TcpStream,
}

impl KeepAliveClient {
    pub fn connect(addr: SocketAddr) -> KeepAliveClient {
        KeepAliveClient {
            stream: TcpStream::connect(addr).expect("connect"),
        }
    }

    /// Send one request and read exactly one response (keep-alive framing
    /// via `Content-Length`); returns the raw response string.
    pub fn roundtrip_raw(&mut self, method: &str, path: &str, body: &str) -> String {
        self.send(method, path, body);
        self.read_response()
    }

    /// Send one request and return `(status, body)`.
    pub fn roundtrip(&mut self, method: &str, path: &str, body: &str) -> (u16, String) {
        let raw = self.roundtrip_raw(method, path, body);
        split_response(&raw)
    }

    /// Write one request without waiting for the response (pipelining).
    pub fn send(&mut self, method: &str, path: &str, body: &str) {
        write!(
            self.stream,
            "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .expect("send");
    }

    /// Read exactly one `Content-Length`-framed response off the socket.
    pub fn read_response(&mut self) -> String {
        let mut raw = Vec::new();
        let mut byte = [0u8; 1];
        // Head first (byte-at-a-time is fine at test scale).
        while !raw.ends_with(b"\r\n\r\n") {
            let n = self.stream.read(&mut byte).expect("recv head");
            assert!(n > 0, "eof mid-head: {:?}", String::from_utf8_lossy(&raw));
            raw.push(byte[0]);
        }
        let head = String::from_utf8(raw.clone()).expect("utf8 head");
        let len: usize = head
            .lines()
            .find_map(|l| {
                l.to_ascii_lowercase()
                    .strip_prefix("content-length:")
                    .map(str::trim)
                    .map(String::from)
            })
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("no content-length in {head:?}"));
        let mut body = vec![0u8; len];
        self.stream.read_exact(&mut body).expect("recv body");
        raw.extend_from_slice(&body);
        String::from_utf8(raw).expect("utf8 response")
    }

    pub fn stream(&mut self) -> &mut TcpStream {
        &mut self.stream
    }
}

/// Split a raw HTTP response into `(status, body)`.
pub fn split_response(raw: &str) -> (u16, String) {
    let status: u16 = raw
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unparseable response: {raw:?}"));
    let body = raw.split("\r\n\r\n").nth(1).unwrap_or_default().to_string();
    (status, body)
}

/// A small product-matching task with overlapping vocabulary, enough rows
/// for blocking to find candidates, and known gold pairs.
pub fn demo_csvs() -> (String, String, Vec<Vec<u32>>) {
    let brands = [
        "acme", "zenith", "orion", "vertex", "nimbus", "quartz", "ember", "cobalt",
    ];
    let mut left = String::from("id,name,price\n");
    let mut right = String::from("id,name,price\n");
    let mut gold = Vec::new();
    for (i, brand) in brands.iter().enumerate() {
        left.push_str(&format!(
            "{i},{brand} turbo widget model {i},{}\n",
            100 + i * 10
        ));
        right.push_str(&format!(
            "{i},{brand} widget turbo mk {i},{}\n",
            101 + i * 10
        ));
        gold.push(vec![i as u32, i as u32]);
    }
    (left, right, gold)
}
