//! Proves `POST /sessions/{id}/lfs` is O(new LF): the journal for the
//! request contains the single-column `lf.matrix.add_column` span and no
//! full-matrix `lf.matrix.apply` span (and no per-LF `lf.apply` events).
//!
//! Lives alone in this binary: the obs journal is process-global, so any
//! concurrent test in the same process would contaminate the drain.

mod common;

use panda_serve::api::{CreateSessionRequest, SessionConfigDto};
use panda_serve::{Server, ServerConfig};

#[test]
fn adding_an_lf_never_reapplies_the_matrix() {
    panda_obs::reset();
    panda_obs::set_enabled(true);
    panda_obs::set_journal_enabled(true);

    let handle = Server::start(ServerConfig {
        workers: 1,
        ..Default::default()
    })
    .unwrap();
    let addr = handle.addr();

    let (left_csv, right_csv, gold) = common::demo_csvs();
    let create = CreateSessionRequest {
        left_csv,
        right_csv,
        gold: Some(gold),
        config: Some(SessionConfigDto {
            auto_lfs: Some(false),
            ..Default::default()
        }),
    };
    let (status, body) = common::request(
        addr,
        "POST",
        "/sessions",
        &serde_json::to_string(&create).unwrap(),
    );
    assert_eq!(status, 200, "{body}");

    // Load legitimately runs a full apply; flush its telemetry so the
    // journal covers *only* the LF-add request.
    panda_obs::journal_drain();

    let lf = r#"{"name":"name_overlap","kind":"similarity","attr":"name","upper":0.5,"lower":0.1}"#;
    let (status, body) = common::request(addr, "POST", "/sessions/1/lfs", lf);
    assert_eq!(status, 200, "{body}");

    let journal = panda_obs::journal_drain().to_jsonl();
    assert!(
        journal.contains("serve.request"),
        "request span/event missing from journal:\n{journal}"
    );
    assert!(
        journal.contains("lf.matrix.add_column"),
        "incremental column add missing from journal:\n{journal}"
    );
    assert!(
        journal.contains("\"lf.column\""),
        "per-column event missing from journal:\n{journal}"
    );
    assert!(
        !journal.contains("lf.matrix.apply"),
        "full-matrix apply span fired on an incremental add:\n{journal}"
    );
    assert!(
        !journal.contains("\"lf.apply\""),
        "full-apply per-LF events fired on an incremental add:\n{journal}"
    );

    handle.shutdown();
    handle.join();
    panda_obs::set_journal_enabled(false);
    panda_obs::set_enabled(false);
}
