//! Wire-level robustness: structured errors, body caps, load shedding,
//! and graceful drain — the behaviors a client can rely on under abuse.

mod common;

use panda_serve::{Server, ServerConfig};
use std::io::{Read, Write};
use std::net::TcpStream;

#[test]
fn malformed_json_and_unknown_routes_are_structured_errors() {
    let handle = Server::start(ServerConfig {
        workers: 2,
        ..Default::default()
    })
    .unwrap();
    let addr = handle.addr();

    let (status, body) = common::request(addr, "POST", "/sessions", "{not json");
    assert_eq!(status, 400);
    assert!(body.contains("\"code\":\"bad_json\""), "{body}");

    let (status, body) = common::request(addr, "GET", "/no/such/route", "");
    assert_eq!(status, 404);
    assert!(body.contains("\"code\":\"not_found\""), "{body}");

    let (status, body) = common::request(addr, "DELETE", "/metrics", "");
    assert_eq!(status, 405);
    assert!(body.contains("\"code\":\"method_not_allowed\""), "{body}");

    let (status, body) = common::request(addr, "POST", "/sessions/999/fit", "");
    assert_eq!(status, 404);
    assert!(body.contains("\"code\":\"unknown_session\""), "{body}");

    handle.shutdown();
    handle.join();
}

#[test]
fn oversized_bodies_get_413() {
    let handle = Server::start(ServerConfig {
        workers: 1,
        max_body: 128,
        ..Default::default()
    })
    .unwrap();
    let addr = handle.addr();
    let big = "x".repeat(4096);
    let (status, body) = common::request(addr, "POST", "/sessions", &big);
    assert_eq!(status, 413);
    assert!(body.contains("\"code\":\"payload_too_large\""), "{body}");
    handle.shutdown();
    handle.join();
}

#[test]
fn zero_conn_budget_sheds_with_503() {
    // a 0-connection budget makes every request shed — a deterministic
    // probe of the overload path that normally needs a saturated shard.
    let handle = Server::start(ServerConfig {
        workers: 1,
        max_conns: 0,
        ..Default::default()
    })
    .unwrap();
    let addr = handle.addr();
    let (status, body) = common::request(addr, "GET", "/healthz", "");
    assert_eq!(status, 503);
    assert!(body.contains("\"code\":\"overloaded\""), "{body}");
    handle.shutdown();
    handle.join();
}

#[test]
fn shutdown_drains_inflight_requests() {
    let handle = Server::start(ServerConfig {
        workers: 2,
        ..Default::default()
    })
    .unwrap();
    let addr = handle.addr();

    // Open a connection and send only half the request, then trigger
    // shutdown: the worker must still serve the straggler to completion.
    let mut slow = TcpStream::connect(addr).unwrap();
    write!(slow, "GET /healthz HTTP/1.1\r\n").unwrap();
    // Let the event loop read the partial head before the latch flips,
    // so the straggler is genuinely mid-request at shutdown.
    std::thread::sleep(std::time::Duration::from_millis(200));

    let (status, _) = common::request(addr, "POST", "/shutdown", "");
    assert_eq!(status, 200);

    write!(slow, "Host: t\r\n\r\n").unwrap();
    let mut raw = String::new();
    slow.read_to_string(&mut raw).unwrap();
    assert!(
        raw.starts_with("HTTP/1.1 200"),
        "in-flight request dropped during drain: {raw:?}"
    );
    handle.join();
}
