//! The observability plane end-to-end, over real sockets: Prometheus
//! exposition conformance (validated by the in-tree parser), request-id
//! uniqueness across shards under concurrent keep-alive load, and the
//! `/events` journal tail's cursor contract (gap-free resume, long-poll
//! wakeup, drop-oldest wraparound accounting).
//!
//! The obs registry and journal ring are process-global, so every test
//! serializes on [`obs_lock`] and sets up its own telemetry state.

mod common;

use common::KeepAliveClient;
use panda_serve::{Server, ServerConfig};
use serde::Value;
use std::collections::HashSet;
use std::sync::{Mutex, MutexGuard};

static OBS: Mutex<()> = Mutex::new(());

/// Serialize tests that touch the process-global obs state, and start
/// each one from a clean, fully-enabled plane.
fn obs_lock() -> MutexGuard<'static, ()> {
    let guard = OBS.lock().unwrap_or_else(|e| e.into_inner());
    panda_obs::reset();
    panda_obs::set_journal_capacity(panda_obs::DEFAULT_JOURNAL_CAPACITY);
    let _ = panda_obs::journal_drain();
    panda_obs::set_enabled(true);
    panda_obs::set_journal_enabled(true);
    guard
}

fn as_u64(v: &Value) -> u64 {
    match v {
        Value::UInt(u) => *u,
        Value::Int(i) => u64::try_from(*i).expect("non-negative"),
        other => panic!("expected integer, got {other:?}"),
    }
}

/// Parse an `/events` body into `(next, missed, events)`.
fn parse_events(body: &str) -> (u64, u64, Vec<Value>) {
    let v = serde_json::parse_value(body).expect("events body is JSON");
    let next = as_u64(v.get_field("next").expect("next cursor"));
    let missed = as_u64(v.get_field("missed").expect("missed count"));
    let events = match v.get_field("events") {
        Some(Value::Array(items)) => items.clone(),
        other => panic!("expected events array, got {other:?}"),
    };
    (next, missed, events)
}

fn event_seq(e: &Value) -> u64 {
    as_u64(e.get_field("seq").expect("event seq"))
}

#[test]
fn prometheus_exposition_from_a_live_server_is_conformant() {
    let _guard = obs_lock();
    let handle = Server::start(ServerConfig {
        workers: 2,
        ..Default::default()
    })
    .unwrap();
    let addr = handle.addr();

    // Mixed traffic so the exposition has real RED series: 200s, a 404,
    // and a 405.
    let mut client = KeepAliveClient::connect(addr);
    for _ in 0..20 {
        let (status, _) = client.roundtrip("GET", "/healthz", "");
        assert_eq!(status, 200);
    }
    let (status, _) = common::request(addr, "GET", "/no/such/route", "");
    assert_eq!(status, 404);
    let (status, _) = common::request(addr, "PUT", "/healthz", "");
    assert_eq!(status, 405);

    // Default content negotiation is JSON; ?format=prometheus switches.
    let (status, json_body) = common::request(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    assert!(json_body.starts_with('{'), "JSON default: {json_body}");
    let (status, text) = common::request(addr, "GET", "/metrics?format=prometheus", "");
    assert_eq!(status, 200);
    let (status, err) = common::request(addr, "GET", "/metrics?format=xml", "");
    assert_eq!(status, 400, "{err}");

    // The in-tree parser enforces the 0.0.4 exposition rules: TYPE
    // lines, family membership, no duplicate series, histogram bucket
    // monotonicity, +Inf/_count agreement.
    let families = panda_obs::prom::parse(&text).expect("conformant exposition");
    let family = |name: &str| {
        families
            .iter()
            .find(|f| f.name == name)
            .unwrap_or_else(|| panic!("family {name} in exposition"))
    };

    let requests = family("serve_http_requests_total");
    assert_eq!(requests.kind, "counter");
    let healthz_200 = requests
        .samples
        .iter()
        .find(|s| s.label("route") == Some("/healthz") && s.label("status") == Some("200"))
        .expect("healthz 200 series");
    assert!(healthz_200.value >= 20.0, "{}", healthz_200.value);
    assert!(
        healthz_200.label("shard").is_some(),
        "requests are shard-labelled"
    );
    assert!(requests
        .samples
        .iter()
        .any(|s| s.label("status") == Some("404")));
    assert!(requests
        .samples
        .iter()
        .any(|s| s.label("status") == Some("405")));

    let latency = family("serve_http_latency_seconds");
    assert_eq!(latency.kind, "histogram");
    let count = latency
        .samples
        .iter()
        .filter(|s| s.name.ends_with("_count"))
        .map(|s| s.value)
        .sum::<f64>();
    assert!(count >= 22.0, "latency histogram covers the traffic");

    assert_eq!(family("serve_loop_accepts_total").kind, "counter");
    assert_eq!(family("serve_loop_connections").kind, "gauge");

    handle.shutdown();
    handle.join();
}

#[test]
fn request_ids_are_unique_across_shards_under_concurrent_load() {
    let _guard = obs_lock();
    let handle = Server::start(ServerConfig {
        workers: 2,
        ..Default::default()
    })
    .unwrap();
    let addr = handle.addr();

    const CLIENTS: usize = 4;
    const REQUESTS: usize = 50;
    let collectors: Vec<_> = (0..CLIENTS)
        .map(|_| {
            std::thread::spawn(move || -> Vec<String> {
                let mut client = KeepAliveClient::connect(addr);
                (0..REQUESTS)
                    .map(|_| {
                        let raw = client.roundtrip_raw("GET", "/healthz", "");
                        let start = raw
                            .find("X-Request-Id: ")
                            .expect("every response carries a request id")
                            + "X-Request-Id: ".len();
                        let end = raw[start..].find("\r\n").unwrap() + start;
                        raw[start..end].to_string()
                    })
                    .collect()
            })
        })
        .collect();

    let mut seen = HashSet::new();
    let mut shards = HashSet::new();
    for c in collectors {
        for rid in c.join().expect("collector thread") {
            let (shard, n) = rid.split_once('-').expect("rid is <shard>-<n>");
            shard.parse::<u64>().expect("numeric shard");
            n.parse::<u64>().expect("numeric counter");
            shards.insert(shard.to_string());
            assert!(seen.insert(rid.clone()), "duplicate request id {rid}");
        }
    }
    assert_eq!(seen.len(), CLIENTS * REQUESTS);
    // SO_REUSEPORT spreads 4 connections over 2 shards; ids from
    // different shards must still never collide (the prefix guarantees
    // it — but verify, that is the point of the test).
    assert!(!shards.is_empty());

    handle.shutdown();
    handle.join();
}

#[test]
fn events_tail_resumes_gap_free_and_correlates_request_ids() {
    let _guard = obs_lock();
    let handle = Server::start(ServerConfig {
        workers: 1,
        ..Default::default()
    })
    .unwrap();
    let addr = handle.addr();

    let mut client = KeepAliveClient::connect(addr);
    for _ in 0..5 {
        let (status, _) = client.roundtrip("GET", "/healthz", "");
        assert_eq!(status, 200);
    }

    let (status, body) = common::request(addr, "GET", "/events?since=0", "");
    assert_eq!(status, 200);
    let (next, missed, events) = parse_events(&body);
    assert_eq!(missed, 0);
    assert!(events.len() >= 5, "{} events", events.len());
    let seqs: Vec<u64> = events.iter().map(event_seq).collect();
    assert!(seqs.windows(2).all(|w| w[1] == w[0] + 1), "contiguous tail");
    assert_eq!(next, seqs.last().unwrap() + 1, "cursor is one past");
    // serve.request events carry the same rid the response advertised.
    let rids: Vec<&Value> = events
        .iter()
        .filter(|e| matches!(e.get_field("kind"), Some(Value::Str(k)) if k == "serve.request"))
        .map(|e| {
            e.get_field("fields")
                .and_then(|f| f.get_field("rid"))
                .expect("serve.request stamped with rid")
        })
        .collect();
    assert!(rids.len() >= 5);

    // More traffic, then resume from the cursor: no duplicates, no gaps.
    for _ in 0..3 {
        let (status, _) = client.roundtrip("GET", "/healthz", "");
        assert_eq!(status, 200);
    }
    let (status, body) = common::request(addr, "GET", &format!("/events?since={next}"), "");
    assert_eq!(status, 200);
    let (next2, missed, events) = parse_events(&body);
    assert_eq!(missed, 0);
    assert!(!events.is_empty());
    assert!(event_seq(&events[0]) >= next, "no replayed events");
    assert_eq!(event_seq(&events[0]), next, "no gap after the cursor");
    assert!(next2 > next);

    handle.shutdown();
    handle.join();
}

#[test]
fn events_long_poll_parks_until_new_events_arrive() {
    let _guard = obs_lock();
    let handle = Server::start(ServerConfig {
        workers: 1,
        ..Default::default()
    })
    .unwrap();
    let addr = handle.addr();

    // Park a poller at the journal head: nothing to return yet.
    let head = panda_obs::journal_next_seq();
    let poller = std::thread::spawn(move || {
        let started = std::time::Instant::now();
        let (status, body) = common::request(
            addr,
            "GET",
            &format!("/events?since={head}&timeout_ms=10000"),
            "",
        );
        (status, body, started.elapsed())
    });

    // Give the poll time to park, then generate an event.
    std::thread::sleep(std::time::Duration::from_millis(200));
    let (status, _) = common::request(addr, "GET", "/healthz", "");
    assert_eq!(status, 200);

    let (status, body, waited) = poller.join().expect("poller thread");
    assert_eq!(status, 200);
    let (_, missed, events) = parse_events(&body);
    assert_eq!(missed, 0);
    assert!(!events.is_empty(), "woken poll returns the new events");
    assert!(events.iter().all(|e| event_seq(e) >= head));
    assert!(
        waited < std::time::Duration::from_secs(9),
        "poll was woken by the event, not its deadline ({waited:?})"
    );

    handle.shutdown();
    handle.join();
}

#[test]
fn events_wraparound_reports_missed_and_resumes_clean() {
    let _guard = obs_lock();
    panda_obs::set_journal_capacity(8);
    let handle = Server::start(ServerConfig {
        workers: 1,
        ..Default::default()
    })
    .unwrap();
    let addr = handle.addr();

    // Far more events than the ring holds: the oldest are evicted.
    let mut client = KeepAliveClient::connect(addr);
    for _ in 0..30 {
        let (status, _) = client.roundtrip("GET", "/healthz", "");
        assert_eq!(status, 200);
    }

    let (status, body) = common::request(addr, "GET", "/events?since=0", "");
    assert_eq!(status, 200);
    let (next, missed, events) = parse_events(&body);
    assert!(missed > 0, "ring wrapped; the tail must say so");
    assert!(events.len() <= 8, "at most the ring window");
    let seqs: Vec<u64> = events.iter().map(event_seq).collect();
    assert!(
        seqs.windows(2).all(|w| w[1] == w[0] + 1),
        "window is contiguous"
    );
    assert_eq!(next, seqs.last().unwrap() + 1);

    // Resuming from the returned cursor is gap-free (nothing evicted
    // from under an up-to-date cursor while traffic is stopped).
    let (status, body) = common::request(addr, "GET", &format!("/events?since={next}"), "");
    assert_eq!(status, 200);
    let (_, missed, _) = parse_events(&body);
    assert_eq!(missed, 0, "fresh cursor sees no further loss");

    panda_obs::set_journal_capacity(panda_obs::DEFAULT_JOURNAL_CAPACITY);
    handle.shutdown();
    handle.join();
}
