//! The connection state machine under realistic client behavior:
//! keep-alive reuse, pipelining, slowloris eviction, byte parity with
//! fresh connections, and prompt drain of idle persistent connections.

mod common;

use common::KeepAliveClient;
use panda_serve::{Server, ServerConfig};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

#[test]
fn keep_alive_serves_many_requests_on_one_socket() {
    let handle = Server::start(ServerConfig {
        workers: 2,
        ..Default::default()
    })
    .unwrap();
    let mut client = KeepAliveClient::connect(handle.addr());
    for _ in 0..50 {
        let (status, body) = client.roundtrip("GET", "/healthz", "");
        assert_eq!(status, 200);
        assert_eq!(body, r#"{"status":"ok"}"#);
    }
    handle.shutdown();
    handle.join();
}

#[test]
fn pipelined_requests_are_answered_in_order() {
    let handle = Server::start(ServerConfig {
        workers: 1,
        ..Default::default()
    })
    .unwrap();
    let mut client = KeepAliveClient::connect(handle.addr());
    // Write all requests back-to-back before reading any response: the
    // server must answer each, in order, on the same socket.
    const N: usize = 10;
    for _ in 0..N {
        client.send("GET", "/healthz", "");
    }
    client.send("GET", "/no/such/route", "");
    for _ in 0..N {
        let raw = client.read_response();
        assert!(raw.starts_with("HTTP/1.1 200"), "{raw}");
        assert!(raw.contains("Connection: keep-alive"), "{raw}");
    }
    let raw = client.read_response();
    assert!(raw.starts_with("HTTP/1.1 404"), "order violated: {raw}");
    handle.shutdown();
    handle.join();
}

#[test]
fn keep_alive_responses_match_fresh_connection_bytes() {
    // Wire-parity across connection reuse: request k on a persistent
    // connection must produce byte-identical responses to the same
    // request on a fresh connection, modulo only the Connection header.
    let handle = Server::start(ServerConfig {
        workers: 1,
        ..Default::default()
    })
    .unwrap();
    let addr = handle.addr();

    let fresh = |path: &str| -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(
            stream,
            "GET {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\nContent-Type: application/json\r\nContent-Length: 0\r\n\r\n"
        )
        .unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        raw
    };

    // Each response carries a unique X-Request-Id; strip it (and assert
    // presence) before comparing the remaining bytes.
    fn strip_rid(raw: &str) -> String {
        let start = raw.find("X-Request-Id: ").expect("correlation id present");
        let end = raw[start..].find("\r\n").unwrap() + start + 2;
        format!("{}{}", &raw[..start], &raw[end..])
    }

    let mut client = KeepAliveClient::connect(addr);
    for path in ["/healthz", "/metrics-not-a-route", "/healthz"] {
        let reused = client.roundtrip_raw("GET", path, "");
        let once = fresh(path);
        assert_eq!(
            strip_rid(&reused).replace("Connection: keep-alive", "Connection: close"),
            strip_rid(&once),
            "byte parity violated for {path}"
        );
    }
    handle.shutdown();
    handle.join();
}

#[test]
fn slowloris_partial_head_is_evicted_with_408() {
    let handle = Server::start(ServerConfig {
        workers: 1,
        read_timeout: Duration::from_millis(300),
        ..Default::default()
    })
    .unwrap();
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    // A dripped, never-completed head: the per-request deadline (anchored
    // at the first byte, NOT extended by later drips) must evict it.
    write!(stream, "GET /healthz HT").unwrap();
    std::thread::sleep(Duration::from_millis(150));
    write!(stream, "TP/1.1\r\nHos").unwrap(); // still no terminator
    let started = Instant::now();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    assert!(raw.starts_with("HTTP/1.1 408"), "{raw}");
    assert!(raw.contains("\"code\":\"request_timeout\""), "{raw}");
    assert!(
        started.elapsed() < Duration::from_secs(3),
        "eviction took {:?}",
        started.elapsed()
    );
    handle.shutdown();
    handle.join();
}

#[test]
fn idle_keep_alive_connection_is_reaped_silently() {
    let handle = Server::start(ServerConfig {
        workers: 1,
        keep_alive_timeout: Duration::from_millis(300),
        ..Default::default()
    })
    .unwrap();
    let mut client = KeepAliveClient::connect(handle.addr());
    let (status, _) = client.roundtrip("GET", "/healthz", "");
    assert_eq!(status, 200);
    // Go idle past the keep-alive deadline: the server closes without
    // sending anything (no 408 — there is no request to time out).
    let mut rest = String::new();
    client.stream().read_to_string(&mut rest).unwrap();
    assert_eq!(rest, "", "idle reap must be silent");
    handle.shutdown();
    handle.join();
}

#[test]
fn max_requests_per_conn_forces_connection_close() {
    let handle = Server::start(ServerConfig {
        workers: 1,
        max_requests_per_conn: 3,
        ..Default::default()
    })
    .unwrap();
    let mut client = KeepAliveClient::connect(handle.addr());
    for i in 1..=3 {
        let raw = client.roundtrip_raw("GET", "/healthz", "");
        let expect = if i < 3 {
            "Connection: keep-alive"
        } else {
            "Connection: close"
        };
        assert!(raw.contains(expect), "request {i}: {raw}");
    }
    // The server closed the socket after the 3rd response.
    let mut rest = String::new();
    client.stream().read_to_string(&mut rest).unwrap();
    assert_eq!(rest, "");
    handle.shutdown();
    handle.join();
}

#[test]
fn shutdown_closes_idle_keep_alive_connections_promptly() {
    // The drain bugfix: an idle persistent connection must not stall
    // `join()` until the keep-alive deadline — shutdown wakes the event
    // loop and closes it immediately.
    let handle = Server::start(ServerConfig {
        workers: 2,
        keep_alive_timeout: Duration::from_secs(3600), // would stall forever
        ..Default::default()
    })
    .unwrap();
    let addr = handle.addr();

    // Park several idle keep-alive connections across the shards.
    let mut idlers: Vec<KeepAliveClient> = (0..4)
        .map(|_| {
            let mut c = KeepAliveClient::connect(addr);
            let (status, _) = c.roundtrip("GET", "/healthz", "");
            assert_eq!(status, 200);
            c
        })
        .collect();

    let started = Instant::now();
    let (status, _) = common::request(addr, "POST", "/shutdown", "");
    assert_eq!(status, 200);
    handle.join();
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "drain stalled on idle keep-alive connections: {:?}",
        started.elapsed()
    );

    // Every idler was closed by the server (EOF, no stray bytes).
    for c in &mut idlers {
        let mut rest = String::new();
        c.stream().read_to_string(&mut rest).unwrap();
        assert_eq!(rest, "");
    }
}

#[test]
fn half_closed_socket_does_not_stall_drain() {
    // A client that sends a request, shuts down its write side, but
    // never closes: drain must still complete under the deadline.
    let handle = Server::start(ServerConfig {
        workers: 1,
        keep_alive_timeout: Duration::from_secs(3600),
        ..Default::default()
    })
    .unwrap();
    let addr = handle.addr();

    let mut half = TcpStream::connect(addr).unwrap();
    write!(
        half,
        "GET /healthz HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\n\r\n"
    )
    .unwrap();
    half.shutdown(std::net::Shutdown::Write).unwrap();
    // Read the response but keep the read side open (socket half-alive).
    let mut buf = [0u8; 4096];
    let n = half.read(&mut buf).unwrap();
    assert!(n > 0);

    let started = Instant::now();
    let (status, _) = common::request(addr, "POST", "/shutdown", "");
    assert_eq!(status, 200);
    handle.join();
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "drain stalled on a half-closed socket: {:?}",
        started.elapsed()
    );
}
