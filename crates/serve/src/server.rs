//! The server core: accept loop, bounded queue, fixed worker pool,
//! graceful drain.
//!
//! Threading model (std-only, no async runtime):
//!
//! * **accept thread** — non-blocking accept; pushes connections onto a
//!   bounded queue, or answers 503 immediately when the queue is full
//!   (load shedding beats unbounded buffering). Polls the shutdown latch
//!   between accepts.
//! * **N workers** — pop a connection, apply read/write timeouts, parse,
//!   route (panics become a 500 via `catch_unwind`), respond, close. N
//!   defaults to [`panda_exec::worker_count`], so `PANDA_WORKERS` governs
//!   serving parallelism exactly like batch parallelism.
//! * **drain** — `/shutdown` or SIGTERM flips the latch; the accept
//!   thread stops, workers finish the queue (in-flight requests complete)
//!   and exit; [`ServerHandle::join`] then returns.

use crate::http::{read_request, ReadError, Request, Response};
use crate::router;
use crate::state::{AppState, StateOptions};
use std::collections::VecDeque;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Serving knobs. `Default` is sensible for tests and local use.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:7700` (`:0` for an ephemeral port).
    pub addr: String,
    /// Worker threads; `0` means [`panda_exec::worker_count`].
    pub workers: usize,
    /// Request body cap in bytes (larger → 413).
    pub max_body: usize,
    /// Accepted-but-unserved connection cap (beyond → 503).
    pub queue_depth: usize,
    /// Per-connection read timeout.
    pub read_timeout: Duration,
    /// Per-connection write timeout.
    pub write_timeout: Duration,
    /// Durable state directory (`None` = fully in-memory). With one set,
    /// startup recovers every persisted session before accepting.
    pub state_dir: Option<PathBuf>,
    /// Max sessions resident in memory (0 = unbounded); LRU entries
    /// beyond it are evicted to snapshot.
    pub max_sessions: usize,
    /// Idle time after which a session is evicted by the sweep.
    pub session_ttl: Option<Duration>,
    /// WAL appends between snapshot compactions.
    pub snapshot_every: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 0,
            max_body: 8 * 1024 * 1024,
            queue_depth: 128,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            state_dir: None,
            max_sessions: 0,
            session_ttl: None,
            snapshot_every: crate::persist::DEFAULT_SNAPSHOT_EVERY,
        }
    }
}

/// The server. Construct via [`Server::start`].
pub struct Server;

type ConnQueue = Arc<(Mutex<VecDeque<TcpStream>>, Condvar)>;

impl Server {
    /// Bind, spawn the pool, and return a handle. Serving proceeds on
    /// background threads — the caller keeps the thread it is on.
    pub fn start(config: ServerConfig) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        // Recovery happens here, before the first accept: every session
        // the state dir holds is replayed and digest-verified up front.
        let state = AppState::open(StateOptions {
            state_dir: config.state_dir.clone(),
            max_sessions: config.max_sessions,
            session_ttl: config.session_ttl,
            snapshot_every: config.snapshot_every,
        })
        .map_err(std::io::Error::other)?;
        let state = Arc::new(state);
        let queue: ConnQueue = Arc::new((Mutex::new(VecDeque::new()), Condvar::new()));
        let n_workers = if config.workers == 0 {
            panda_exec::worker_count()
        } else {
            config.workers
        };
        panda_obs::gauge_set("serve.workers", n_workers as f64);

        let mut workers = Vec::with_capacity(n_workers);
        for i in 0..n_workers {
            let state = Arc::clone(&state);
            let queue = Arc::clone(&queue);
            let config = config.clone();
            workers.push(
                std::thread::Builder::new()
                    .name(format!("panda-serve-{i}"))
                    .spawn(move || worker_loop(&state, &queue, &config))
                    .expect("spawn worker"),
            );
        }

        let accept = {
            let state = Arc::clone(&state);
            let queue = Arc::clone(&queue);
            let depth = config.queue_depth;
            std::thread::Builder::new()
                .name("panda-serve-accept".to_string())
                .spawn(move || accept_loop(&listener, &state, &queue, depth))
                .expect("spawn accept thread")
        };

        Ok(ServerHandle {
            addr,
            state,
            accept: Some(accept),
            workers,
        })
    }
}

fn accept_loop(listener: &TcpListener, state: &AppState, queue: &ConnQueue, depth: usize) {
    let (lock, cvar) = &**queue;
    let mut last_sweep = Instant::now();
    while !state.shutdown_requested() {
        // TTL sweep rides the accept thread (~1s cadence) — no dedicated
        // timer thread, and eviction never blocks a worker.
        if last_sweep.elapsed() >= Duration::from_secs(1) {
            state.sweep();
            last_sweep = Instant::now();
        }
        match listener.accept() {
            Ok((mut stream, _)) => {
                let mut q = lock.lock().unwrap_or_else(|e| e.into_inner());
                if q.len() >= depth {
                    // Shed: answer from here rather than queueing — a full
                    // queue means the workers are already saturated.
                    drop(q);
                    panda_obs::counter_add("serve.shed_503", 1);
                    Response::json(
                        503,
                        crate::api::ApiError::new("overloaded", "request queue is full").to_json(),
                    )
                    .write_to(&mut stream);
                    crate::http::drain_and_close(&mut stream);
                } else {
                    q.push_back(stream);
                    drop(q);
                    cvar.notify_one();
                }
            }
            // 1ms poll: the sleep bounds both accept latency (it is the
            // p50 floor for tiny requests) and shutdown-notice latency,
            // at ~1k wakeups/s of idle cost on one thread.
            Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(1)),
        }
    }
    // Wake every worker so they can observe the latch and drain out.
    cvar.notify_all();
}

fn worker_loop(state: &AppState, queue: &ConnQueue, config: &ServerConfig) {
    let (lock, cvar) = &**queue;
    loop {
        let stream = {
            let mut q = lock.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(s) = q.pop_front() {
                    break Some(s);
                }
                if state.shutdown_requested() {
                    break None;
                }
                // Timed wait: the accept thread's final notify_all can race
                // a worker that is not yet waiting.
                let (guard, _) = cvar
                    .wait_timeout(q, Duration::from_millis(100))
                    .unwrap_or_else(|e| e.into_inner());
                q = guard;
            }
        };
        let Some(mut stream) = stream else {
            return; // drained and shutting down
        };
        let _ = stream.set_read_timeout(Some(config.read_timeout));
        let _ = stream.set_write_timeout(Some(config.write_timeout));
        handle_connection(state, &mut stream, config.max_body);
    }
}

/// One connection: parse, route, respond. All failure modes produce a
/// response (or a silent close when the peer vanished mid-read).
fn handle_connection(state: &AppState, stream: &mut TcpStream, max_body: usize) {
    let request = match read_request(stream, max_body) {
        Ok(r) => r,
        Err(ReadError::Disconnected) => return,
        Err(ReadError::Malformed(msg)) => {
            error_response(400, "bad_request", &msg).write_to(stream);
            crate::http::drain_and_close(stream);
            return;
        }
        Err(ReadError::TooLarge { limit }) => {
            error_response(
                413,
                "payload_too_large",
                &format!("request body exceeds the {limit}-byte cap"),
            )
            .write_to(stream);
            crate::http::drain_and_close(stream);
            return;
        }
    };
    let response = route_safely(state, &request);
    response.write_to(stream);
    crate::http::drain_and_close(stream);
}

/// Route with panic isolation: a handler bug answers 500 and the worker
/// lives on.
fn route_safely(state: &AppState, request: &Request) -> Response {
    catch_unwind(AssertUnwindSafe(|| router::handle(state, request))).unwrap_or_else(|payload| {
        let msg = if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "handler panicked (non-string payload)".to_string()
        };
        panda_obs::counter_add("serve.handler_panics", 1);
        error_response(500, "internal_error", &msg)
    })
}

fn error_response(status: u16, code: &str, message: &str) -> Response {
    Response::json(status, crate::api::ApiError::new(code, message).to_json())
}

/// A running server: its address, its shared state, and its threads.
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<AppState>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves `:0` to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared state (embedding servers may pre-register sessions).
    pub fn state(&self) -> &Arc<AppState> {
        &self.state
    }

    /// Request a graceful drain (same effect as `POST /shutdown`).
    pub fn shutdown(&self) {
        self.state.request_shutdown();
    }

    /// Block until the accept thread and every worker have exited. Call
    /// after [`ServerHandle::shutdown`] (or let a client hit `/shutdown`).
    pub fn join(mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        // Workers are gone — compact every dirty session so the next
        // start replays zero WAL records.
        self.state.compact_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};

    fn get(addr: SocketAddr, path: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET {path} HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        let status: u16 = raw.split(' ').nth(1).unwrap().parse().unwrap();
        let body = raw.split("\r\n\r\n").nth(1).unwrap_or_default().to_string();
        (status, body)
    }

    #[test]
    fn serves_health_and_drains_on_shutdown() {
        let handle = Server::start(ServerConfig {
            workers: 2,
            ..Default::default()
        })
        .unwrap();
        let addr = handle.addr();
        let (status, body) = get(addr, "/healthz");
        assert_eq!(status, 200);
        assert_eq!(body, r#"{"status":"ok"}"#);

        // POST /shutdown over the wire, then join must return.
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(
            stream,
            "POST /shutdown HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\n\r\n"
        )
        .unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        assert!(raw.contains("draining"));
        handle.join();
    }

    #[test]
    fn oversized_body_gets_413_and_garbage_gets_400() {
        let handle = Server::start(ServerConfig {
            workers: 1,
            max_body: 64,
            ..Default::default()
        })
        .unwrap();
        let addr = handle.addr();

        let mut stream = TcpStream::connect(addr).unwrap();
        write!(
            stream,
            "POST /sessions HTTP/1.1\r\nHost: t\r\nContent-Length: 9999\r\n\r\n"
        )
        .unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        assert!(raw.starts_with("HTTP/1.1 413"), "{raw}");
        assert!(raw.contains("payload_too_large"));

        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(b"THIS IS NOT HTTP\r\n\r\n").unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        assert!(raw.starts_with("HTTP/1.1 400"), "{raw}");

        handle.shutdown();
        handle.join();
    }
}
