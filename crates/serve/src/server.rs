//! The server core: per-worker epoll event loops over non-blocking
//! connection state machines, with `SO_REUSEPORT` accept sharding.
//!
//! Threading model (std-only, no async runtime):
//!
//! * **N workers**, each owning its *own* listener (bound with
//!   `SO_REUSEPORT`, so the kernel shards incoming connections across
//!   workers — no single accept thread serializes admission) and its own
//!   [`crate::net::Epoll`] instance. A worker accepts, reads, parses,
//!   routes (panics become a 500 via `catch_unwind`), and writes
//!   entirely on its event loop; connections never migrate between
//!   workers. N defaults to [`panda_exec::worker_count`], so
//!   `PANDA_WORKERS` governs serving parallelism exactly like batch
//!   parallelism.
//! * **Connections** are non-blocking state machines: reading (head +
//!   body, incrementally parsed), handling, writing, and — on close
//!   paths — draining (write side shut, unread request bytes discarded
//!   so the response is not destroyed by a TCP RST). Keep-alive and
//!   pipelining are native: a connection loops back to reading after
//!   each response, and back-to-back requests already buffered are
//!   answered in order without waiting for more readiness events.
//! * **Deadlines** replace blocking socket timeouts, per state: a
//!   partially received request must complete within `read_timeout`
//!   (slowloris eviction → 408), a queued response must drain within
//!   `write_timeout`, an *idle* persistent connection is closed
//!   silently after `keep_alive_timeout`, and the TTL session sweep
//!   rides shard 0's timer — there is no dedicated timer thread.
//! * **drain** — `/shutdown` or SIGTERM flips the latch and wakes every
//!   event loop via its self-pipe ([`crate::signal::wake_all`]). Each
//!   worker stops accepting, closes idle keep-alive connections
//!   immediately, lets in-flight requests finish (their responses are
//!   sent with `Connection: close`), and exits; [`ServerHandle::join`]
//!   then returns. Per-state deadlines bound the whole drain.

use crate::http::{ReadError, RequestParser, Response};
use crate::net::{Epoll, EpollEvent, Listener, WakePipe, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT};
use crate::repl::{self, ReplHub, ShardRing};
use crate::router;
use crate::state::{AppState, StateOptions};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::os::fd::AsRawFd;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Serving knobs. `Default` is sensible for tests and local use.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:7700` (`:0` for an ephemeral port).
    pub addr: String,
    /// Event-loop workers; `0` means [`panda_exec::worker_count`].
    pub workers: usize,
    /// Request body cap in bytes (larger → 413).
    pub max_body: usize,
    /// Open connections per worker shard; beyond it, new connections are
    /// answered 503 and closed (load shedding beats unbounded buffering).
    pub max_conns: usize,
    /// A partially received request must complete within this, measured
    /// from its first byte (expiry → 408 and close).
    pub read_timeout: Duration,
    /// A queued response must drain within this (expiry → close).
    pub write_timeout: Duration,
    /// Idle persistent connections are closed after this.
    pub keep_alive_timeout: Duration,
    /// Requests served per connection before the server forces
    /// `Connection: close` (0 = unbounded). Bounds per-client
    /// monopolization of a shard.
    pub max_requests_per_conn: u64,
    /// Bind one `SO_REUSEPORT` listener per worker (kernel accept
    /// sharding). With `false`, all workers poll one shared listener.
    pub reuseport: bool,
    /// Durable state directory (`None` = fully in-memory). With one set,
    /// startup recovers every persisted session before accepting.
    pub state_dir: Option<PathBuf>,
    /// Max sessions resident in memory (0 = unbounded); LRU entries
    /// beyond it are evicted to snapshot.
    pub max_sessions: usize,
    /// Idle time after which a session is evicted by the sweep.
    pub session_ttl: Option<Duration>,
    /// WAL appends between snapshot compactions.
    pub snapshot_every: u64,
    /// Requests slower than this emit a `serve.slow` journal event
    /// (route, status, duration, request id). 0 disables the check.
    pub slow_request_ms: u64,
    /// Replication listener address (primary side, `:0` for ephemeral).
    /// With one set, every acknowledged WAL record is shipped to
    /// subscribed followers. Requires `state_dir` — only fsynced records
    /// are shipped.
    pub repl_addr: Option<String>,
    /// Follow a primary's replication listener (follower mode): apply
    /// shipped records in memory, serve read-only routes, answer
    /// mutations 421 with the primary's address.
    pub follow: Option<String>,
    /// Shard peers (advertised HTTP addresses, must include this
    /// server's). Builds the consistent-hash ring for session routing;
    /// empty means unsharded.
    pub peers: Vec<String>,
    /// This server's advertised HTTP address in the shard map and
    /// follower `Hello` frames (defaults to the bound address — set it
    /// when clients reach the server through a different name).
    pub advertise: Option<String>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 0,
            max_body: 8 * 1024 * 1024,
            max_conns: 256,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            keep_alive_timeout: Duration::from_secs(5),
            max_requests_per_conn: 0,
            reuseport: true,
            state_dir: None,
            max_sessions: 0,
            session_ttl: None,
            snapshot_every: crate::persist::DEFAULT_SNAPSHOT_EVERY,
            slow_request_ms: 0,
            repl_addr: None,
            follow: None,
            peers: Vec::new(),
            advertise: None,
        }
    }
}

/// The server. Construct via [`Server::start`].
pub struct Server;

impl Server {
    /// Bind, spawn the event-loop workers, and return a handle. Serving
    /// proceeds on background threads — the caller keeps its thread.
    pub fn start(config: ServerConfig) -> std::io::Result<ServerHandle> {
        let requested: SocketAddr =
            config.addr.to_socket_addrs()?.next().ok_or_else(|| {
                std::io::Error::other(format!("cannot resolve {:?}", config.addr))
            })?;
        let n_workers = if config.workers == 0 {
            panda_exec::worker_count()
        } else {
            config.workers
        };
        // Bind up front so `:0` resolves once and every shard shares the
        // port. Without reuseport a single listener is shared (each
        // worker's epoll watches the same fd — correct, just herd-prone).
        let first = Listener::bind(&requested, config.reuseport)?;
        let addr = first.addr();
        let mut listeners = vec![Arc::new(first)];
        if config.reuseport {
            for _ in 1..n_workers {
                listeners.push(Arc::new(Listener::bind(&addr, true)?));
            }
        } else {
            let shared = Arc::clone(&listeners[0]);
            listeners.extend((1..n_workers).map(|_| Arc::clone(&shared)));
        }

        // Replication topology checks — every rejection names the flag
        // that caused it.
        if config.follow.is_some() && config.state_dir.is_some() {
            return Err(std::io::Error::other(
                "--follow conflicts with --state-dir: a follower replicates the \
                 primary's WAL in memory instead of writing its own",
            ));
        }
        if config.follow.is_some() && config.repl_addr.is_some() {
            return Err(std::io::Error::other(
                "--follow conflicts with --repl-addr: a follower subscribes to a \
                 primary, it does not ship a WAL of its own",
            ));
        }
        if config.repl_addr.is_some() && config.state_dir.is_none() {
            return Err(std::io::Error::other(
                "--repl-addr requires --state-dir: only fsynced WAL records are \
                 shipped to followers",
            ));
        }
        let advertised = config.advertise.clone().unwrap_or_else(|| addr.to_string());
        let ring = if config.peers.is_empty() {
            None
        } else {
            Some(ShardRing::new(config.peers.clone(), &advertised).map_err(std::io::Error::other)?)
        };

        // Recovery happens here, before the first accept: every session
        // the state dir holds is replayed and digest-verified up front.
        let state = AppState::open(StateOptions {
            state_dir: config.state_dir.clone(),
            max_sessions: config.max_sessions,
            session_ttl: config.session_ttl,
            snapshot_every: config.snapshot_every,
            follower: config.follow.is_some(),
            ring,
        })
        .map_err(std::io::Error::other)?;
        let state = Arc::new(state);
        panda_obs::gauge_set("serve.workers", n_workers as f64);

        // Replication plane: the hub thread (primary) owns the repl
        // listener and ships queued WAL frames; the follower thread
        // dials the primary and applies what arrives. Both are single
        // background threads outside the HTTP event loops.
        let mut hub = None;
        let mut hub_thread = None;
        let mut follower_thread = None;
        let mut repl_addr = None;
        if let Some(raw) = &config.repl_addr {
            let want: SocketAddr = raw
                .to_socket_addrs()?
                .next()
                .ok_or_else(|| std::io::Error::other(format!("cannot resolve {raw:?}")))?;
            let listener = Listener::bind(&want, false)?;
            repl_addr = Some(listener.addr());
            let h = Arc::new(ReplHub::new(advertised.clone()));
            // The wake pipe exists before the thread: no enqueue can
            // miss its wake.
            let wake = WakePipe::new()?;
            h.set_wake_fd(wake.write_fd());
            state.set_hub(Arc::clone(&h));
            let (h2, state2) = (Arc::clone(&h), Arc::clone(&state));
            hub_thread = Some(
                std::thread::Builder::new()
                    .name("panda-repl-hub".to_string())
                    .spawn(move || repl::run_hub(h2, listener, state2, wake))
                    .expect("spawn repl hub"),
            );
            hub = Some(h);
        }
        if let Some(primary) = config.follow.clone() {
            let state2 = Arc::clone(&state);
            follower_thread = Some(
                std::thread::Builder::new()
                    .name("panda-repl-follow".to_string())
                    .spawn(move || repl::run_follower(state2, primary))
                    .expect("spawn repl follower"),
            );
        }

        let mut workers = Vec::with_capacity(n_workers);
        for (shard, listener) in listeners.into_iter().enumerate() {
            let state = Arc::clone(&state);
            let config = config.clone();
            workers.push(
                std::thread::Builder::new()
                    .name(format!("panda-serve-{shard}"))
                    .spawn(
                        move || match EventLoop::new(state, listener, config, shard) {
                            Ok(mut el) => el.run(),
                            Err(e) => eprintln!("panda-serve: worker {shard} failed to start: {e}"),
                        },
                    )
                    .expect("spawn worker"),
            );
        }

        Ok(ServerHandle {
            addr,
            state,
            workers,
            repl_addr,
            hub,
            hub_thread,
            follower_thread,
        })
    }
}

// ---------------------------------------------------------------------------
// Event loop
// ---------------------------------------------------------------------------

/// Token for "this worker's listener became readable".
const TOKEN_LISTENER: u64 = u64::MAX;
/// Token for "the wake pipe was poked" (shutdown latch changed).
const TOKEN_WAKE: u64 = u64::MAX - 1;

/// Queued-response cap: stop answering further pipelined requests until
/// the client drains what it already owes us.
const OUT_CAP: usize = 256 * 1024;
/// Bytes read per readiness event before yielding to other connections
/// (level-triggered epoll re-arms if more input is pending).
const READ_BURST: usize = 64 * 1024;
/// Accepts per readiness event before yielding (ditto).
const ACCEPT_BURST: usize = 256;
/// Close-path grace: how long a `Draining` connection may dribble
/// unread request bytes before the socket is dropped.
const DRAIN_GRACE: Duration = Duration::from_secs(1);
/// Slots beyond `max_conns` usable by shed (503) connections, so the
/// refusal itself is delivered politely; beyond this, drop outright.
const SHED_SLACK: usize = 64;
/// Default `/events` long-poll park time when the client names none.
const POLL_TIMEOUT_DEFAULT: Duration = Duration::from_secs(10);
/// Cap on the client-requested `/events` long-poll park time.
const POLL_TIMEOUT_MAX: Duration = Duration::from_secs(30);

/// Which deadline currently governs a connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DeadlineKind {
    /// Forces the next `settle` to recompute (fresh or just-transitioned).
    Invalid,
    /// Idle keep-alive connection: close silently at the deadline.
    Idle,
    /// Mid-request: 408 at the deadline (anchored at the request's first
    /// byte — receiving more bytes does not extend it, so a slowloris
    /// drip cannot hold the slot).
    Request,
    /// Response queued: close at the deadline.
    Write,
    /// Write side shut, discarding stragglers: close at the deadline.
    Drain,
    /// Parked `/events` long-poll: *answer* (empty tail) at the
    /// deadline — never close. New journal events resolve it earlier via
    /// [`EventLoop::resolve_pollers`], riding the ≤500ms epoll timeout.
    Poll,
}

/// A parked `GET /events` long-poll, waiting for the journal to move
/// past its cursor.
struct PollWait {
    /// The client's `since` cursor (respond once `next_seq` exceeds it).
    since: u64,
    /// Max events in the response.
    max: usize,
    /// Keep-alive decision captured at park time.
    keep: bool,
    /// Request id assigned at park time (the response echoes it).
    rid: String,
}

/// One non-blocking connection.
struct Conn {
    stream: TcpStream,
    parser: RequestParser,
    /// Received-but-unparsed request bytes.
    buf: Vec<u8>,
    /// Queued response bytes (`out[out_pos..]` still unsent).
    out: Vec<u8>,
    out_pos: usize,
    /// Current epoll interest mask.
    interest: u32,
    deadline: Instant,
    deadline_kind: DeadlineKind,
    /// Requests served on this connection (keep-alive reuse count).
    served: u64,
    /// Close once `out` is flushed; no further requests are parsed.
    close_after_write: bool,
    /// Write side already shut; discarding reads until EOF or deadline.
    draining: bool,
    /// Peer sent EOF (no more requests will arrive).
    eof: bool,
    /// Parked `/events` long-poll (pipelined parsing pauses while set).
    poll: Option<PollWait>,
}

/// Slab slot: a generation counter guards against a readiness event
/// addressed to a closed connection hitting its slot's next tenant.
struct Slot {
    conn: Option<Conn>,
    gen: u32,
}

struct EventLoop {
    state: Arc<AppState>,
    listener: Arc<Listener>,
    config: ServerConfig,
    shard: usize,
    epoll: Epoll,
    wake: WakePipe,
    slots: Vec<Slot>,
    free: Vec<usize>,
    n_conns: usize,
    draining: bool,
    drain_deadline: Instant,
    last_sweep: Instant,
    /// Per-shard monotonic request counter; `X-Request-Id` is
    /// `{shard}-{n}`, unique process-wide by the shard prefix.
    next_request_id: u64,
    /// The shard number as a string, reused as a metric label.
    shard_label: String,
}

impl EventLoop {
    fn new(
        state: Arc<AppState>,
        listener: Arc<Listener>,
        config: ServerConfig,
        shard: usize,
    ) -> std::io::Result<EventLoop> {
        let epoll = Epoll::new()?;
        let wake = WakePipe::new()?;
        epoll.add(listener.fd(), EPOLLIN, TOKEN_LISTENER)?;
        epoll.add(wake.read_fd(), EPOLLIN, TOKEN_WAKE)?;
        crate::signal::register_wake_fd(wake.write_fd());
        let now = Instant::now();
        Ok(EventLoop {
            state,
            listener,
            config,
            shard,
            epoll,
            wake,
            slots: Vec::new(),
            free: Vec::new(),
            n_conns: 0,
            draining: false,
            drain_deadline: now,
            last_sweep: now,
            next_request_id: 0,
            shard_label: shard.to_string(),
        })
    }

    /// Mint the next request id on this shard.
    fn next_rid(&mut self) -> String {
        self.next_request_id += 1;
        format!("{}-{}", self.shard, self.next_request_id)
    }

    fn run(&mut self) {
        let mut events = vec![EpollEvent { events: 0, data: 0 }; 256];
        loop {
            if !self.draining && self.state.shutdown_requested() {
                self.begin_drain();
            }
            if self.draining && self.n_conns == 0 {
                break;
            }
            let timeout_ms = self.next_timeout_ms();
            let n = match self.epoll.wait(&mut events, timeout_ms) {
                Ok(n) => n,
                Err(e) => {
                    eprintln!("panda-serve: shard {} epoll_wait failed: {e}", self.shard);
                    break;
                }
            };
            for ev in &events[..n] {
                let (mask, token) = ({ ev.events }, { ev.data });
                match token {
                    TOKEN_WAKE => self.wake.drain(),
                    TOKEN_LISTENER => self.accept_burst(),
                    token => self.conn_event(token, mask),
                }
            }
            self.resolve_pollers();
            self.expire_deadlines();
            if self.shard == 0 && self.last_sweep.elapsed() >= Duration::from_secs(1) {
                // TTL sweep rides shard 0's event-loop timer (~1s cadence)
                // — no dedicated timer thread.
                self.state.sweep();
                self.last_sweep = Instant::now();
            }
            if self.draining && Instant::now() >= self.drain_deadline {
                // Hard stop: whatever is still open gets dropped.
                for idx in 0..self.slots.len() {
                    self.close(idx);
                }
                break;
            }
        }
    }

    /// First observation of the shutdown latch: stop accepting, close
    /// idle keep-alive connections promptly, let in-flight work finish.
    fn begin_drain(&mut self) {
        self.draining = true;
        self.epoll.del(self.listener.fd());
        // In-flight connections (mid-request, writing, or draining) are
        // left to finish under their per-state deadlines; `pump` forces
        // `Connection: close` on every response once the latch is up.
        let idle: Vec<usize> = self
            .slots
            .iter()
            .enumerate()
            .filter_map(|(idx, slot)| {
                let conn = slot.conn.as_ref()?;
                let has_out = conn.out_pos < conn.out.len();
                let idle = !has_out
                    && !conn.draining
                    && conn.buf.is_empty()
                    && !conn.parser.mid_request()
                    && !conn.close_after_write
                    // A parked long-poll is not idle: resolve_pollers
                    // answers it (with Connection: close) next pass.
                    && conn.poll.is_none();
                idle.then_some(idx)
            })
            .collect();
        for idx in idle {
            self.close(idx);
        }
        self.drain_deadline = Instant::now()
            + self.config.read_timeout
            + self.config.write_timeout
            + DRAIN_GRACE
            + Duration::from_secs(1);
    }

    /// The epoll timeout: the nearest connection deadline (or sweep /
    /// drain timer), capped so latch flips are never missed for long.
    fn next_timeout_ms(&self) -> i32 {
        let now = Instant::now();
        let mut next: Option<Instant> = self
            .slots
            .iter()
            .filter_map(|s| s.conn.as_ref().map(|c| c.deadline))
            .min();
        if self.shard == 0 {
            let sweep_at = self.last_sweep + Duration::from_secs(1);
            next = Some(next.map_or(sweep_at, |n| n.min(sweep_at)));
        }
        if self.draining {
            next = Some(next.map_or(self.drain_deadline, |n| n.min(self.drain_deadline)));
        }
        let cap = Duration::from_millis(500);
        let until = next.map_or(cap, |t| t.saturating_duration_since(now).min(cap));
        // Round up: a deadline 0.4ms away must not busy-spin at 0ms.
        until.as_millis() as i32 + 1
    }

    fn accept_burst(&mut self) {
        for _ in 0..ACCEPT_BURST {
            let stream = match self.listener.accept() {
                Ok(Some(s)) => s,
                Ok(None) => break,
                Err(_) => break,
            };
            if self.draining {
                drop(stream); // raced the listener deregistration
                continue;
            }
            panda_obs::counter_add("serve.conns_accepted", 1);
            panda_obs::counter_add_labeled(
                "serve.loop.accepts",
                &[("shard", &self.shard_label)],
                1,
            );
            let shed = self.n_conns >= self.config.max_conns;
            if shed {
                panda_obs::counter_add("serve.shed_503", 1);
                panda_obs::counter_add_labeled(
                    "serve.loop.shed_503",
                    &[("shard", &self.shard_label)],
                    1,
                );
                if self.n_conns >= self.config.max_conns + SHED_SLACK {
                    drop(stream); // severe overload: refuse impolitely
                    continue;
                }
            }
            let idx = self.insert(stream);
            if shed {
                // Queue the 503 through the normal write/drain machinery
                // so the client reliably sees it (no RST clobbering).
                let rid = self.next_rid();
                let conn = self.conn_mut(idx);
                let mut resp = Response::json(
                    503,
                    crate::api::ApiError::new("overloaded", "connection table is full").to_json(),
                );
                resp.request_id = Some(rid);
                conn.out.extend_from_slice(&resp.to_bytes(false));
                conn.close_after_write = true;
                self.flush(idx);
                if self.slots[idx].conn.is_some() {
                    self.finish_or_settle(idx);
                }
            }
        }
    }

    /// Register a fresh connection in the slab and the epoll set.
    fn insert(&mut self, stream: TcpStream) -> usize {
        let idx = match self.free.pop() {
            Some(idx) => idx,
            None => {
                self.slots.push(Slot { conn: None, gen: 0 });
                self.slots.len() - 1
            }
        };
        let fd = stream.as_raw_fd();
        let conn = Conn {
            stream,
            parser: RequestParser::new(),
            buf: Vec::new(),
            out: Vec::new(),
            out_pos: 0,
            interest: EPOLLIN,
            // A fresh connection is "idle until its first byte": the
            // keep-alive deadline governs how long it may sit silent.
            deadline: Instant::now() + self.config.keep_alive_timeout,
            deadline_kind: DeadlineKind::Idle,
            served: 0,
            close_after_write: false,
            draining: false,
            eof: false,
            poll: None,
        };
        self.slots[idx].conn = Some(conn);
        self.n_conns += 1;
        panda_obs::gauge_add_labeled(
            "serve.loop.connections",
            &[("shard", &self.shard_label)],
            1.0,
        );
        let token = self.token(idx);
        if self.epoll.add(fd, EPOLLIN, token).is_err() {
            self.close(idx);
        }
        idx
    }

    fn token(&self, idx: usize) -> u64 {
        (u64::from(self.slots[idx].gen) << 32) | idx as u64
    }

    fn conn_mut(&mut self, idx: usize) -> &mut Conn {
        self.slots[idx].conn.as_mut().expect("live connection")
    }

    /// Tear down one connection (idempotent: a second close of the same
    /// slot is a no-op thanks to the `Option`).
    fn close(&mut self, idx: usize) {
        let Some(conn) = self.slots[idx].conn.take() else {
            return;
        };
        self.epoll.del(conn.stream.as_raw_fd());
        panda_obs::gauge_add_labeled(
            "serve.loop.connections",
            &[("shard", &self.shard_label)],
            -1.0,
        );
        // Keep-alive reuse depth: how many requests this connection
        // carried over its lifetime (0 = shed or never spoke).
        panda_obs::hist_record_labeled(
            "serve.loop.reuse_depth",
            &[("shard", &self.shard_label)],
            u128::from(conn.served),
        );
        drop(conn); // closes the fd
        self.slots[idx].gen = self.slots[idx].gen.wrapping_add(1);
        self.free.push(idx);
        self.n_conns -= 1;
    }

    /// Dispatch one readiness event to its connection, ignoring stale
    /// tokens (connection already closed, slot possibly reused).
    fn conn_event(&mut self, token: u64, mask: u32) {
        let idx = (token & 0xFFFF_FFFF) as usize;
        let gen = (token >> 32) as u32;
        if idx >= self.slots.len() || self.slots[idx].gen != gen || self.slots[idx].conn.is_none() {
            return;
        }
        let readable = mask & (EPOLLIN | EPOLLERR | EPOLLHUP) != 0;
        let writable = mask & (EPOLLOUT | EPOLLERR | EPOLLHUP) != 0;
        if self.conn_mut(idx).draining {
            if readable && !self.discard(idx) {
                return; // closed
            }
            return;
        }
        if readable && !self.read_burst(idx) {
            return; // closed
        }
        if writable {
            self.flush(idx);
            if self.slots[idx].conn.is_none() {
                return;
            }
        }
        self.service(idx);
    }

    /// Read up to [`READ_BURST`] bytes into the connection buffer.
    /// Returns `false` if the connection was closed.
    fn read_burst(&mut self, idx: usize) -> bool {
        let max_buffered = self.config.max_body + crate::http::MAX_HEAD + 8 * 1024;
        let mut chunk = [0u8; 16 * 1024];
        let mut read_total = 0usize;
        loop {
            let conn = self.conn_mut(idx);
            if conn.eof || conn.buf.len() >= max_buffered || read_total >= READ_BURST {
                break;
            }
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    conn.eof = true;
                    break;
                }
                Ok(n) => {
                    conn.buf.extend_from_slice(&chunk[..n]);
                    read_total += n;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.close(idx);
                    return false;
                }
            }
        }
        true
    }

    /// Discard straggler bytes on a draining connection. Returns `false`
    /// if it reached EOF and was closed.
    fn discard(&mut self, idx: usize) -> bool {
        let mut sink = [0u8; 16 * 1024];
        let mut total = 0usize;
        loop {
            let conn = self.conn_mut(idx);
            match conn.stream.read(&mut sink) {
                Ok(0) => {
                    self.close(idx);
                    return false;
                }
                Ok(n) => {
                    total += n;
                    if total >= READ_BURST {
                        return true; // level-triggered epoll will re-arm
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return true,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.close(idx);
                    return false;
                }
            }
        }
    }

    /// Parse-and-route every complete request currently buffered, then
    /// flush; repeat while pipelined requests keep completing. Ends by
    /// settling the connection's interest mask and deadline.
    fn service(&mut self, idx: usize) {
        loop {
            let processed = self.pump(idx);
            if self.slots[idx].conn.is_none() {
                return;
            }
            self.flush(idx);
            if self.slots[idx].conn.is_none() {
                return;
            }
            let conn = self.conn_mut(idx);
            let out_pending = conn.out_pos < conn.out.len();
            if processed == 0 || out_pending || conn.close_after_write {
                break;
            }
        }
        self.finish_or_settle(idx);
    }

    /// Process buffered complete requests into queued responses. Returns
    /// how many requests were handled. May close the connection (partial
    /// request at EOF).
    fn pump(&mut self, idx: usize) -> usize {
        let max_body = self.config.max_body;
        let max_requests = self.config.max_requests_per_conn;
        let state = Arc::clone(&self.state);
        let mut processed = 0usize;
        loop {
            let conn = self.conn_mut(idx);
            if conn.poll.is_some() {
                // A parked long-poll must answer before anything
                // pipelined behind it; stop parsing until it resolves.
                break;
            }
            if conn.close_after_write || conn.out.len() - conn.out_pos > OUT_CAP {
                break;
            }
            match conn.parser.parse(&conn.buf, max_body) {
                Ok(None) => {
                    if conn.eof {
                        if conn.parser.mid_request() {
                            // Peer vanished mid-request: nothing to answer.
                            self.close(idx);
                            return processed;
                        }
                        conn.close_after_write = true;
                    }
                    break;
                }
                Ok(Some(parsed)) => {
                    conn.buf.drain(..parsed.consumed);
                    conn.parser.reset();
                    // Each request gets its own read deadline.
                    conn.deadline_kind = DeadlineKind::Invalid;
                    conn.served += 1;
                    let served = conn.served;
                    let eof = conn.eof;
                    let rid = self.next_rid();
                    let mut keep = parsed.keep_alive && !eof;
                    if max_requests > 0 && served >= max_requests {
                        keep = false;
                    }
                    if state.shutdown_requested() {
                        keep = false; // drain: every response says close
                    }
                    if let Some(park) = self.try_park_events_poll(&parsed.request, keep, &rid) {
                        let conn = self.conn_mut(idx);
                        conn.deadline = Instant::now() + park.1;
                        conn.deadline_kind = DeadlineKind::Poll;
                        conn.poll = Some(park.0);
                        break;
                    }
                    let journal_on = panda_obs::journal_enabled();
                    if journal_on {
                        // Every journal event emitted while routing this
                        // request carries its id.
                        panda_obs::set_request_id(Some(rid.clone()));
                    }
                    let t0 = Instant::now();
                    let (route, mut response) = route_safely(&state, &parsed.request);
                    let dur = t0.elapsed();
                    let st = status_label(response.status);
                    panda_obs::counter_add_labeled(
                        "serve.http.requests",
                        &[
                            ("route", route),
                            ("status", st),
                            ("shard", &self.shard_label),
                        ],
                        1,
                    );
                    panda_obs::hist_record_labeled(
                        "serve.http.latency",
                        &[("route", route), ("status", st)],
                        dur.as_nanos(),
                    );
                    if journal_on
                        && self.config.slow_request_ms > 0
                        && dur >= Duration::from_millis(self.config.slow_request_ms)
                    {
                        panda_obs::event("serve.slow")
                            .field("route", route)
                            .field("status", i64::from(response.status))
                            .field("dur_us", dur.as_micros() as u64)
                            .emit();
                    }
                    if journal_on {
                        panda_obs::set_request_id(None);
                    }
                    if state.shutdown_requested() {
                        // The handler may have flipped the latch just now
                        // (`POST /shutdown`): its own response must
                        // already announce the close.
                        keep = false;
                    }
                    response.request_id = Some(rid);
                    let conn = self.conn_mut(idx); // re-borrow after routing
                    conn.out.extend_from_slice(&response.to_bytes(keep));
                    if !keep {
                        conn.close_after_write = true;
                    }
                    processed += 1;
                }
                Err(e) => {
                    let (status, response) = match e {
                        ReadError::Malformed(msg) => {
                            panda_obs::counter_add("serve.bad_request_400", 1);
                            (400, error_response(400, "bad_request", &msg))
                        }
                        ReadError::TooLarge { limit } => {
                            panda_obs::counter_add("serve.body_cap_413", 1);
                            panda_obs::counter_add_labeled(
                                "serve.loop.body_cap_413",
                                &[("shard", &self.shard_label)],
                                1,
                            );
                            (
                                413,
                                error_response(
                                    413,
                                    "payload_too_large",
                                    &format!("request body exceeds the {limit}-byte cap"),
                                ),
                            )
                        }
                        ReadError::Disconnected => {
                            self.close(idx);
                            return processed;
                        }
                    };
                    panda_obs::counter_add_labeled(
                        "serve.http.requests",
                        &[
                            ("route", "<wire>"),
                            ("status", status_label(status)),
                            ("shard", &self.shard_label),
                        ],
                        1,
                    );
                    let mut response = response;
                    response.request_id = Some(self.next_rid());
                    let conn = self.conn_mut(idx);
                    conn.out.extend_from_slice(&response.to_bytes(false));
                    conn.close_after_write = true;
                    break;
                }
            }
        }
        processed
    }

    /// Decide whether a `GET /events` request should park as a
    /// long-poll instead of routing: the journal must be enabled, the
    /// cursor at or past the journal head (nothing to return yet), the
    /// server not draining, and the client's timeout non-zero. Returns
    /// the park state and its deadline duration.
    fn try_park_events_poll(
        &self,
        request: &crate::http::Request,
        keep: bool,
        rid: &str,
    ) -> Option<(PollWait, Duration)> {
        if request.method != "GET"
            || request.path != "/events"
            || !panda_obs::journal_enabled()
            || self.draining
            || self.state.shutdown_requested()
        {
            return None;
        }
        let since = router::events_since(request).ok()?;
        if panda_obs::journal_next_seq() > since {
            return None; // events already waiting: answer immediately
        }
        let timeout = match request.query_param("timeout_ms") {
            Some(raw) => Duration::from_millis(raw.parse::<u64>().ok()?),
            None => POLL_TIMEOUT_DEFAULT,
        };
        if timeout.is_zero() {
            return None; // explicit non-blocking poll
        }
        let poll = PollWait {
            since,
            max: router::events_max(request),
            keep,
            rid: rid.to_string(),
        };
        Some((poll, timeout.min(POLL_TIMEOUT_MAX)))
    }

    /// Answer every parked long-poll whose journal cursor has been
    /// passed (or that must resolve because the server is draining).
    /// Rides the event loop's ≤500ms epoll timeout — no threads, no
    /// wakeup plumbing; worst-case notification latency is the cap.
    fn resolve_pollers(&mut self) {
        let force = self.draining || self.state.shutdown_requested();
        let next_seq = panda_obs::journal_next_seq();
        let ready: Vec<usize> = self
            .slots
            .iter()
            .enumerate()
            .filter_map(|(idx, slot)| {
                let poll = slot.conn.as_ref()?.poll.as_ref()?;
                (force || next_seq > poll.since).then_some(idx)
            })
            .collect();
        for idx in ready {
            self.finish_poll(idx);
        }
    }

    /// Resolve one parked long-poll: respond with whatever the journal
    /// holds past the cursor (possibly nothing, at the poll deadline)
    /// and resume normal request processing on the connection.
    fn finish_poll(&mut self, idx: usize) {
        let force_close = self.draining || self.state.shutdown_requested();
        let conn = self.conn_mut(idx);
        let Some(poll) = conn.poll.take() else {
            return;
        };
        let tail = panda_obs::journal_tail(poll.since, poll.max);
        let mut resp = Response::json(200, router::render_events_body(&tail));
        resp.request_id = Some(poll.rid);
        let keep = poll.keep && !force_close;
        panda_obs::counter_add_labeled(
            "serve.http.requests",
            &[
                ("route", "/events"),
                ("status", "200"),
                ("shard", &self.shard_label),
            ],
            1,
        );
        let conn = self.conn_mut(idx);
        conn.out.extend_from_slice(&resp.to_bytes(keep));
        if !keep {
            conn.close_after_write = true;
        }
        conn.deadline_kind = DeadlineKind::Invalid;
        // Flush, answer anything pipelined behind the poll, settle.
        self.service(idx);
    }

    /// Write queued response bytes until done or `WouldBlock`. May close
    /// the connection (peer gone).
    fn flush(&mut self, idx: usize) {
        loop {
            let conn = self.conn_mut(idx);
            if conn.out_pos >= conn.out.len() {
                conn.out.clear();
                conn.out_pos = 0;
                return;
            }
            match conn.stream.write(&conn.out[conn.out_pos..]) {
                Ok(0) => {
                    self.close(idx);
                    return;
                }
                Ok(n) => self.conn_mut(idx).out_pos += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.close(idx);
                    return;
                }
            }
        }
    }

    /// After I/O: either finish a close-after-write connection (enter
    /// the draining state, or close outright at EOF) or settle its
    /// deadline and interest mask.
    fn finish_or_settle(&mut self, idx: usize) {
        let conn = self.conn_mut(idx);
        let out_pending = conn.out_pos < conn.out.len();
        if !out_pending && conn.close_after_write {
            if conn.eof {
                self.close(idx);
                return;
            }
            // Half-close politely: FIN the write side, then discard any
            // unread request bytes until the peer closes (or the grace
            // deadline passes) so the response is never RST-clobbered.
            let _ = conn.stream.shutdown(std::net::Shutdown::Write);
            conn.draining = true;
            conn.deadline = Instant::now() + DRAIN_GRACE;
            conn.deadline_kind = DeadlineKind::Drain;
            self.set_interest(idx, EPOLLIN);
            return;
        }
        self.settle(idx);
    }

    /// Recompute the governing deadline and epoll interest mask.
    fn settle(&mut self, idx: usize) {
        let write_timeout = self.config.write_timeout;
        let read_timeout = self.config.read_timeout;
        let keep_alive_timeout = self.config.keep_alive_timeout;
        let conn = self.conn_mut(idx);
        let out_pending = conn.out_pos < conn.out.len();
        if conn.poll.is_some() {
            // Parked long-poll: its deadline stands (set at park time);
            // only the interest mask is recomputed, so earlier pipelined
            // responses still drain and peer reads are still seen.
            let want = if out_pending { EPOLLOUT } else { EPOLLIN };
            self.set_interest(idx, want);
            return;
        }
        let kind = if out_pending {
            DeadlineKind::Write
        } else if conn.parser.mid_request() || !conn.buf.is_empty() {
            DeadlineKind::Request
        } else {
            DeadlineKind::Idle
        };
        if kind != conn.deadline_kind {
            conn.deadline_kind = kind;
            conn.deadline = Instant::now()
                + match kind {
                    DeadlineKind::Write => write_timeout,
                    DeadlineKind::Request => read_timeout,
                    _ => keep_alive_timeout,
                };
        }
        // Backpressure: while a response is queued, stop reading — the
        // client gets more answers when it drains what it owes.
        let want = if out_pending { EPOLLOUT } else { EPOLLIN };
        if want == EPOLLOUT && conn.interest == EPOLLIN {
            // The socket's send buffer filled mid-response: the loop now
            // waits on writability for this connection.
            panda_obs::counter_add_labeled(
                "serve.loop.backpressure_stalls",
                &[("shard", &self.shard_label)],
                1,
            );
        }
        self.set_interest(idx, want);
    }

    fn set_interest(&mut self, idx: usize, want: u32) {
        let token = self.token(idx);
        let conn = self.conn_mut(idx);
        if conn.interest != want {
            conn.interest = want;
            let fd = conn.stream.as_raw_fd();
            if self.epoll.modify(fd, want, token).is_err() {
                self.close(idx);
            }
        }
    }

    /// Enforce per-state deadlines across all connections.
    fn expire_deadlines(&mut self) {
        let now = Instant::now();
        for idx in 0..self.slots.len() {
            let Some(conn) = self.slots[idx].conn.as_ref() else {
                continue;
            };
            if now < conn.deadline {
                continue;
            }
            // Loop lag: how far past the deadline this pass observed it.
            // Persistently fat buckets mean the loop is starved (slow
            // handlers or oversized bursts), not that clients are slow.
            panda_obs::hist_record_labeled(
                "serve.loop.lag",
                &[("shard", &self.shard_label)],
                (now - conn.deadline).as_nanos(),
            );
            match conn.deadline_kind {
                DeadlineKind::Poll => self.finish_poll(idx),
                DeadlineKind::Request => {
                    // Slowloris eviction: the request never completed.
                    panda_obs::counter_add("serve.request_timeout_408", 1);
                    panda_obs::counter_add_labeled(
                        "serve.loop.timeouts_408",
                        &[("shard", &self.shard_label)],
                        1,
                    );
                    let rid = self.next_rid();
                    let mut resp = error_response(
                        408,
                        "request_timeout",
                        "request did not complete within the read deadline",
                    );
                    resp.request_id = Some(rid);
                    let conn = self.conn_mut(idx);
                    conn.out.extend_from_slice(&resp.to_bytes(false));
                    conn.close_after_write = true;
                    self.flush(idx);
                    if self.slots[idx].conn.is_some() {
                        self.finish_or_settle(idx);
                    }
                }
                // Idle keep-alive, stuck write, stuck drain: just close.
                _ => self.close(idx),
            }
        }
    }
}

impl Drop for EventLoop {
    fn drop(&mut self) {
        crate::signal::unregister_wake_fd(self.wake.write_fd());
    }
}

/// Route with panic isolation: a handler bug answers 500 and the worker
/// lives on. Returns the matched route pattern for metric labels.
fn route_safely(state: &AppState, request: &crate::http::Request) -> (&'static str, Response) {
    catch_unwind(AssertUnwindSafe(|| router::handle_routed(state, request))).unwrap_or_else(
        |payload| {
            let msg = if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "handler panicked (non-string payload)".to_string()
            };
            panda_obs::counter_add("serve.handler_panics", 1);
            ("<panic>", error_response(500, "internal_error", &msg))
        },
    )
}

/// Status code as a low-cardinality metric label: the statuses the API
/// actually emits get their own series, anything else folds to a class.
fn status_label(status: u16) -> &'static str {
    match status {
        200 => "200",
        400 => "400",
        404 => "404",
        405 => "405",
        408 => "408",
        409 => "409",
        413 => "413",
        421 => "421",
        422 => "422",
        500 => "500",
        503 => "503",
        s if s < 300 => "2xx",
        s if s < 400 => "3xx",
        s if s < 500 => "4xx",
        _ => "5xx",
    }
}

fn error_response(status: u16, code: &str, message: &str) -> Response {
    Response::json(status, crate::api::ApiError::new(code, message).to_json())
}

/// A running server: its address, its shared state, and its threads.
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<AppState>,
    workers: Vec<JoinHandle<()>>,
    repl_addr: Option<SocketAddr>,
    hub: Option<Arc<ReplHub>>,
    hub_thread: Option<JoinHandle<()>>,
    follower_thread: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves `:0` to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The bound replication listener address, when `repl_addr` was
    /// configured (resolves `:0` to the actual port).
    pub fn repl_addr(&self) -> Option<SocketAddr> {
        self.repl_addr
    }

    /// The shared state (embedding servers may pre-register sessions).
    pub fn state(&self) -> &Arc<AppState> {
        &self.state
    }

    /// Request a graceful drain (same effect as `POST /shutdown`).
    pub fn shutdown(&self) {
        self.state.request_shutdown();
    }

    /// Block until every worker has exited. Call after
    /// [`ServerHandle::shutdown`] (or let a client hit `/shutdown`).
    pub fn join(mut self) {
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        // HTTP plane drained — now the replication plane: everything
        // the workers acknowledged is already queued on the hub, so
        // `finish` ships the unreplicated tail to connected followers
        // (bounded by a grace deadline) before the hub exits.
        if let Some(hub) = self.hub.take() {
            hub.finish();
        }
        if let Some(t) = self.hub_thread.take() {
            let _ = t.join();
        }
        if let Some(t) = self.follower_thread.take() {
            let _ = t.join();
        }
        // Compact every dirty session so the next start replays zero
        // WAL records.
        self.state.compact_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(addr: SocketAddr, path: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(
            stream,
            "GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"
        )
        .unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        let status: u16 = raw.split(' ').nth(1).unwrap().parse().unwrap();
        let body = raw.split("\r\n\r\n").nth(1).unwrap_or_default().to_string();
        (status, body)
    }

    #[test]
    fn serves_health_and_drains_on_shutdown() {
        let handle = Server::start(ServerConfig {
            workers: 2,
            ..Default::default()
        })
        .unwrap();
        let addr = handle.addr();
        let (status, body) = get(addr, "/healthz");
        assert_eq!(status, 200);
        assert_eq!(body, r#"{"status":"ok"}"#);

        // POST /shutdown over the wire, then join must return.
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(
            stream,
            "POST /shutdown HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\n\r\n"
        )
        .unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        assert!(raw.contains("draining"));
        assert!(
            raw.contains("Connection: close"),
            "drain responses must announce the close: {raw}"
        );
        handle.join();
    }

    #[test]
    fn oversized_body_gets_413_and_garbage_gets_400() {
        let handle = Server::start(ServerConfig {
            workers: 1,
            max_body: 64,
            ..Default::default()
        })
        .unwrap();
        let addr = handle.addr();

        let mut stream = TcpStream::connect(addr).unwrap();
        write!(
            stream,
            "POST /sessions HTTP/1.1\r\nHost: t\r\nContent-Length: 9999\r\n\r\n"
        )
        .unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        assert!(raw.starts_with("HTTP/1.1 413"), "{raw}");
        assert!(raw.contains("payload_too_large"));

        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(b"THIS IS NOT HTTP\r\n\r\n").unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        assert!(raw.starts_with("HTTP/1.1 400"), "{raw}");

        handle.shutdown();
        handle.join();
    }

    #[test]
    fn ephemeral_port_is_shared_across_reuseport_shards() {
        // 4 shards on one `:0` bind: every request must land somewhere
        // that answers, whichever shard the kernel hashes it to.
        let handle = Server::start(ServerConfig {
            workers: 4,
            ..Default::default()
        })
        .unwrap();
        let addr = handle.addr();
        for _ in 0..16 {
            let (status, _) = get(addr, "/healthz");
            assert_eq!(status, 200);
        }
        handle.shutdown();
        handle.join();
    }
}
