//! Minimal HTTP/1.1 wire handling on blocking `std::net` streams.
//!
//! Deliberately small: one request per connection (`Connection: close` on
//! every response, which also makes graceful drain trivial), no chunked
//! transfer encoding, no keep-alive, headers capped at 16 KiB and bodies
//! at a configurable limit. That subset is all `curl`, load generators,
//! and browsers need for a JSON API.

use std::io::{Read, Write};
use std::net::TcpStream;

/// Cap on the request line + headers. Anything larger is malformed for
/// this API (requests carry data in the body, not the headers).
const MAX_HEAD: usize = 16 * 1024;

/// A parsed request.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, `DELETE`, …).
    pub method: String,
    /// Path without query string (`/sessions/3/lfs`).
    pub path: String,
    /// Raw body bytes (UTF-8 JSON for every route that takes one).
    pub body: Vec<u8>,
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum ReadError {
    /// Connection closed (or timed out) before a full head arrived.
    Disconnected,
    /// Syntactically broken request (or an unsupported framing such as
    /// `Transfer-Encoding: chunked`) — answer 400.
    Malformed(String),
    /// Declared body exceeds the configured cap — answer 413.
    TooLarge { limit: usize },
}

/// Read and parse one request from `stream`. `max_body` bounds the
/// accepted `Content-Length`.
pub fn read_request(stream: &mut TcpStream, max_body: usize) -> Result<Request, ReadError> {
    // Read until the blank line that ends the head. The scan is
    // incremental: only the freshly read bytes (plus 3 bytes of overlap
    // for a delimiter straddling the chunk boundary) are searched, so a
    // slowly dripped head costs O(head) total instead of O(head²).
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 1024];
    let mut scanned = 0usize;
    let head_end = loop {
        let start = scanned.saturating_sub(3);
        if let Some(pos) = find_head_end(&buf[start..]) {
            break start + pos;
        }
        scanned = buf.len();
        // Enforce the cap *before* reading: never buffer past MAX_HEAD+1
        // rather than overshooting by up to a whole chunk.
        if buf.len() > MAX_HEAD {
            return Err(ReadError::Malformed("request head exceeds 16KiB".into()));
        }
        let want = (MAX_HEAD + 1 - buf.len()).min(chunk.len());
        match stream.read(&mut chunk[..want]) {
            Ok(0) => return Err(ReadError::Disconnected),
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(_) => return Err(ReadError::Disconnected),
        }
    };

    let head = String::from_utf8_lossy(&buf[..head_end]).into_owned();
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty())
        .ok_or_else(|| ReadError::Malformed("empty request line".into()))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or_else(|| ReadError::Malformed("missing request target".into()))?;
    let version = parts
        .next()
        .ok_or_else(|| ReadError::Malformed("missing HTTP version".into()))?;
    if !version.starts_with("HTTP/1.") {
        return Err(ReadError::Malformed(format!(
            "unsupported version {version}"
        )));
    }
    let path = target.split('?').next().unwrap_or(target).to_string();

    // Headers: we only care about framing.
    let mut content_length: Option<usize> = None;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        match name.as_str() {
            "content-length" => {
                // RFC 9112 §6.3: Content-Length is 1*DIGIT — no sign, no
                // whitespace inside, nothing else. `str::parse` alone is
                // too lenient (it accepts "+10").
                if value.is_empty() || !value.bytes().all(|b| b.is_ascii_digit()) {
                    return Err(ReadError::Malformed(format!(
                        "bad Content-Length {value:?}"
                    )));
                }
                let parsed: usize = value
                    .parse()
                    .map_err(|_| ReadError::Malformed(format!("bad Content-Length {value:?}")))?;
                // Duplicate headers with differing values are a framing
                // attack vector (request smuggling); identical repeats
                // are tolerated per RFC 9110 §8.6.
                if let Some(prev) = content_length {
                    if prev != parsed {
                        return Err(ReadError::Malformed(format!(
                            "conflicting Content-Length values ({prev} and {parsed})"
                        )));
                    }
                }
                content_length = Some(parsed);
            }
            "transfer-encoding" => {
                return Err(ReadError::Malformed(
                    "Transfer-Encoding is not supported; send Content-Length".into(),
                ));
            }
            _ => {}
        }
    }
    let content_length = content_length.unwrap_or(0);
    if content_length > max_body {
        return Err(ReadError::TooLarge { limit: max_body });
    }

    // Body: whatever arrived past the head plus the remainder.
    let mut body = buf[head_end + 4..].to_vec();
    while body.len() < content_length {
        match stream.read(&mut chunk) {
            Ok(0) => return Err(ReadError::Disconnected),
            Ok(n) => body.extend_from_slice(&chunk[..n]),
            Err(_) => return Err(ReadError::Disconnected),
        }
    }
    body.truncate(content_length);
    Ok(Request { method, path, body })
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// A response ready to serialize. Body is always JSON.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// JSON body.
    pub body: String,
}

impl Response {
    /// A JSON response with the given status.
    pub fn json(status: u16, body: impl Into<String>) -> Self {
        Response {
            status,
            body: body.into(),
        }
    }

    /// Serialize onto the wire. Errors are ignored — the peer may already
    /// be gone, and there is nothing useful to do about it.
    pub fn write_to(&self, stream: &mut TcpStream) {
        let head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            self.status,
            reason(self.status),
            self.body.len()
        );
        let _ = stream.write_all(head.as_bytes());
        let _ = stream.write_all(self.body.as_bytes());
        let _ = stream.flush();
    }
}

/// Politely close after responding: shut down the write side, then drain
/// whatever request bytes were never read. Closing with unread data in
/// the receive buffer makes the kernel send RST, which discards the
/// response we just wrote — exactly the error paths (413, shed 503) where
/// the client most needs to see the status.
pub fn drain_and_close(stream: &mut TcpStream) {
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let _ = stream.set_read_timeout(Some(std::time::Duration::from_millis(500)));
    let mut sink = [0u8; 4096];
    // Bounded: a peer that keeps streaming gets cut off after ~1 MiB.
    for _ in 0..256 {
        match stream.read(&mut sink) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
    }
}

/// Reason phrase for every status the API uses.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};

    /// Feed raw bytes through a real socket pair and parse.
    fn roundtrip(raw: &[u8]) -> Result<Request, ReadError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        client.write_all(raw).unwrap();
        drop(client); // EOF so short reads terminate
        let (mut server_side, _) = listener.accept().unwrap();
        read_request(&mut server_side, 1024)
    }

    #[test]
    fn parses_post_with_body() {
        let req = roundtrip(b"POST /sessions HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd")
            .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/sessions");
        assert_eq!(req.body, b"abcd");
    }

    #[test]
    fn strips_query_string_and_uppercases_method() {
        let req = roundtrip(b"get /metrics?pretty=1 HTTP/1.0\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/metrics");
        assert!(req.body.is_empty());
    }

    #[test]
    fn rejects_oversized_body() {
        let raw = b"POST /x HTTP/1.1\r\nContent-Length: 9999\r\n\r\n";
        match roundtrip(raw) {
            Err(ReadError::TooLarge { limit }) => assert_eq!(limit, 1024),
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }

    #[test]
    fn rejects_chunked_and_garbage() {
        assert!(matches!(
            roundtrip(b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
            Err(ReadError::Malformed(_))
        ));
        assert!(matches!(
            roundtrip(b"NONSENSE\r\n\r\n"),
            Err(ReadError::Malformed(_))
        ));
        assert!(matches!(roundtrip(b""), Err(ReadError::Disconnected)));
    }

    #[test]
    fn content_length_must_be_digits_only() {
        // `str::parse::<usize>` accepts a leading '+'; RFC 9112 does not.
        // (OWS around the value is trimmed before the digit check — that
        // part *is* legal field syntax.)
        for bad in ["+10", "-1", "4 4", "0x4", ""] {
            let raw = format!("POST /x HTTP/1.1\r\nContent-Length:{bad}\r\n\r\nabcd");
            assert!(
                matches!(roundtrip(raw.as_bytes()), Err(ReadError::Malformed(_))),
                "Content-Length {bad:?} must be rejected"
            );
        }
    }

    #[test]
    fn conflicting_content_lengths_are_rejected_identical_ones_allowed() {
        let raw = b"POST /x HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 5\r\n\r\nabcde";
        assert!(matches!(roundtrip(raw), Err(ReadError::Malformed(_))));
        let raw = b"POST /x HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 4\r\n\r\nabcd";
        let req = roundtrip(raw).unwrap();
        assert_eq!(req.body, b"abcd");
    }

    #[test]
    fn oversized_head_is_rejected_at_the_cap() {
        let mut raw = b"GET /x HTTP/1.1\r\n".to_vec();
        raw.extend_from_slice(format!("X-Pad: {}\r\n", "a".repeat(MAX_HEAD)).as_bytes());
        raw.extend_from_slice(b"\r\n");
        assert!(matches!(
            roundtrip(&raw),
            Err(ReadError::Malformed(msg)) if msg.contains("16KiB")
        ));
    }

    #[test]
    fn dripped_head_parses_across_chunk_boundaries() {
        // Byte-at-a-time delivery exercises the incremental scan overlap
        // (the \r\n\r\n can straddle any chunk boundary).
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw: &[u8] = b"POST /drip HTTP/1.1\r\nContent-Length: 2\r\n\r\nhi";
        let writer = std::thread::spawn(move || {
            let mut client = TcpStream::connect(addr).unwrap();
            for b in raw {
                client.write_all(&[*b]).unwrap();
                client.flush().unwrap();
            }
            client
        });
        let (mut server_side, _) = listener.accept().unwrap();
        let req = read_request(&mut server_side, 1024).unwrap();
        assert_eq!(req.path, "/drip");
        assert_eq!(req.body, b"hi");
        drop(writer.join().unwrap());
    }

    #[test]
    fn response_has_framing_headers() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (mut server_side, _) = listener.accept().unwrap();
        Response::json(422, "{\"x\":1}").write_to(&mut server_side);
        drop(server_side);
        let mut got = String::new();
        let mut client = client;
        use std::io::Read;
        client.read_to_string(&mut got).unwrap();
        assert!(got.starts_with("HTTP/1.1 422 Unprocessable Entity\r\n"));
        assert!(got.contains("Content-Length: 7\r\n"));
        assert!(got.contains("Connection: close\r\n"));
        assert!(got.ends_with("{\"x\":1}"));
    }
}
