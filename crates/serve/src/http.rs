//! Minimal HTTP/1.1 wire handling: an **incremental request parser**
//! (drives the non-blocking event loop in [`crate::server`]) plus a
//! blocking convenience reader for tests.
//!
//! Deliberately small, but no longer one-request-per-connection:
//! **keep-alive and pipelining are supported**. HTTP/1.1 requests
//! persist by default (HTTP/1.0 requires an explicit
//! `Connection: keep-alive`), `Connection: close` is honored both ways,
//! and back-to-back pipelined requests parse from a single buffer, each
//! answered in order. Still no chunked transfer encoding; heads are
//! capped at 16 KiB and bodies at a configurable limit. That subset is
//! all `curl`, load generators, and browsers need for a JSON API.
//!
//! Error codes on the wire (the server half-closes after each of them):
//!
//! | Status | Code | Trigger |
//! |---|---|---|
//! | 400 | `bad_request` | malformed head, bad `Content-Length`, chunked TE |
//! | 408 | `request_timeout` | a partially received request idled past the per-state read deadline (slowloris eviction) |
//! | 413 | `payload_too_large` | declared body exceeds the cap |
//! | 503 | `overloaded` | the worker's connection table is full at accept |
//!
//! A *fully* idle keep-alive connection (no request bytes pending) is
//! closed silently at the keep-alive deadline — there is no request to
//! answer, so no 408.

use std::io::{Read, Write};
use std::net::TcpStream;

/// Cap on the request line + headers. Anything larger is malformed for
/// this API (requests carry data in the body, not the headers).
pub(crate) const MAX_HEAD: usize = 16 * 1024;

/// A parsed request.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, `DELETE`, …).
    pub method: String,
    /// Path without query string (`/sessions/3/lfs`).
    pub path: String,
    /// Raw query string after the `?` (no leading `?`; empty when the
    /// target had none). Routes parse their own parameters with
    /// [`Request::query_param`].
    pub query: String,
    /// Raw body bytes (UTF-8 JSON for every route that takes one).
    pub body: Vec<u8>,
}

impl Request {
    /// Look up a `key=value` query parameter (first match; no percent
    /// decoding — the API's parameter values are plain tokens).
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            (k == key).then_some(v)
        })
    }
}

/// A complete request plus its wire framing facts.
#[derive(Debug)]
pub struct ParsedRequest {
    /// The request itself.
    pub request: Request,
    /// Bytes this request consumed from the buffer (head + body). The
    /// caller drains them before parsing the next pipelined request.
    pub consumed: usize,
    /// Whether the connection may persist after the response: HTTP/1.1
    /// default, overridden by `Connection: close` / `keep-alive`.
    pub keep_alive: bool,
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum ReadError {
    /// Connection closed (or timed out) before a full request arrived.
    Disconnected,
    /// Syntactically broken request (or an unsupported framing such as
    /// `Transfer-Encoding: chunked`) — answer 400.
    Malformed(String),
    /// Declared body exceeds the configured cap — answer 413.
    TooLarge { limit: usize },
}

/// Validated head facts, cached between [`RequestParser::parse`] calls
/// so a slowly arriving body never re-parses headers.
struct HeadMeta {
    method: String,
    path: String,
    query: String,
    body_start: usize,
    content_length: usize,
    keep_alive: bool,
}

/// Incremental single-request parser over an append-only byte buffer.
///
/// Call [`parse`](RequestParser::parse) whenever the buffer grows:
/// `Ok(None)` means "need more bytes", `Ok(Some(parsed))` yields the
/// request (the caller drains `parsed.consumed` bytes and calls
/// [`reset`](RequestParser::reset) before the next pipelined request),
/// and `Err` is a protocol error to answer and close on. The head scan
/// is incremental — only freshly appended bytes are searched for the
/// `\r\n\r\n` terminator (3 bytes of overlap for a straddling
/// delimiter), so a dripped head costs O(head) total, not O(head²).
#[derive(Default)]
pub struct RequestParser {
    scanned: usize,
    head: Option<HeadMeta>,
}

impl RequestParser {
    /// Fresh parser (also the state after [`reset`](Self::reset)).
    pub fn new() -> Self {
        Self::default()
    }

    /// Forget per-request state; call after consuming a parsed request.
    pub fn reset(&mut self) {
        self.scanned = 0;
        self.head = None;
    }

    /// Has this parser seen any bytes of an in-progress request? (Used
    /// to distinguish "idle connection" from "mid-request" deadlines.)
    pub fn mid_request(&self) -> bool {
        self.scanned > 0 || self.head.is_some()
    }

    /// Try to complete one request from `buf` (which must start at the
    /// request's first byte). See the type docs for the contract.
    pub fn parse(
        &mut self,
        buf: &[u8],
        max_body: usize,
    ) -> Result<Option<ParsedRequest>, ReadError> {
        if self.head.is_none() {
            let start = self.scanned.saturating_sub(3);
            match find_head_end(&buf[start..]) {
                Some(pos) => {
                    let head_end = start + pos;
                    if head_end > MAX_HEAD {
                        return Err(ReadError::Malformed("request head exceeds 16KiB".into()));
                    }
                    self.head = Some(parse_head(&buf[..head_end], head_end, max_body)?);
                }
                None => {
                    self.scanned = buf.len();
                    if buf.len() > MAX_HEAD {
                        return Err(ReadError::Malformed("request head exceeds 16KiB".into()));
                    }
                    return Ok(None);
                }
            }
        }
        let head = self.head.as_ref().expect("head parsed above");
        let total = head.body_start + head.content_length;
        if buf.len() < total {
            return Ok(None);
        }
        let head = self.head.take().expect("head parsed above");
        let request = Request {
            method: head.method,
            path: head.path,
            query: head.query,
            body: buf[head.body_start..total].to_vec(),
        };
        Ok(Some(ParsedRequest {
            request,
            consumed: total,
            keep_alive: head.keep_alive,
        }))
    }
}

/// Parse and validate a complete head (`buf[..head_end]`, exclusive of
/// the `\r\n\r\n`).
fn parse_head(head: &[u8], head_end: usize, max_body: usize) -> Result<HeadMeta, ReadError> {
    let head = String::from_utf8_lossy(head).into_owned();
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty())
        .ok_or_else(|| ReadError::Malformed("empty request line".into()))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or_else(|| ReadError::Malformed("missing request target".into()))?;
    let version = parts
        .next()
        .ok_or_else(|| ReadError::Malformed("missing HTTP version".into()))?;
    if !version.starts_with("HTTP/1.") {
        return Err(ReadError::Malformed(format!(
            "unsupported version {version}"
        )));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };

    // Headers: we care about framing and connection persistence.
    let mut content_length: Option<usize> = None;
    // HTTP/1.1 defaults to keep-alive; HTTP/1.0 to close.
    let mut keep_alive = version != "HTTP/1.0";
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        match name.as_str() {
            "content-length" => {
                // RFC 9112 §6.3: Content-Length is 1*DIGIT — no sign, no
                // whitespace inside, nothing else. `str::parse` alone is
                // too lenient (it accepts "+10").
                if value.is_empty() || !value.bytes().all(|b| b.is_ascii_digit()) {
                    return Err(ReadError::Malformed(format!(
                        "bad Content-Length {value:?}"
                    )));
                }
                let parsed: usize = value
                    .parse()
                    .map_err(|_| ReadError::Malformed(format!("bad Content-Length {value:?}")))?;
                // Duplicate headers with differing values are a framing
                // attack vector (request smuggling); identical repeats
                // are tolerated per RFC 9110 §8.6.
                if let Some(prev) = content_length {
                    if prev != parsed {
                        return Err(ReadError::Malformed(format!(
                            "conflicting Content-Length values ({prev} and {parsed})"
                        )));
                    }
                }
                content_length = Some(parsed);
            }
            "transfer-encoding" => {
                return Err(ReadError::Malformed(
                    "Transfer-Encoding is not supported; send Content-Length".into(),
                ));
            }
            "connection" => {
                // A comma-separated option list; only the persistence
                // options matter here.
                for opt in value.split(',') {
                    let opt = opt.trim();
                    if opt.eq_ignore_ascii_case("close") {
                        keep_alive = false;
                    } else if opt.eq_ignore_ascii_case("keep-alive") {
                        keep_alive = true;
                    }
                }
            }
            _ => {}
        }
    }
    let content_length = content_length.unwrap_or(0);
    if content_length > max_body {
        return Err(ReadError::TooLarge { limit: max_body });
    }
    Ok(HeadMeta {
        method,
        path,
        query,
        body_start: head_end + 4,
        content_length,
        keep_alive,
    })
}

/// Blocking convenience reader: read and parse one request from
/// `stream`. Used by unit tests; the server proper drives
/// [`RequestParser`] from its event loop.
pub fn read_request(stream: &mut TcpStream, max_body: usize) -> Result<Request, ReadError> {
    let mut parser = RequestParser::new();
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 1024];
    loop {
        if let Some(parsed) = parser.parse(&buf, max_body)? {
            return Ok(parsed.request);
        }
        match stream.read(&mut chunk) {
            Ok(0) => return Err(ReadError::Disconnected),
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(_) => return Err(ReadError::Disconnected),
        }
    }
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// A response ready to serialize. Body is JSON unless a route opted
/// into another media type (the Prometheus exposition endpoint).
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Body bytes (a `String`: every body the API emits is UTF-8 text).
    pub body: String,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Correlation id echoed as `X-Request-Id`. The event loop stamps
    /// this on every response it writes; `None` only in unit tests and
    /// one-shot helper paths that predate correlation.
    pub request_id: Option<String>,
}

impl Response {
    /// A JSON response with the given status.
    pub fn json(status: u16, body: impl Into<String>) -> Self {
        Response {
            status,
            body: body.into(),
            content_type: "application/json",
            request_id: None,
        }
    }

    /// A plain-text response (Prometheus exposition format version
    /// 0.0.4 advertises itself via the content type).
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Response {
            status,
            body: body.into(),
            content_type: "text/plain; version=0.0.4; charset=utf-8",
            request_id: None,
        }
    }

    /// Serialize to wire bytes. Identical byte-for-byte to the historic
    /// one-shot format except for the `Connection` header (states
    /// whether the server will keep the connection open) and the
    /// `X-Request-Id` correlation header when one is stamped.
    pub fn to_bytes(&self, keep_alive: bool) -> Vec<u8> {
        let mut out = Vec::with_capacity(160 + self.body.len());
        let rid_header = match &self.request_id {
            Some(rid) => format!("X-Request-Id: {rid}\r\n"),
            None => String::new(),
        };
        out.extend_from_slice(
            format!(
                "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n{}Connection: {}\r\n\r\n",
                self.status,
                reason(self.status),
                self.content_type,
                self.body.len(),
                rid_header,
                if keep_alive { "keep-alive" } else { "close" },
            )
            .as_bytes(),
        );
        out.extend_from_slice(self.body.as_bytes());
        out
    }

    /// Serialize onto the wire with `Connection: close` (one-shot paths:
    /// accept-time shedding, tests). Errors are ignored — the peer may
    /// already be gone, and there is nothing useful to do about it.
    pub fn write_to(&self, stream: &mut TcpStream) {
        let _ = stream.write_all(&self.to_bytes(false));
        let _ = stream.flush();
    }
}

/// Politely close after responding: shut down the write side, then drain
/// whatever request bytes were never read. Closing with unread data in
/// the receive buffer makes the kernel send RST, which discards the
/// response we just wrote — exactly the error paths (413, shed 503) where
/// the client most needs to see the status. (The event loop has its own
/// non-blocking equivalent — a `Draining` connection state.)
pub fn drain_and_close(stream: &mut TcpStream) {
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let _ = stream.set_read_timeout(Some(std::time::Duration::from_millis(500)));
    let mut sink = [0u8; 4096];
    // Bounded: a peer that keeps streaming gets cut off after ~1 MiB.
    for _ in 0..256 {
        match stream.read(&mut sink) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
    }
}

/// Reason phrase for every status the API uses.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Payload Too Large",
        421 => "Misdirected Request",
        422 => "Unprocessable Entity",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};

    /// Feed raw bytes through a real socket pair and parse.
    fn roundtrip(raw: &[u8]) -> Result<Request, ReadError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        client.write_all(raw).unwrap();
        drop(client); // EOF so short reads terminate
        let (mut server_side, _) = listener.accept().unwrap();
        read_request(&mut server_side, 1024)
    }

    /// Parse a complete buffer through the incremental parser.
    fn parse_once(raw: &[u8]) -> Result<Option<ParsedRequest>, ReadError> {
        RequestParser::new().parse(raw, 1024)
    }

    #[test]
    fn parses_post_with_body() {
        let req = roundtrip(b"POST /sessions HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd")
            .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/sessions");
        assert_eq!(req.body, b"abcd");
    }

    #[test]
    fn strips_query_string_and_uppercases_method() {
        let req = roundtrip(b"get /metrics?pretty=1 HTTP/1.0\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/metrics");
        assert_eq!(req.query, "pretty=1");
        assert!(req.body.is_empty());
    }

    #[test]
    fn query_params_are_parsed_on_demand() {
        let req =
            roundtrip(b"GET /events?since=42&format=prometheus&flag HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.query_param("since"), Some("42"));
        assert_eq!(req.query_param("format"), Some("prometheus"));
        assert_eq!(req.query_param("flag"), Some(""));
        assert_eq!(req.query_param("absent"), None);
        let bare = roundtrip(b"GET /events HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(bare.query, "");
        assert_eq!(bare.query_param("since"), None);
    }

    #[test]
    fn request_id_and_content_type_surface_as_headers() {
        let mut resp = Response::text(200, "x_total 1\n");
        resp.request_id = Some("3-17".to_string());
        let wire = String::from_utf8(resp.to_bytes(true)).unwrap();
        assert!(wire.contains("Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"));
        assert!(wire.contains("X-Request-Id: 3-17\r\n"));
        // The correlation header sits inside the head, before the blank line.
        let head_end = wire.find("\r\n\r\n").unwrap();
        assert!(wire.find("X-Request-Id").unwrap() < head_end);
    }

    #[test]
    fn keep_alive_defaults_follow_the_http_version() {
        let p = parse_once(b"GET /x HTTP/1.1\r\nHost: t\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(p.keep_alive, "HTTP/1.1 defaults to keep-alive");
        let p = parse_once(b"GET /x HTTP/1.0\r\nHost: t\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(!p.keep_alive, "HTTP/1.0 defaults to close");
        let p = parse_once(b"GET /x HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(!p.keep_alive, "explicit close wins");
        let p = parse_once(b"GET /x HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(p.keep_alive, "explicit keep-alive wins, case-insensitive");
    }

    #[test]
    fn pipelined_requests_parse_back_to_back() {
        let raw =
            b"POST /a HTTP/1.1\r\nContent-Length: 2\r\n\r\nhiGET /b HTTP/1.1\r\nHost: t\r\n\r\n";
        let mut parser = RequestParser::new();
        let first = parser.parse(raw, 1024).unwrap().unwrap();
        assert_eq!(first.request.path, "/a");
        assert_eq!(first.request.body, b"hi");
        parser.reset();
        let second = parser.parse(&raw[first.consumed..], 1024).unwrap().unwrap();
        assert_eq!(second.request.path, "/b");
        assert_eq!(second.consumed, raw.len() - first.consumed);
    }

    #[test]
    fn incremental_parse_is_restartable_at_every_byte() {
        let raw: &[u8] = b"POST /drip HTTP/1.1\r\nContent-Length: 2\r\n\r\nhi";
        let mut parser = RequestParser::new();
        for end in 0..raw.len() {
            assert!(
                parser.parse(&raw[..end], 1024).unwrap().is_none(),
                "complete at only {end} bytes?"
            );
            if end >= 1 {
                assert!(parser.mid_request());
            }
        }
        let done = parser.parse(raw, 1024).unwrap().unwrap();
        assert_eq!(done.request.path, "/drip");
        assert_eq!(done.request.body, b"hi");
        assert_eq!(done.consumed, raw.len());
    }

    #[test]
    fn rejects_oversized_body() {
        let raw = b"POST /x HTTP/1.1\r\nContent-Length: 9999\r\n\r\n";
        match roundtrip(raw) {
            Err(ReadError::TooLarge { limit }) => assert_eq!(limit, 1024),
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }

    #[test]
    fn rejects_chunked_and_garbage() {
        assert!(matches!(
            roundtrip(b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
            Err(ReadError::Malformed(_))
        ));
        assert!(matches!(
            roundtrip(b"NONSENSE\r\n\r\n"),
            Err(ReadError::Malformed(_))
        ));
        assert!(matches!(roundtrip(b""), Err(ReadError::Disconnected)));
    }

    #[test]
    fn content_length_must_be_digits_only() {
        // `str::parse::<usize>` accepts a leading '+'; RFC 9112 does not.
        // (OWS around the value is trimmed before the digit check — that
        // part *is* legal field syntax.)
        for bad in ["+10", "-1", "4 4", "0x4", ""] {
            let raw = format!("POST /x HTTP/1.1\r\nContent-Length:{bad}\r\n\r\nabcd");
            assert!(
                matches!(roundtrip(raw.as_bytes()), Err(ReadError::Malformed(_))),
                "Content-Length {bad:?} must be rejected"
            );
        }
    }

    #[test]
    fn conflicting_content_lengths_are_rejected_identical_ones_allowed() {
        let raw = b"POST /x HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 5\r\n\r\nabcde";
        assert!(matches!(roundtrip(raw), Err(ReadError::Malformed(_))));
        let raw = b"POST /x HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 4\r\n\r\nabcd";
        let req = roundtrip(raw).unwrap();
        assert_eq!(req.body, b"abcd");
    }

    #[test]
    fn oversized_head_is_rejected_at_the_cap() {
        let mut raw = b"GET /x HTTP/1.1\r\n".to_vec();
        raw.extend_from_slice(format!("X-Pad: {}\r\n", "a".repeat(MAX_HEAD)).as_bytes());
        raw.extend_from_slice(b"\r\n");
        assert!(matches!(
            roundtrip(&raw),
            Err(ReadError::Malformed(msg)) if msg.contains("16KiB")
        ));
    }

    #[test]
    fn dripped_head_parses_across_chunk_boundaries() {
        // Byte-at-a-time delivery exercises the incremental scan overlap
        // (the \r\n\r\n can straddle any chunk boundary).
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw: &[u8] = b"POST /drip HTTP/1.1\r\nContent-Length: 2\r\n\r\nhi";
        let writer = std::thread::spawn(move || {
            let mut client = TcpStream::connect(addr).unwrap();
            for b in raw {
                client.write_all(&[*b]).unwrap();
                client.flush().unwrap();
            }
            client
        });
        let (mut server_side, _) = listener.accept().unwrap();
        let req = read_request(&mut server_side, 1024).unwrap();
        assert_eq!(req.path, "/drip");
        assert_eq!(req.body, b"hi");
        drop(writer.join().unwrap());
    }

    #[test]
    fn response_has_framing_headers() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (mut server_side, _) = listener.accept().unwrap();
        Response::json(422, "{\"x\":1}").write_to(&mut server_side);
        drop(server_side);
        let mut got = String::new();
        let mut client = client;
        use std::io::Read;
        client.read_to_string(&mut got).unwrap();
        assert!(got.starts_with("HTTP/1.1 422 Unprocessable Entity\r\n"));
        assert!(got.contains("Content-Length: 7\r\n"));
        assert!(got.contains("Connection: close\r\n"));
        assert!(got.ends_with("{\"x\":1}"));
    }

    #[test]
    fn keep_alive_bytes_differ_only_in_the_connection_header() {
        let resp = Response::json(200, r#"{"status":"ok"}"#);
        let close = String::from_utf8(resp.to_bytes(false)).unwrap();
        let keep = String::from_utf8(resp.to_bytes(true)).unwrap();
        assert!(keep.contains("Connection: keep-alive\r\n"));
        assert_eq!(
            close.replace("Connection: close", "Connection: keep-alive"),
            keep
        );
    }
}
