//! Wire DTOs and the JSON → domain-object mappings.
//!
//! Everything a client sends or receives lives here; the router only
//! shuffles these types between [`crate::http`] and
//! [`panda_session::PandaSession`]. LF specs are declarative JSON mapped
//! onto the builder LFs of `panda-lf` — the serving equivalent of the
//! notebook cells in the original demo (arbitrary closures stay a
//! library-only feature; the wire cannot ship code).

use panda_lf::{AttributeEqualityLf, BoxedLf, ExtractionLf, NumericToleranceLf, SimilarityLf};
use panda_session::{DebugQuery, ModelChoice, SessionConfig, SessionSnapshot};
use panda_table::{MatchSet, RecordId, Table, TablePair};
use panda_text::{Measure, SimilarityConfig};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// The body of every non-2xx response: `{"error":{"code","message"}}`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ApiError {
    /// The error payload.
    pub error: ApiErrorDetail,
}

/// Machine-readable code plus human-readable message.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ApiErrorDetail {
    /// Stable snake_case code (`bad_json`, `unknown_session`, …).
    pub code: String,
    /// What went wrong, for humans.
    pub message: String,
}

impl ApiError {
    /// Build an error body.
    pub fn new(code: &str, message: impl Into<String>) -> Self {
        ApiError {
            error: ApiErrorDetail {
                code: code.to_string(),
                message: message.into(),
            },
        }
    }

    /// Serialize to the wire representation.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).unwrap_or_else(|_| "{\"error\":{}}".to_string())
    }
}

// ---------------------------------------------------------------------------
// Sessions
// ---------------------------------------------------------------------------

/// `POST /sessions` request: the two relations as CSV text, optional gold
/// pairs, optional config overrides.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CreateSessionRequest {
    /// Left table, CSV with a header row.
    pub left_csv: String,
    /// Right table, CSV with a header row.
    pub right_csv: String,
    /// Ground-truth match pairs `[[left_row, right_row], …]` (optional).
    pub gold: Option<Vec<Vec<u32>>>,
    /// Config overrides (optional; defaults mirror `SessionConfig`).
    pub config: Option<SessionConfigDto>,
}

/// Wire form of [`SessionConfig`] — every field optional so clients send
/// only what they override.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SessionConfigDto {
    /// Master seed.
    pub seed: Option<u64>,
    /// Run auto-LF discovery at load.
    pub auto_lfs: Option<bool>,
    /// `"majority" | "snorkel" | "panda" | "panda-transitive"`.
    pub model: Option<String>,
    /// Cosine floor for blocking.
    pub blocking_min_cosine: Option<f64>,
    /// Per-record candidate cap for blocking (`0` = uncapped).
    pub blocking_max_per_record: Option<u64>,
}

impl SessionConfigDto {
    /// Resolve overrides against the library defaults.
    pub fn resolve(&self) -> Result<SessionConfig, String> {
        let mut cfg = SessionConfig::default();
        if let Some(seed) = self.seed {
            cfg.seed = seed;
        }
        if let Some(auto) = self.auto_lfs {
            cfg.auto_lfs = auto;
        }
        if let Some(model) = &self.model {
            cfg.model = match model.as_str() {
                "majority" => ModelChoice::Majority,
                "snorkel" => ModelChoice::Snorkel,
                "panda" => ModelChoice::Panda,
                "panda-transitive" => {
                    ModelChoice::PandaTransitive(panda_model_transitivity_two_table())
                }
                other => return Err(format!("unknown model {other:?}")),
            };
        }
        if let Some(c) = self.blocking_min_cosine {
            cfg.blocking_min_cosine = c as f32;
        }
        if let Some(cap) = self.blocking_max_per_record {
            cfg.blocking_max_per_record = if cap == 0 { None } else { Some(cap as usize) };
        }
        Ok(cfg)
    }
}

fn panda_model_transitivity_two_table() -> panda_model::TransitivityMode {
    panda_model::TransitivityMode::TwoTable
}

/// Build the [`TablePair`] for a create-session request.
pub fn build_tables(req: &CreateSessionRequest) -> Result<TablePair, String> {
    let left = Table::from_csv_str("left", &req.left_csv, true).map_err(|e| format!("{e:?}"))?;
    let right = Table::from_csv_str("right", &req.right_csv, true).map_err(|e| format!("{e:?}"))?;
    let mut tables = TablePair::new(left, right);
    if let Some(gold) = &req.gold {
        let mut set = MatchSet::new();
        for pair in gold {
            let [l, r] = pair.as_slice() else {
                return Err(format!("gold pair must be [left, right], got {pair:?}"));
            };
            set.insert(RecordId(*l), RecordId(*r));
        }
        tables.gold = Some(set);
    }
    Ok(tables)
}

/// `POST /sessions` / `GET /sessions/{id}` / `POST /sessions/{id}/fit`
/// response.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SessionResponse {
    /// Session handle for subsequent calls.
    pub session: u64,
    /// The current panel snapshot.
    pub snapshot: SessionSnapshot,
}

/// `GET /sessions` response.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SessionListResponse {
    /// Every known session, live or evicted, sorted by id.
    pub sessions: Vec<SessionListEntry>,
    /// `"primary"` or `"follower"`.
    pub role: String,
    /// The shard map, when `--peers` was configured.
    pub shards: Option<ShardMapDto>,
}

/// One row of the `GET /sessions` listing.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SessionListEntry {
    /// Session handle.
    pub session: u64,
    /// `"live"` (in memory), `"evicted"` (snapshot on disk, rehydrates
    /// on next touch), or `"quarantined"` (replication apply failed;
    /// awaiting a full resync from the primary).
    pub status: String,
    /// True when the session was rebuilt from the state directory at
    /// server startup (WAL-on-top-of-snapshot replay).
    pub recovered: bool,
    /// Sequence number of the last acknowledged WAL record. A follower
    /// whose `wal_seq` equals the primary's has applied everything.
    pub wal_seq: u64,
    /// Label-matrix digest after that record, as zero-padded hex (a
    /// string, so 64-bit values survive JSON number parsers).
    pub matrix_digest: String,
    /// The peer owning this session in the shard map (absent when
    /// unsharded).
    pub shard: Option<String>,
}

/// The shard map inside `GET /sessions`, when `--peers` is configured.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShardMapDto {
    /// This server's advertised address.
    pub self_addr: String,
    /// Every peer in the consistent-hash ring (including `self_addr`).
    pub peers: Vec<String>,
}

/// `POST /promote` response.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PromoteResponse {
    /// Always `"primary"` after the call returns.
    pub role: String,
    /// True when this call flipped the role (false = already primary).
    pub promoted: bool,
}

/// `POST /rebalance` request: move one session to another shard.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RebalanceRequest {
    /// Session to move (must live on this server).
    pub session: u64,
    /// Receiving peer's HTTP address (its `/handoff` route is called).
    pub target: String,
}

/// `POST /rebalance` response.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RebalanceResponse {
    /// The moved session.
    pub session: u64,
    /// Where it now lives.
    pub target: String,
    /// `"moved"`.
    pub status: String,
}

/// `POST /sessions/{id}/labels` request: one user spot label (the
/// left/right-click on a Data Viewer "M/U" cell).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LabelRequest {
    /// Candidate index (from a query/viewer row).
    pub candidate: u64,
    /// The user's verdict.
    pub is_match: bool,
}

/// `POST /sessions/{id}/labels` response.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LabelResponse {
    /// The labeled candidate index.
    pub candidate: u64,
    /// Total spot labels in the session after this one.
    pub n_user_labels: usize,
}

// ---------------------------------------------------------------------------
// Labeling functions
// ---------------------------------------------------------------------------

/// `POST /sessions/{id}/lfs` request: a declarative LF.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LfSpec {
    /// Registry name. Re-using a name replaces that LF (same as editing a
    /// notebook cell).
    pub name: String,
    /// `"similarity" | "attribute_equality" | "numeric_tolerance" |
    /// "size_unmatch"`.
    pub kind: String,
    /// Attribute (same name on both sides).
    pub attr: Option<String>,
    /// Left-side attribute when the schemas differ.
    pub left_attr: Option<String>,
    /// Right-side attribute when the schemas differ.
    pub right_attr: Option<String>,
    /// similarity: score above this votes +1 (default 0.6).
    pub upper: Option<f64>,
    /// similarity: score below this votes −1 (default 0.1).
    pub lower: Option<f64>,
    /// similarity: measure name (`jaccard`, `cosine`, `dice`, `overlap`,
    /// `lev`, `jw`, `me`); default `jaccard`.
    pub measure: Option<String>,
    /// attribute_equality: vote −1 on differing values (default true).
    pub unmatch_on_differ: Option<bool>,
    /// numeric_tolerance: relative difference below which the LF votes +1.
    pub match_tol: Option<f64>,
    /// numeric_tolerance: relative difference above which the LF votes −1.
    pub unmatch_tol: Option<f64>,
    /// size_unmatch: attributes to extract sizes from.
    pub attrs: Option<Vec<String>>,
}

impl LfSpec {
    /// Map the spec onto a concrete builder LF.
    pub fn build(&self) -> Result<BoxedLf, String> {
        if self.name.is_empty() {
            return Err("LF name must be non-empty".into());
        }
        match self.kind.as_str() {
            "similarity" => {
                let attr = self.attr_or_sides()?;
                let mut config = SimilarityConfig::default_jaccard();
                if let Some(m) = &self.measure {
                    config.measure = parse_measure(m)?;
                }
                let mut lf = SimilarityLf::new(
                    &self.name,
                    attr,
                    config,
                    self.upper.unwrap_or(0.6),
                    self.lower.unwrap_or(0.1),
                );
                if let (Some(l), Some(r)) = (&self.left_attr, &self.right_attr) {
                    lf = lf.with_attrs(l.clone(), r.clone());
                }
                Ok(Arc::new(lf))
            }
            "attribute_equality" => {
                let attr = self.require_attr()?;
                Ok(Arc::new(AttributeEqualityLf::new(
                    &self.name,
                    attr,
                    self.unmatch_on_differ.unwrap_or(true),
                )))
            }
            "numeric_tolerance" => {
                let attr = self.require_attr()?;
                let m = self.match_tol.unwrap_or(0.05);
                let u = self.unmatch_tol.unwrap_or(0.5);
                if m.is_nan() || u.is_nan() || m > u {
                    return Err(format!("match_tol {m} must be ≤ unmatch_tol {u}"));
                }
                Ok(Arc::new(NumericToleranceLf::new(&self.name, attr, m, u)))
            }
            "size_unmatch" => {
                let attrs = self
                    .attrs
                    .as_ref()
                    .filter(|a| !a.is_empty())
                    .ok_or("size_unmatch requires non-empty `attrs`")?;
                let refs: Vec<&str> = attrs.iter().map(String::as_str).collect();
                Ok(Arc::new(ExtractionLf::size_unmatch(&refs)))
            }
            other => Err(format!(
                "unknown LF kind {other:?} (expected similarity, attribute_equality, \
                 numeric_tolerance, or size_unmatch)"
            )),
        }
    }

    fn require_attr(&self) -> Result<&str, String> {
        self.attr
            .as_deref()
            .ok_or_else(|| format!("LF kind {:?} requires `attr`", self.kind))
    }

    /// `attr`, or a placeholder when both sides are named explicitly.
    fn attr_or_sides(&self) -> Result<&str, String> {
        match (&self.attr, &self.left_attr, &self.right_attr) {
            (Some(a), _, _) => Ok(a),
            (None, Some(l), Some(_)) => Ok(l),
            _ => Err("similarity requires `attr` or both `left_attr` and `right_attr`".into()),
        }
    }
}

fn parse_measure(name: &str) -> Result<Measure, String> {
    Ok(match name {
        "jaccard" => Measure::Jaccard,
        "cosine" => Measure::Cosine,
        "dice" => Measure::Dice,
        "overlap" => Measure::Overlap,
        "lev" | "levenshtein" => Measure::Levenshtein,
        "jw" | "jaro_winkler" => Measure::JaroWinkler,
        "me" | "monge_elkan" => Measure::MongeElkan,
        other => return Err(format!("unknown measure {other:?}")),
    })
}

/// `POST /sessions/{id}/lfs` response.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LfResponse {
    /// Name the LF was registered under.
    pub lf: String,
    /// Registry size after the edit.
    pub n_lfs: usize,
}

// ---------------------------------------------------------------------------
// Queries and matching
// ---------------------------------------------------------------------------

/// `POST /sessions/{id}/query` request — one click on an LF-stats cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QueryRequest {
    /// LF whose stats cell was clicked.
    pub lf: String,
    /// Which cell (`"LikelyFalsePositives"`, `"Conflicts"`, …).
    pub query: DebugQuery,
    /// Max rows to return (default 10).
    pub limit: Option<u64>,
}

/// `POST /match` request: score ad-hoc row pairs against a fitted session.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MatchRequest {
    /// Session handle.
    pub session: u64,
    /// Row-index pairs `[[left_row, right_row], …]`.
    pub pairs: Vec<Vec<u32>>,
}

/// `POST /match` response.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MatchResponse {
    /// Match posterior per input pair, aligned with the request.
    pub scores: Vec<f64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lf_spec_builds_each_kind() {
        let sim = LfSpec {
            name: "name_overlap".into(),
            kind: "similarity".into(),
            attr: Some("name".into()),
            upper: Some(0.7),
            measure: Some("cosine".into()),
            ..Default::default()
        };
        assert_eq!(sim.build().unwrap().name(), "name_overlap");

        let eq = LfSpec {
            name: "phone_eq".into(),
            kind: "attribute_equality".into(),
            attr: Some("phone".into()),
            ..Default::default()
        };
        assert_eq!(eq.build().unwrap().name(), "phone_eq");

        let num = LfSpec {
            name: "price_tol".into(),
            kind: "numeric_tolerance".into(),
            attr: Some("price".into()),
            ..Default::default()
        };
        assert_eq!(num.build().unwrap().name(), "price_tol");

        let size = LfSpec {
            name: "ignored".into(),
            kind: "size_unmatch".into(),
            attrs: Some(vec!["name".into()]),
            ..Default::default()
        };
        assert!(size.build().is_ok());
    }

    #[test]
    fn lf_spec_rejects_bad_input() {
        let bad_kind = LfSpec {
            name: "x".into(),
            kind: "python".into(),
            ..Default::default()
        };
        let Err(msg) = bad_kind.build() else {
            panic!("expected error");
        };
        assert!(msg.contains("unknown LF kind"));

        let no_attr = LfSpec {
            name: "x".into(),
            kind: "similarity".into(),
            ..Default::default()
        };
        assert!(no_attr.build().is_err());

        let inverted = LfSpec {
            name: "x".into(),
            kind: "numeric_tolerance".into(),
            attr: Some("price".into()),
            match_tol: Some(0.9),
            unmatch_tol: Some(0.1),
            ..Default::default()
        };
        assert!(inverted.build().is_err());
    }

    #[test]
    fn config_dto_resolves_overrides() {
        let dto = SessionConfigDto {
            seed: Some(7),
            auto_lfs: Some(false),
            model: Some("majority".into()),
            blocking_max_per_record: Some(0),
            ..Default::default()
        };
        let cfg = dto.resolve().unwrap();
        assert_eq!(cfg.seed, 7);
        assert!(!cfg.auto_lfs);
        assert!(matches!(cfg.model, ModelChoice::Majority));
        assert_eq!(cfg.blocking_max_per_record, None);
        assert!(SessionConfigDto {
            model: Some("gpt".into()),
            ..Default::default()
        }
        .resolve()
        .is_err());
    }

    #[test]
    fn request_dtos_roundtrip_json() {
        let req: CreateSessionRequest = serde_json::from_str(
            r#"{"left_csv":"id,name\n1,a","right_csv":"id,name\n1,b","gold":[[0,0]]}"#,
        )
        .unwrap();
        assert!(req.config.is_none());
        let tables = build_tables(&req).unwrap();
        assert!(tables
            .gold
            .unwrap()
            .contains(&panda_table::CandidatePair::new(0, 0)));

        let q: QueryRequest =
            serde_json::from_str(r#"{"lf":"name_overlap","query":"Conflicts"}"#).unwrap();
        assert!(matches!(q.query, DebugQuery::Conflicts));

        let err = ApiError::new("bad_json", "oops").to_json();
        assert!(err.contains("\"code\":\"bad_json\""));
    }
}
