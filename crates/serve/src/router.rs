//! Request dispatch: path + method → session call → JSON response.
//!
//! Every request runs under a `serve.request` span and emits one
//! `serve.request` journal event (route pattern, method, status), so
//! `panda report` renders server traffic alongside session telemetry.

use crate::api::{
    ApiError, CreateSessionRequest, LabelRequest, LabelResponse, LfResponse, LfSpec, MatchRequest,
    MatchResponse, PromoteResponse, QueryRequest, RebalanceRequest, RebalanceResponse,
    SessionListEntry, SessionListResponse, SessionResponse, ShardMapDto,
};
use crate::http::{Request, Response};
use crate::persist::WalOp;
use crate::repl::{self, HandoffRequest};
use crate::state::{AppState, SessionSlot};
use panda_session::PandaSession;
use panda_table::CandidatePair;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Handle one parsed request against the shared state.
pub fn handle(state: &AppState, req: &Request) -> Response {
    handle_routed(state, req).1
}

/// [`handle`], but also returning the matched route pattern so the event
/// loop can label its per-route×status metrics without re-routing.
pub fn handle_routed(state: &AppState, req: &Request) -> (&'static str, Response) {
    let _span = panda_obs::span("serve.request");
    let (route, resp) = dispatch(state, req);
    panda_obs::counter_add("serve.requests", 1);
    panda_obs::counter_add(status_class_counter(resp.status), 1);
    if panda_obs::journal_enabled() {
        panda_obs::event("serve.request")
            .field("method", req.method.as_str())
            .field("route", route)
            .field("status", i64::from(resp.status))
            .emit();
    }
    (route, resp)
}

/// Route and handle; returns the route *pattern* (for telemetry — never
/// the concrete path, which would explode metric cardinality).
fn dispatch(state: &AppState, req: &Request) -> (&'static str, Response) {
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    let method = req.method.as_str();
    match segments.as_slice() {
        ["healthz"] => match method {
            "GET" => ("/healthz", Response::json(200, r#"{"status":"ok"}"#)),
            _ => ("/healthz", method_not_allowed("GET")),
        },
        ["metrics"] => match method {
            "GET" => {
                let snap = panda_obs::snapshot();
                let resp = match req.query_param("format") {
                    Some("prometheus") => Response::text(200, snap.to_prometheus()),
                    Some(other) => error(
                        400,
                        "bad_format",
                        format!("unknown metrics format {other:?} (try \"prometheus\")"),
                    ),
                    None => Response::json(200, snap.to_json()),
                };
                ("/metrics", resp)
            }
            _ => ("/metrics", method_not_allowed("GET")),
        },
        ["events"] => match method {
            "GET" => ("/events", events_tail(req)),
            _ => ("/events", method_not_allowed("GET")),
        },
        ["shutdown"] => match method {
            "POST" => {
                state.request_shutdown();
                ("/shutdown", Response::json(200, r#"{"status":"draining"}"#))
            }
            _ => ("/shutdown", method_not_allowed("POST")),
        },
        ["match"] => match method {
            "POST" => ("/match", score_pairs(state, req)),
            _ => ("/match", method_not_allowed("POST")),
        },
        ["promote"] => match method {
            "POST" => {
                // Idempotent failover lever: flips a follower to
                // primary (stopping its apply loop), no-ops on one.
                let promoted = state.promote();
                let resp = json_200(&PromoteResponse {
                    role: "primary".to_string(),
                    promoted,
                });
                ("/promote", resp)
            }
            _ => ("/promote", method_not_allowed("POST")),
        },
        ["rebalance"] => match method {
            "POST" => (
                "/rebalance",
                primary_only(state).unwrap_or_else(|| rebalance(state, req)),
            ),
            _ => ("/rebalance", method_not_allowed("POST")),
        },
        ["handoff"] => match method {
            "POST" => (
                "/handoff",
                primary_only(state).unwrap_or_else(|| adopt_handoff(state, req)),
            ),
            _ => ("/handoff", method_not_allowed("POST")),
        },
        ["sessions"] => match method {
            "POST" => (
                "/sessions",
                primary_only(state).unwrap_or_else(|| create_session(state, req)),
            ),
            "GET" => ("/sessions", list_sessions(state)),
            _ => ("/sessions", method_not_allowed("GET, POST")),
        },
        ["sessions", id] => {
            let route = "/sessions/{id}";
            match method {
                "GET" => (route, with_session(state, id, session_body)),
                "DELETE" => (
                    route,
                    primary_only(state).unwrap_or_else(|| delete_session(state, id)),
                ),
                _ => (route, method_not_allowed("GET, DELETE")),
            }
        }
        ["sessions", id, "fit"] => {
            let route = "/sessions/{id}/fit";
            match method {
                "POST" => (
                    route,
                    primary_only(state).unwrap_or_else(|| {
                        with_slot(state, id, |id, slot| {
                            slot.session.fit();
                            if let Err(msg) = slot.log_op(WalOp::Fit) {
                                return persist_error(msg);
                            }
                            session_body(id, &mut slot.session)
                        })
                    }),
                ),
                _ => (route, method_not_allowed("POST")),
            }
        }
        ["sessions", id, "labels"] => {
            let route = "/sessions/{id}/labels";
            match method {
                "POST" => (
                    route,
                    primary_only(state).unwrap_or_else(|| label_candidate(state, id, req)),
                ),
                _ => (route, method_not_allowed("POST")),
            }
        }
        ["sessions", id, "lfs"] => {
            let route = "/sessions/{id}/lfs";
            match method {
                "POST" => (
                    route,
                    primary_only(state).unwrap_or_else(|| add_lf(state, id, req)),
                ),
                _ => (route, method_not_allowed("POST")),
            }
        }
        ["sessions", id, "lfs", name] => {
            let route = "/sessions/{id}/lfs/{name}";
            match method {
                "DELETE" => (
                    route,
                    primary_only(state).unwrap_or_else(|| remove_lf(state, id, name)),
                ),
                _ => (route, method_not_allowed("DELETE")),
            }
        }
        ["sessions", id, "query"] => {
            let route = "/sessions/{id}/query";
            match method {
                "POST" => (route, run_query(state, id, req)),
                _ => (route, method_not_allowed("POST")),
            }
        }
        _ => (
            "<unmatched>",
            error(404, "not_found", format!("no route for {}", req.path)),
        ),
    }
}

// ---------------------------------------------------------------------------
// Handlers
// ---------------------------------------------------------------------------

fn create_session(state: &AppState, req: &Request) -> Response {
    let body: CreateSessionRequest = match parse_body(req) {
        Ok(b) => b,
        Err(resp) => return resp,
    };
    let config = match body.config.clone().unwrap_or_default().resolve() {
        Ok(c) => c,
        Err(msg) => return error(400, "bad_config", msg),
    };
    let tables = match crate::api::build_tables(&body) {
        Ok(t) => t,
        Err(msg) => return error(400, "bad_tables", msg),
    };
    let session = PandaSession::load(tables, config);
    if session.candidates().is_empty() {
        // Same contract as `panda match` on the CLI: zero candidates is a
        // client problem (blocking found nothing), never a silent success.
        return error(
            422,
            "no_candidates",
            "blocking produced zero candidate pairs; loosen blocking_min_cosine \
             or check the input tables",
        );
    }
    let id = match state.create(session, Some(&body)) {
        Ok(id) => id,
        Err(msg) => return persist_error(msg),
    };
    let guard = state.get(id).expect("just inserted");
    let mut slot = guard.lock().unwrap_or_else(|e| e.into_inner());
    session_body(id, &mut slot.session)
}

fn list_sessions(state: &AppState) -> Response {
    let ring = state.ring();
    let sessions = state
        .list()
        .into_iter()
        .map(|info| SessionListEntry {
            session: info.id,
            status: if info.quarantined {
                "quarantined"
            } else if info.live {
                "live"
            } else {
                "evicted"
            }
            .to_string(),
            recovered: info.recovered,
            wal_seq: info.wal_seq,
            matrix_digest: format!("{:#018x}", info.matrix_digest),
            shard: ring.map(|r| r.owner_of(info.id).to_string()),
        })
        .collect();
    json_200(&SessionListResponse {
        sessions,
        role: if state.is_follower() {
            "follower"
        } else {
            "primary"
        }
        .to_string(),
        shards: ring.map(|r| ShardMapDto {
            self_addr: r.self_addr().to_string(),
            peers: r.peers().to_vec(),
        }),
    })
}

fn delete_session(state: &AppState, id: &str) -> Response {
    let Some(id) = parse_id(id) else {
        return error(404, "unknown_session", format!("bad session id {id:?}"));
    };
    if state.remove(id) {
        Response::json(200, r#"{"status":"deleted"}"#)
    } else {
        error(404, "unknown_session", format!("no session {id}"))
    }
}

fn add_lf(state: &AppState, id: &str, req: &Request) -> Response {
    let spec: LfSpec = match parse_body(req) {
        Ok(b) => b,
        Err(resp) => return resp,
    };
    let lf = match spec.build() {
        Ok(lf) => lf,
        Err(msg) => return error(400, "bad_lf", msg),
    };
    let name = lf.name().to_string();
    with_slot(state, id, move |_, slot| {
        match slot.session.upsert_lf_incremental(lf) {
            // An LF that panics on some pair is the user's bug, reported
            // cleanly; the session has already rolled the edit back.
            Err(msg) => error(422, "lf_failed", msg),
            Ok(()) => {
                if let Err(msg) = slot.log_op(WalOp::UpsertLf { spec }) {
                    return persist_error(msg);
                }
                json_200(&LfResponse {
                    lf: name,
                    n_lfs: slot.session.registry().lfs().len(),
                })
            }
        }
    })
}

fn remove_lf(state: &AppState, id: &str, name: &str) -> Response {
    let name = name.to_string();
    with_slot(state, id, move |_, slot| {
        if slot.session.remove_lf_incremental(&name) {
            if let Err(msg) = slot.log_op(WalOp::RemoveLf { name }) {
                return persist_error(msg);
            }
            Response::json(200, r#"{"status":"removed"}"#)
        } else {
            error(404, "unknown_lf", format!("no LF named {name:?}"))
        }
    })
}

fn label_candidate(state: &AppState, id: &str, req: &Request) -> Response {
    let body: LabelRequest = match parse_body(req) {
        Ok(b) => b,
        Err(resp) => return resp,
    };
    with_slot(state, id, move |_, slot| {
        let i = body.candidate as usize;
        if i >= slot.session.candidates().len() {
            return error(
                422,
                "bad_candidate",
                format!(
                    "candidate {i} out of range ({} candidate pairs)",
                    slot.session.candidates().len()
                ),
            );
        }
        slot.session.label_pair(i, body.is_match);
        if let Err(msg) = slot.log_op(WalOp::Label {
            candidate: body.candidate,
            is_match: body.is_match,
        }) {
            return persist_error(msg);
        }
        json_200(&LabelResponse {
            candidate: body.candidate,
            n_user_labels: slot.session.em_stats().n_user_labels,
        })
    })
}

fn run_query(state: &AppState, id: &str, req: &Request) -> Response {
    let body: QueryRequest = match parse_body(req) {
        Ok(b) => b,
        Err(resp) => return resp,
    };
    with_session(state, id, move |_, s| {
        if s.registry().get(&body.lf).is_none() {
            return error(404, "unknown_lf", format!("no LF named {:?}", body.lf));
        }
        let limit = body.limit.unwrap_or(10) as usize;
        let rows = s.debug_pairs(&body.lf, body.query, limit);
        json_200(&QueryRows { rows })
    })
}

/// `POST /sessions/{id}/query` response wrapper.
#[derive(Serialize, Deserialize)]
struct QueryRows {
    rows: Vec<panda_session::DataViewerRow>,
}

fn score_pairs(state: &AppState, req: &Request) -> Response {
    let body: MatchRequest = match parse_body(req) {
        Ok(b) => b,
        Err(resp) => return resp,
    };
    if body.pairs.is_empty() {
        return error(422, "no_pairs", "`pairs` must be non-empty");
    }
    if let Some(resp) = misdirected_421(state, body.session) {
        return resp;
    }
    if let Some(resp) = quarantined_409(state, body.session) {
        return resp;
    }
    let Some(guard) = state.get(body.session) else {
        return error(
            404,
            "unknown_session",
            format!("no session {}", body.session),
        );
    };
    let slot = guard.lock().unwrap_or_else(|e| e.into_inner());
    let session = &slot.session;
    let mut scores = Vec::with_capacity(body.pairs.len());
    for pair in &body.pairs {
        let [l, r] = pair.as_slice() else {
            return error(
                400,
                "bad_pair",
                format!("each pair must be [left_row, right_row], got {pair:?}"),
            );
        };
        match session.score_pair(CandidatePair::new(*l, *r)) {
            Ok(score) => scores.push(score),
            Err(msg) => return error(422, "match_failed", msg),
        }
    }
    json_200(&MatchResponse { scores })
}

/// `POST /rebalance` (primary only): move one session to another shard
/// by snapshot + WAL-tail handoff. The slot lock is held while the
/// handoff payload is built, so the shipped state is a consistent
/// cut; requests racing the move see the session vanish (404/421
/// toward the new owner), never half-moved state.
fn rebalance(state: &AppState, req: &Request) -> Response {
    let body: RebalanceRequest = match parse_body(req) {
        Ok(b) => b,
        Err(resp) => return resp,
    };
    let id = body.session;
    if let Some(resp) = quarantined_409(state, id) {
        return resp;
    }
    let Some(guard) = state.get(id) else {
        return error(404, "unknown_session", format!("no session {id}"));
    };
    let handoff = {
        let slot = guard.lock().unwrap_or_else(|e| e.into_inner());
        match slot.handoff_parts() {
            Ok((snapshot, tail)) => HandoffRequest {
                session: id,
                snapshot,
                tail,
            },
            Err(msg) => return error(422, "not_rebalancable", msg),
        }
    };
    let payload = match serde_json::to_string(&handoff) {
        Ok(p) => p,
        Err(e) => return error(500, "encode_failed", e.0),
    };
    match repl::http_post(&body.target, "/handoff", &payload, Duration::from_secs(30)) {
        Ok((200, _)) => {
            // The target holds the session now; dropping it here also
            // ships a Delete to this shard's own followers.
            state.remove(id);
            panda_obs::counter_add_labeled("repl.rebalance_moves", &[("direction", "out")], 1);
            json_200(&RebalanceResponse {
                session: id,
                target: body.target,
                status: "moved".to_string(),
            })
        }
        Ok((status, resp_body)) => error(
            502,
            "handoff_rejected",
            format!("target {} answered {status}: {resp_body}", body.target),
        ),
        Err(msg) => error(
            502,
            "handoff_failed",
            format!("target {} unreachable: {msg}", body.target),
        ),
    }
}

/// `POST /handoff` (primary only): the receiving side of a rebalance.
/// The moved session is rebuilt through the same digest-verified replay
/// path as crash recovery — a seq gap or digest mismatch in the shipped
/// tail rejects the whole handoff (422) and installs nothing.
fn adopt_handoff(state: &AppState, req: &Request) -> Response {
    let body: HandoffRequest = match parse_body(req) {
        Ok(b) => b,
        Err(resp) => return resp,
    };
    if let Some(ring) = state.ring() {
        if !ring.owns(body.session) {
            return error(
                421,
                "misdirected",
                format!(
                    "session {} belongs to shard {}, not this server ({})",
                    body.session,
                    ring.owner_of(body.session),
                    ring.self_addr()
                ),
            );
        }
    }
    match crate::persist::rebuild(body.snapshot, &body.tail) {
        Ok(replayer) => match state.adopt_handoff(body.session, replayer) {
            Ok(()) => Response::json(200, r#"{"status":"adopted"}"#),
            Err(msg) => error(409, "adopt_failed", msg),
        },
        Err(msg) => {
            panda_obs::counter_add_labeled("repl.quarantines", &[("reason", "handoff")], 1);
            error(422, "handoff_invalid", msg)
        }
    }
}

// ---------------------------------------------------------------------------
// Plumbing
// ---------------------------------------------------------------------------

/// `Some(421)` when this server is a follower — mutating routes answer
/// it instead of dispatching. The body names the primary when known.
fn primary_only(state: &AppState) -> Option<Response> {
    if !state.is_follower() {
        return None;
    }
    panda_obs::counter_add("serve.not_primary_421", 1);
    let primary = state.primary_http();
    let msg = match &primary {
        Some(addr) => {
            format!("this server is a read-only follower; send writes to the primary at {addr}")
        }
        None => "this server is a read-only follower; no primary announced yet".to_string(),
    };
    let mut body = ApiError::new("not_primary", msg).to_json();
    if let Some(addr) = &primary {
        // Splice a machine-readable `primary` field next to the error.
        if let Ok(quoted) = serde_json::to_string(addr) {
            body.truncate(body.len() - 1);
            body.push_str(",\"primary\":");
            body.push_str(&quoted);
            body.push('}');
        }
    }
    Some(Response::json(421, body))
}

/// `Some(421)` when the shard map says another peer owns `id` and the
/// session is not resident here (a leftover from before a ring change
/// keeps being served until it is rebalanced away).
fn misdirected_421(state: &AppState, id: u64) -> Option<Response> {
    let ring = state.ring()?;
    if ring.owns(id) || state.contains(id) {
        return None;
    }
    panda_obs::counter_add("serve.misdirected_421", 1);
    Some(error(
        421,
        "misdirected",
        format!(
            "session {id} belongs to shard {}; this server is {}",
            ring.owner_of(id),
            ring.self_addr()
        ),
    ))
}

/// `Some(409)` when the session is quarantined on this follower
/// (replication apply failed; a full resync from the primary clears it).
fn quarantined_409(state: &AppState, id: u64) -> Option<Response> {
    if !state.quarantined(id) {
        return None;
    }
    Some(error(
        409,
        "session_quarantined",
        format!(
            "session {id} is quarantined on this server (replication apply failed); \
             awaiting a full resync from the primary"
        ),
    ))
}

/// Look up a session slot (rehydrating it if evicted) and run `f` under
/// its lock; 404 on a bad handle, 421 when another shard owns it, 409
/// when it is quarantined.
fn with_slot(
    state: &AppState,
    id: &str,
    f: impl FnOnce(u64, &mut SessionSlot) -> Response,
) -> Response {
    let Some(id) = parse_id(id) else {
        return error(404, "unknown_session", format!("bad session id {id:?}"));
    };
    if let Some(resp) = misdirected_421(state, id) {
        return resp;
    }
    if let Some(resp) = quarantined_409(state, id) {
        return resp;
    }
    let Some(guard) = state.get(id) else {
        return error(404, "unknown_session", format!("no session {id}"));
    };
    let mut slot = guard.lock().unwrap_or_else(|e| e.into_inner());
    f(id, &mut slot)
}

/// Read-only convenience over [`with_slot`] for handlers that never log.
fn with_session(
    state: &AppState,
    id: &str,
    f: impl FnOnce(u64, &mut PandaSession) -> Response,
) -> Response {
    with_slot(state, id, |id, slot| f(id, &mut slot.session))
}

/// Cap on events returned per `/events` poll, whatever the client asks
/// for: bounds response size against the journal capacity.
const EVENTS_MAX: usize = 512;

/// Parse the `since` cursor off a `/events` request. `Err` carries the
/// 400 to answer with.
pub(crate) fn events_since(req: &Request) -> Result<u64, Response> {
    req.query_param("since")
        .unwrap_or("0")
        .parse::<u64>()
        .map_err(|_| error(400, "bad_since", "since must be an integer sequence number"))
}

/// Parse the `max` batch-size parameter (default 256, capped).
pub(crate) fn events_max(req: &Request) -> usize {
    req.query_param("max")
        .and_then(|m| m.parse::<usize>().ok())
        .unwrap_or(256)
        .min(EVENTS_MAX)
}

/// `GET /events?since=<seq>[&max=<n>]`: non-destructive journal tail
/// from a sequence cursor. The event loop upgrades an empty tail to a
/// long-poll; this immediate form is what dispatch (and tests) use.
fn events_tail(req: &Request) -> Response {
    let since = match events_since(req) {
        Ok(s) => s,
        Err(resp) => return resp,
    };
    let tail = panda_obs::journal_tail(since, events_max(req));
    Response::json(200, render_events_body(&tail))
}

/// Serialize a journal tail as the `/events` response body:
/// `{"next":N,"missed":M,"events":[...]}`. `next` is the cursor for the
/// next poll; `missed` counts events that aged out of the bounded
/// journal before this read (a follower reports them as a gap).
pub(crate) fn render_events_body(tail: &panda_obs::JournalTail) -> String {
    let mut body = format!(
        "{{\"next\":{},\"missed\":{},\"events\":[",
        tail.next, tail.missed
    );
    for (i, e) in tail.events.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push_str(&e.to_json_line());
    }
    body.push_str("]}");
    body
}

/// The edit was applied in memory but could not be made durable: the
/// client sees a 500 and must treat the op as not acknowledged.
fn persist_error(msg: String) -> Response {
    panda_obs::counter_add("serve.persist_failed_500", 1);
    error(500, "persist_failed", msg)
}

/// The standard session body: handle + fresh snapshot.
fn session_body(id: u64, session: &mut PandaSession) -> Response {
    json_200(&SessionResponse {
        session: id,
        snapshot: session.snapshot(),
    })
}

fn parse_id(raw: &str) -> Option<u64> {
    raw.parse().ok()
}

fn parse_body<T: Deserialize>(req: &Request) -> Result<T, Response> {
    let text = std::str::from_utf8(&req.body)
        .map_err(|_| error(400, "bad_json", "request body is not UTF-8"))?;
    serde_json::from_str(text).map_err(|e| error(400, "bad_json", e.0))
}

fn json_200<T: Serialize>(body: &T) -> Response {
    match serde_json::to_string(body) {
        Ok(json) => Response::json(200, json),
        Err(e) => error(500, "encode_failed", e.0),
    }
}

fn error(status: u16, code: &str, message: impl Into<String>) -> Response {
    Response::json(status, ApiError::new(code, message).to_json())
}

fn method_not_allowed(allowed: &str) -> Response {
    error(
        405,
        "method_not_allowed",
        format!("allowed methods: {allowed}"),
    )
}

fn status_class_counter(status: u16) -> &'static str {
    match status / 100 {
        2 => "serve.status_2xx",
        4 => "serve.status_4xx",
        _ => "serve.status_5xx",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(method: &str, path: &str, body: &str) -> Request {
        let (path, query) = match path.split_once('?') {
            Some((p, q)) => (p, q),
            None => (path, ""),
        };
        Request {
            method: method.to_string(),
            path: path.to_string(),
            query: query.to_string(),
            body: body.as_bytes().to_vec(),
        }
    }

    const LEFT_CSV: &str =
        "id,name,price\n1,apple iphone 12,799\n2,galaxy s21 ultra,1199\n3,pixel 5 phone,699";
    const RIGHT_CSV: &str = "id,name,price\n1,iphone 12 apple,789\n2,samsung galaxy s21 ultra,1199\n3,google pixel 5,705";

    fn create_body() -> String {
        serde_json::to_string(&crate::api::CreateSessionRequest {
            left_csv: LEFT_CSV.into(),
            right_csv: RIGHT_CSV.into(),
            gold: Some(vec![vec![0, 0], vec![1, 1], vec![2, 2]]),
            config: Some(crate::api::SessionConfigDto {
                auto_lfs: Some(false),
                ..Default::default()
            }),
        })
        .unwrap()
    }

    fn session_id(resp: &Response) -> u64 {
        let v = serde_json::parse_value(&resp.body).unwrap();
        match v.get_field("session") {
            Some(serde::Value::UInt(u)) => *u,
            Some(serde::Value::Int(i)) => *i as u64,
            other => panic!("no session id in {other:?}"),
        }
    }

    #[test]
    fn full_ide_loop_over_the_router() {
        let state = AppState::new();
        let resp = handle(&state, &req("POST", "/sessions", &create_body()));
        assert_eq!(resp.status, 200, "{}", resp.body);
        let id = session_id(&resp);

        // Add an LF incrementally, refit, query, match.
        let lf =
            r#"{"name":"name_overlap","kind":"similarity","attr":"name","upper":0.3,"lower":0.05}"#;
        let resp = handle(&state, &req("POST", &format!("/sessions/{id}/lfs"), lf));
        assert_eq!(resp.status, 200, "{}", resp.body);
        assert!(resp.body.contains("\"n_lfs\":1"));

        let resp = handle(&state, &req("POST", &format!("/sessions/{id}/fit"), ""));
        assert_eq!(resp.status, 200, "{}", resp.body);

        // Spot-label a candidate, reject an out-of-range one.
        let resp = handle(
            &state,
            &req(
                "POST",
                &format!("/sessions/{id}/labels"),
                r#"{"candidate":0,"is_match":true}"#,
            ),
        );
        assert_eq!(resp.status, 200, "{}", resp.body);
        assert!(resp.body.contains("\"n_user_labels\":1"), "{}", resp.body);
        let resp = handle(
            &state,
            &req(
                "POST",
                &format!("/sessions/{id}/labels"),
                r#"{"candidate":9999,"is_match":true}"#,
            ),
        );
        assert_eq!(resp.status, 422, "{}", resp.body);
        assert!(resp.body.contains("bad_candidate"));

        // The listing shows one live, non-recovered session.
        let resp = handle(&state, &req("GET", "/sessions", ""));
        assert_eq!(resp.status, 200, "{}", resp.body);
        assert!(resp.body.contains("\"status\":\"live\""), "{}", resp.body);
        assert!(resp.body.contains("\"recovered\":false"), "{}", resp.body);

        let q = r#"{"lf":"name_overlap","query":"VotedMatch","limit":5}"#;
        let resp = handle(&state, &req("POST", &format!("/sessions/{id}/query"), q));
        assert_eq!(resp.status, 200, "{}", resp.body);
        assert!(resp.body.contains("\"rows\""));

        let m = format!(r#"{{"session":{id},"pairs":[[0,0],[1,1]]}}"#);
        let resp = handle(&state, &req("POST", "/match", &m));
        assert_eq!(resp.status, 200, "{}", resp.body);
        assert!(resp.body.contains("\"scores\""));

        let resp = handle(
            &state,
            &req("DELETE", &format!("/sessions/{id}/lfs/name_overlap"), ""),
        );
        assert_eq!(resp.status, 200, "{}", resp.body);
        let resp = handle(&state, &req("DELETE", &format!("/sessions/{id}"), ""));
        assert_eq!(resp.status, 200, "{}", resp.body);
        assert!(state.is_empty());
    }

    #[test]
    fn error_paths_are_structured() {
        let state = AppState::new();
        // Malformed JSON → 400 with a code.
        let resp = handle(&state, &req("POST", "/sessions", "{nope"));
        assert_eq!(resp.status, 400);
        assert!(resp.body.contains("\"code\":\"bad_json\""), "{}", resp.body);
        // Unknown route → 404, wrong method → 405.
        assert_eq!(handle(&state, &req("GET", "/nope", "")).status, 404);
        assert_eq!(handle(&state, &req("DELETE", "/healthz", "")).status, 405);
        // Unknown session → 404.
        let resp = handle(&state, &req("POST", "/sessions/77/fit", ""));
        assert_eq!(resp.status, 404);
        assert!(resp.body.contains("unknown_session"));
        // Empty pairs on /match → 422 (the zero-candidate contract).
        let resp = handle(
            &state,
            &req("POST", "/match", r#"{"session":1,"pairs":[]}"#),
        );
        assert_eq!(resp.status, 422);
        assert!(resp.body.contains("no_pairs"));
        // Match before any fit → 422 with the session's message.
        let resp = handle(&state, &req("POST", "/sessions", &create_body()));
        let id = session_id(&resp);
        let m = format!(r#"{{"session":{id},"pairs":[[0,0]]}}"#);
        // Session was created with auto_lfs=false → no LFs → fit happened at
        // load with an empty matrix, but score_pair needs a fitted model,
        // which load provides; force the no-fit error by checking a bad row
        // index instead.
        let bad = format!(r#"{{"session":{id},"pairs":[[99,0]]}}"#);
        let resp = handle(&state, &req("POST", "/match", &bad));
        assert_eq!(resp.status, 422, "{}", resp.body);
        let resp = handle(&state, &req("POST", "/match", &m));
        // Either a clean score or a clean error is acceptable here; what
        // matters is that it is never a panic or an empty 200.
        assert!(resp.status == 200 || resp.status == 422);
    }

    #[test]
    fn zero_candidates_is_a_422() {
        let state = AppState::new();
        // Disjoint vocabularies → blocking finds nothing.
        let body = serde_json::to_string(&crate::api::CreateSessionRequest {
            left_csv: "id,name\n1,aaaa bbbb".into(),
            right_csv: "id,name\n1,zzzz yyyy".into(),
            gold: None,
            config: Some(crate::api::SessionConfigDto {
                auto_lfs: Some(false),
                blocking_min_cosine: Some(0.99),
                ..Default::default()
            }),
        })
        .unwrap();
        let resp = handle(&state, &req("POST", "/sessions", &body));
        assert_eq!(resp.status, 422, "{}", resp.body);
        assert!(resp.body.contains("no_candidates"));
        assert!(state.is_empty(), "failed load leaves no session behind");
    }

    #[test]
    fn health_metrics_and_shutdown() {
        let state = AppState::new();
        assert_eq!(handle(&state, &req("GET", "/healthz", "")).status, 200);
        let resp = handle(&state, &req("GET", "/metrics", ""));
        assert_eq!(resp.status, 200);
        assert!(resp.body.starts_with('{'));
        let resp = handle(&state, &req("POST", "/shutdown", ""));
        assert_eq!(resp.status, 200);
        assert!(state.shutdown_requested());
    }

    #[test]
    fn metrics_format_negotiation() {
        let state = AppState::new();
        let resp = handle(&state, &req("GET", "/metrics?format=prometheus", ""));
        assert_eq!(resp.status, 200);
        assert!(resp.content_type.starts_with("text/plain"));
        // Whatever series exist, the output must satisfy the in-tree
        // conformance parser.
        panda_obs::prom::parse(&resp.body).expect("conformant exposition");
        let resp = handle(&state, &req("GET", "/metrics?format=xml", ""));
        assert_eq!(resp.status, 400);
        assert!(resp.body.contains("bad_format"));
    }

    #[test]
    fn events_tail_resumes_from_a_cursor() {
        let state = AppState::new();
        let resp = handle(&state, &req("GET", "/events", ""));
        assert_eq!(resp.status, 200, "{}", resp.body);
        let v = serde_json::parse_value(&resp.body).unwrap();
        assert!(v.get_field("next").is_some(), "{}", resp.body);
        assert!(v.get_field("events").is_some(), "{}", resp.body);
        let resp = handle(&state, &req("GET", "/events?since=borked", ""));
        assert_eq!(resp.status, 400);
        assert!(resp.body.contains("bad_since"));
        assert_eq!(handle(&state, &req("POST", "/events", "")).status, 405);
    }
}
