//! Raw Linux networking syscalls, without a libc crate.
//!
//! std already links the platform C library (the same trick as
//! [`crate::signal`]), so this module declares exactly the handful of
//! syscalls the event-driven server needs and wraps them in safe types:
//!
//! * [`Epoll`] — a level-triggered `epoll(7)` instance. The event loop
//!   registers every connection with an interest mask (`EPOLLIN` while
//!   reading, `EPOLLOUT` while a response is queued) and a 64-bit token,
//!   and blocks in [`Epoll::wait`] until sockets become ready or a
//!   deadline is due.
//! * [`Listener`] — a non-blocking listening socket built with raw
//!   `socket`/`setsockopt`/`bind`/`listen` so `SO_REUSEPORT` can be set
//!   *before* bind (std's `TcpListener` cannot), letting every worker
//!   own its own listener on the same address: the kernel shards
//!   incoming connections across them and no single accept thread
//!   serializes admission.
//! * [`WakePipe`] — a non-blocking self-pipe. Its write end is
//!   registered with [`crate::signal`] so a SIGTERM handler (or
//!   `POST /shutdown` from another worker) can wake a parked
//!   `epoll_wait` immediately; the read end lives in the epoll set.
//!
//! Everything is Linux-only by construction (the workspace targets the
//! CI's Linux runners); the `cfg(unix)` gates mirror `signal.rs`.

use std::ffi::{c_int, c_void};
use std::io;
use std::net::{SocketAddr, TcpStream};
use std::os::fd::{FromRawFd, RawFd};

pub const EPOLLIN: u32 = 0x001;
pub const EPOLLOUT: u32 = 0x004;
pub const EPOLLERR: u32 = 0x008;
pub const EPOLLHUP: u32 = 0x010;

const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;
const EPOLL_CLOEXEC: c_int = 0o2000000;

const AF_INET: u16 = 2;
const AF_INET6: u16 = 10;
const SOCK_STREAM: c_int = 1;
const SOCK_NONBLOCK: c_int = 0o4000;
const SOCK_CLOEXEC: c_int = 0o2000000;
const SOL_SOCKET: c_int = 1;
const SO_REUSEADDR: c_int = 2;
const SO_ERROR: c_int = 4;
const SO_REUSEPORT: c_int = 15;
const EINPROGRESS: i32 = 115;
const O_NONBLOCK: c_int = 0o4000;
const O_CLOEXEC: c_int = 0o2000000;

/// The kernel's `struct epoll_event`. x86-64 packs it (a 32-bit-era ABI
/// quirk); every other architecture uses natural alignment.
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    /// Readiness mask (`EPOLLIN` | `EPOLLOUT` | ...).
    pub events: u32,
    /// Caller token, returned verbatim with each event.
    pub data: u64,
}

#[repr(C)]
struct SockaddrIn {
    sin_family: u16,
    sin_port: u16, // network byte order
    sin_addr: u32, // network byte order
    sin_zero: [u8; 8],
}

#[repr(C)]
struct SockaddrIn6 {
    sin6_family: u16,
    sin6_port: u16, // network byte order
    sin6_flowinfo: u32,
    sin6_addr: [u8; 16],
    sin6_scope_id: u32,
}

/// Big enough for either address family.
#[repr(C)]
union SockaddrAny {
    v4: std::mem::ManuallyDrop<SockaddrIn>,
    v6: std::mem::ManuallyDrop<SockaddrIn6>,
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn close(fd: c_int) -> c_int;
    fn socket(domain: c_int, ty: c_int, protocol: c_int) -> c_int;
    fn setsockopt(fd: c_int, level: c_int, name: c_int, val: *const c_void, len: u32) -> c_int;
    fn bind(fd: c_int, addr: *const c_void, len: u32) -> c_int;
    fn connect(fd: c_int, addr: *const c_void, len: u32) -> c_int;
    fn getsockopt(fd: c_int, level: c_int, name: c_int, val: *mut c_void, len: *mut u32) -> c_int;
    fn listen(fd: c_int, backlog: c_int) -> c_int;
    fn accept4(fd: c_int, addr: *mut c_void, len: *mut u32, flags: c_int) -> c_int;
    fn getsockname(fd: c_int, addr: *mut c_void, len: *mut u32) -> c_int;
    fn pipe2(fds: *mut c_int, flags: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
}

/// Write one byte to a wake-pipe fd (non-blocking; a full pipe already
/// means a wake is pending, so the error is ignored). The targeted
/// counterpart of [`crate::signal::wake_all`] for loops that should not
/// stampede every other parked thread.
pub fn notify_fd(fd: RawFd) {
    let byte = 1u8;
    unsafe {
        let _ = write(fd, (&byte as *const u8).cast(), 1);
    }
}

/// A level-triggered epoll instance. Closed on drop.
pub struct Epoll {
    fd: RawFd,
}

impl Epoll {
    /// Create an epoll instance (`CLOEXEC`).
    pub fn new() -> io::Result<Epoll> {
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Epoll { fd })
    }

    fn ctl(&self, op: c_int, fd: RawFd, events: u32, data: u64) -> io::Result<()> {
        let mut ev = EpollEvent { events, data };
        let rc = unsafe { epoll_ctl(self.fd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Register `fd` with the given interest mask and token.
    pub fn add(&self, fd: RawFd, events: u32, data: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, events, data)
    }

    /// Change the interest mask for an already-registered `fd`.
    pub fn modify(&self, fd: RawFd, events: u32, data: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, events, data)
    }

    /// Deregister `fd`. Errors are ignored — the fd may already be gone
    /// (close deregisters implicitly), and there is nothing to do about
    /// it mid-teardown.
    pub fn del(&self, fd: RawFd) {
        let _ = self.ctl(EPOLL_CTL_DEL, fd, 0, 0);
    }

    /// Block until readiness or `timeout_ms` (`-1` = forever). Fills
    /// `events` and returns how many are valid. EINTR reads as zero
    /// events — the caller's loop re-checks its latches either way.
    pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        let n = unsafe {
            epoll_wait(
                self.fd,
                events.as_mut_ptr(),
                events.len() as c_int,
                timeout_ms,
            )
        };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(err);
        }
        Ok(n as usize)
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        unsafe { close(self.fd) };
    }
}

fn encode_sockaddr(addr: &SocketAddr) -> (SockaddrAny, u32) {
    match addr {
        SocketAddr::V4(a) => (
            SockaddrAny {
                v4: std::mem::ManuallyDrop::new(SockaddrIn {
                    sin_family: AF_INET,
                    sin_port: a.port().to_be(),
                    sin_addr: u32::from_ne_bytes(a.ip().octets()),
                    sin_zero: [0; 8],
                }),
            },
            std::mem::size_of::<SockaddrIn>() as u32,
        ),
        SocketAddr::V6(a) => (
            SockaddrAny {
                v6: std::mem::ManuallyDrop::new(SockaddrIn6 {
                    sin6_family: AF_INET6,
                    sin6_port: a.port().to_be(),
                    sin6_flowinfo: a.flowinfo(),
                    sin6_addr: a.ip().octets(),
                    sin6_scope_id: a.scope_id(),
                }),
            },
            std::mem::size_of::<SockaddrIn6>() as u32,
        ),
    }
}

/// Decode a `sockaddr` the kernel filled in (for `getsockname`).
fn decode_sockaddr(raw: &SockaddrAny) -> io::Result<SocketAddr> {
    unsafe {
        let family = raw.v4.sin_family;
        if family == AF_INET {
            let v4 = &raw.v4;
            Ok(SocketAddr::from((
                v4.sin_addr.to_ne_bytes(),
                u16::from_be(v4.sin_port),
            )))
        } else if family == AF_INET6 {
            let v6 = &raw.v6;
            Ok(SocketAddr::from((v6.sin6_addr, u16::from_be(v6.sin6_port))))
        } else {
            Err(io::Error::other(format!(
                "unexpected address family {family}"
            )))
        }
    }
}

/// A non-blocking listening socket. Closed on drop.
pub struct Listener {
    fd: RawFd,
    addr: SocketAddr,
}

impl Listener {
    /// Build a non-blocking listener on `addr`. With `reuseport`, any
    /// number of listeners may bind the same address — the kernel hashes
    /// incoming connections across all of them (accept sharding).
    pub fn bind(addr: &SocketAddr, reuseport: bool) -> io::Result<Listener> {
        let domain = match addr {
            SocketAddr::V4(_) => c_int::from(AF_INET),
            SocketAddr::V6(_) => c_int::from(AF_INET6),
        };
        let fd = unsafe { socket(domain, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        let listener = Listener { fd, addr: *addr }; // closes fd on early error
        let one: c_int = 1;
        let optlen = std::mem::size_of::<c_int>() as u32;
        unsafe {
            // SO_REUSEADDR matches std's TcpListener default (fast restart
            // past TIME_WAIT); SO_REUSEPORT is the sharding knob and must
            // be set before bind.
            if setsockopt(
                fd,
                SOL_SOCKET,
                SO_REUSEADDR,
                (&one as *const c_int).cast(),
                optlen,
            ) < 0
            {
                return Err(io::Error::last_os_error());
            }
            if reuseport
                && setsockopt(
                    fd,
                    SOL_SOCKET,
                    SO_REUSEPORT,
                    (&one as *const c_int).cast(),
                    optlen,
                ) < 0
            {
                return Err(io::Error::last_os_error());
            }
        }
        let (raw, len) = encode_sockaddr(addr);
        if unsafe { bind(fd, (&raw as *const SockaddrAny).cast(), len) } < 0 {
            return Err(io::Error::last_os_error());
        }
        if unsafe { listen(fd, 1024) } < 0 {
            return Err(io::Error::last_os_error());
        }
        let mut listener = listener;
        listener.addr = listener.local_addr()?;
        Ok(listener)
    }

    /// The bound address (resolves an ephemeral `:0` to the real port).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        let mut raw = SockaddrAny {
            v6: std::mem::ManuallyDrop::new(SockaddrIn6 {
                sin6_family: 0,
                sin6_port: 0,
                sin6_flowinfo: 0,
                sin6_addr: [0; 16],
                sin6_scope_id: 0,
            }),
        };
        let mut len = std::mem::size_of::<SockaddrAny>() as u32;
        if unsafe { getsockname(self.fd, (&mut raw as *mut SockaddrAny).cast(), &mut len) } < 0 {
            return Err(io::Error::last_os_error());
        }
        decode_sockaddr(&raw)
    }

    /// The address this listener is serving.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The raw fd, for epoll registration.
    pub fn fd(&self) -> RawFd {
        self.fd
    }

    /// Accept one connection, already non-blocking. `Ok(None)` means no
    /// connection is pending right now (or a transient accept error —
    /// aborted handshake, fd pressure — which the next readiness event
    /// retries).
    pub fn accept(&self) -> io::Result<Option<TcpStream>> {
        let fd = unsafe {
            accept4(
                self.fd,
                std::ptr::null_mut(),
                std::ptr::null_mut(),
                SOCK_NONBLOCK | SOCK_CLOEXEC,
            )
        };
        if fd < 0 {
            let err = io::Error::last_os_error();
            return match err.kind() {
                io::ErrorKind::WouldBlock => Ok(None),
                // ECONNABORTED etc.: the peer vanished mid-handshake;
                // treat like "nothing pending" rather than killing the
                // event loop.
                _ => Ok(None),
            };
        }
        // Safety: accept4 returned a fresh owned socket fd.
        Ok(Some(unsafe { TcpStream::from_raw_fd(fd) }))
    }
}

impl Drop for Listener {
    fn drop(&mut self) {
        unsafe { close(self.fd) };
    }
}

/// Start a non-blocking outbound connect to `addr`. Returns the socket
/// (already a `TcpStream`, non-blocking) plus whether the three-way
/// handshake finished synchronously. When it did not (`false`, the
/// common case), the caller registers the fd for `EPOLLOUT` and calls
/// [`take_connect_error`] once writability fires to learn whether the
/// connect actually succeeded.
pub fn connect_start(addr: &SocketAddr) -> io::Result<(TcpStream, bool)> {
    let domain = match addr {
        SocketAddr::V4(_) => c_int::from(AF_INET),
        SocketAddr::V6(_) => c_int::from(AF_INET6),
    };
    let fd = unsafe { socket(domain, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0) };
    if fd < 0 {
        return Err(io::Error::last_os_error());
    }
    // Safety: socket returned a fresh owned fd; the stream closes it on
    // drop, including the early-error paths below.
    let stream = unsafe { TcpStream::from_raw_fd(fd) };
    let (raw, len) = encode_sockaddr(addr);
    let rc = unsafe { connect(fd, (&raw as *const SockaddrAny).cast(), len) };
    if rc == 0 {
        return Ok((stream, true));
    }
    let err = io::Error::last_os_error();
    if err.raw_os_error() == Some(EINPROGRESS) {
        return Ok((stream, false));
    }
    Err(err)
}

/// Resolve a pending non-blocking connect after `EPOLLOUT` fired:
/// reads and clears `SO_ERROR`. `Ok(())` means the stream is connected
/// and ready for traffic.
pub fn take_connect_error(stream: &TcpStream) -> io::Result<()> {
    use std::os::fd::AsRawFd;
    let mut err: c_int = 0;
    let mut len = std::mem::size_of::<c_int>() as u32;
    let rc = unsafe {
        getsockopt(
            stream.as_raw_fd(),
            SOL_SOCKET,
            SO_ERROR,
            (&mut err as *mut c_int).cast(),
            &mut len,
        )
    };
    if rc < 0 {
        return Err(io::Error::last_os_error());
    }
    if err != 0 {
        return Err(io::Error::from_raw_os_error(err));
    }
    Ok(())
}

/// A non-blocking self-pipe for waking a parked `epoll_wait`. The write
/// end is registered with [`crate::signal::register_wake_fd`]; anything
/// written there (a signal handler, another worker's `/shutdown`) makes
/// the read end readable.
pub struct WakePipe {
    read_fd: RawFd,
    write_fd: RawFd,
}

impl WakePipe {
    /// Create the pipe pair (both ends non-blocking, `CLOEXEC`).
    pub fn new() -> io::Result<WakePipe> {
        let mut fds = [0 as c_int; 2];
        if unsafe { pipe2(fds.as_mut_ptr(), O_NONBLOCK | O_CLOEXEC) } < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(WakePipe {
            read_fd: fds[0],
            write_fd: fds[1],
        })
    }

    /// The read end, for the epoll set.
    pub fn read_fd(&self) -> RawFd {
        self.read_fd
    }

    /// The write end, for the signal-wake registry.
    pub fn write_fd(&self) -> RawFd {
        self.write_fd
    }

    /// Discard whatever bytes are pending so the next wake re-triggers.
    pub fn drain(&self) {
        let mut sink = [0u8; 64];
        loop {
            let n = unsafe { read(self.read_fd, sink.as_mut_ptr().cast(), sink.len()) };
            if n <= 0 {
                break;
            }
        }
    }
}

impl Drop for WakePipe {
    fn drop(&mut self) {
        crate::signal::unregister_wake_fd(self.write_fd);
        unsafe {
            close(self.read_fd);
            close(self.write_fd);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};

    #[test]
    fn listener_accepts_and_epoll_reports_readiness() {
        let addr: SocketAddr = "127.0.0.1:0".parse().unwrap();
        let listener = Listener::bind(&addr, false).unwrap();
        let bound = listener.addr();
        assert_ne!(bound.port(), 0, "ephemeral port resolved");

        let epoll = Epoll::new().unwrap();
        epoll.add(listener.fd(), EPOLLIN, 7).unwrap();

        let mut client = std::net::TcpStream::connect(bound).unwrap();
        let mut events = [EpollEvent { events: 0, data: 0 }; 8];
        let n = epoll.wait(&mut events, 2_000).unwrap();
        assert!(n >= 1, "listener should be readable after a connect");
        assert_eq!({ events[0].data }, 7);

        let mut server_side = listener.accept().unwrap().expect("pending connection");
        assert!(listener.accept().unwrap().is_none(), "only one pending");
        client.write_all(b"ping").unwrap();
        // The accepted socket is non-blocking; poll it via epoll.
        use std::os::fd::AsRawFd;
        epoll.add(server_side.as_raw_fd(), EPOLLIN, 9).unwrap();
        let n = epoll.wait(&mut events, 2_000).unwrap();
        assert!((0..n).any(|i| { events[i].data } == 9));
        let mut buf = [0u8; 4];
        server_side.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ping");
    }

    #[test]
    fn reuseport_allows_two_listeners_on_one_port() {
        let addr: SocketAddr = "127.0.0.1:0".parse().unwrap();
        let first = Listener::bind(&addr, true).unwrap();
        let bound = first.addr();
        let second = Listener::bind(&bound, true).unwrap();
        assert_eq!(second.addr(), bound);
        // And without reuseport the same bind must fail.
        assert!(Listener::bind(&bound, false).is_err());
    }

    #[test]
    fn nonblocking_connect_completes_via_epollout() {
        let addr: SocketAddr = "127.0.0.1:0".parse().unwrap();
        let listener = Listener::bind(&addr, false).unwrap();
        let (stream, done) = connect_start(&listener.addr()).unwrap();
        if !done {
            use std::os::fd::AsRawFd;
            let epoll = Epoll::new().unwrap();
            epoll.add(stream.as_raw_fd(), EPOLLOUT, 3).unwrap();
            let mut events = [EpollEvent { events: 0, data: 0 }; 4];
            let n = epoll.wait(&mut events, 2_000).unwrap();
            assert!(n >= 1, "connect should become writable");
        }
        take_connect_error(&stream).unwrap();
        assert!(listener.accept().unwrap().is_some());
    }

    #[test]
    fn wake_pipe_wakes_epoll() {
        let epoll = Epoll::new().unwrap();
        let wake = WakePipe::new().unwrap();
        epoll.add(wake.read_fd(), EPOLLIN, 1).unwrap();
        let mut events = [EpollEvent { events: 0, data: 0 }; 4];
        // Nothing pending: a short wait times out empty.
        assert_eq!(epoll.wait(&mut events, 10).unwrap(), 0);
        crate::signal::register_wake_fd(wake.write_fd());
        crate::signal::wake_all();
        let n = epoll.wait(&mut events, 2_000).unwrap();
        assert!(n >= 1, "wake_all should make the pipe readable");
        wake.drain();
        crate::signal::unregister_wake_fd(wake.write_fd());
    }
}
