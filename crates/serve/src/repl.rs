//! The replication & sharding plane: WAL shipping, follower apply, and
//! consistent-hash session routing.
//!
//! **Topology.** A primary started with `--state-dir` + `--repl-addr`
//! listens for followers on a dedicated replication port. A follower
//! started with `--follow <addr>` dials that port, subscribes with its
//! per-session cursors, and receives a length-prefixed frame stream:
//! full-state [`ReplMsg::Sync`] snapshots for sessions it is behind on,
//! then every acknowledged WAL record ([`ReplMsg::Record`]) verbatim —
//! the same JSONL line `SessionPersist::append` fsynced, carrying seq +
//! post-op matrix digest. Followers apply records through the identical
//! digest-verified replay path crash recovery uses
//! ([`crate::persist::Replayer`] rules), so follower state is
//! bit-identical to the primary's — `/match` and debug-query responses
//! compare byte-for-byte. A record that fails the gap or digest check
//! quarantines the session (reads answer 409) instead of serving wrong
//! state.
//!
//! **Framing.** Each frame is a 4-byte big-endian length followed by
//! that many bytes of JSON (one externally tagged [`ReplMsg`]). An
//! undecodable frame poisons the link: the follower drops the
//! connection and resubscribes, and the cursor handshake resyncs only
//! the sessions that diverged.
//!
//! **Sharding.** With `--peers a,b,c` every session id maps to one
//! shard via an FNV-1a consistent-hash ring with virtual nodes
//! ([`ShardRing`]); requests for a session another shard owns answer
//! `421 Misdirected Request` naming the owner, and `POST /rebalance`
//! moves a session between shards by snapshot + WAL-tail handoff with
//! seq-gap rejection on the receiving side.

use crate::net::{self, Epoll, EpollEvent, Listener, WakePipe};
use crate::persist::{SnapshotFile, WalRecord};
use crate::state::AppState;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicI32, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Upper bound on one frame (a full-session snapshot must fit).
pub const MAX_FRAME: usize = 256 * 1024 * 1024;
/// Virtual nodes per peer on the consistent-hash ring.
const VNODES: usize = 64;
/// A follower that falls further behind than this many buffered bytes
/// is dropped (it reconnects and full-syncs).
const FOLLOWER_OUT_CAP: usize = 512 * 1024 * 1024;
/// How long the hub keeps flushing the unreplicated tail after drain.
const FINISH_GRACE: Duration = Duration::from_secs(5);
/// Reconnect backoff bounds for the follower dial loop.
const BACKOFF_MIN: Duration = Duration::from_millis(250);
const BACKOFF_MAX: Duration = Duration::from_secs(2);

/// One replication protocol message. Externally tagged JSON, one per
/// length-prefixed frame.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum ReplMsg {
    /// Follower → primary, first frame after connect: the sessions it
    /// already holds and their applied seqs, so the primary only syncs
    /// what diverged.
    Subscribe {
        /// Per-session replication cursors.
        cursors: Vec<SessionCursor>,
    },
    /// Primary → follower, first frame in reply: the primary's HTTP
    /// address, which the follower quotes in 421 mutation rejections.
    Hello {
        /// The primary's client-facing address.
        http_addr: String,
    },
    /// Primary → follower: full state for one session (subscribe-time
    /// catch-up, or a handed-off session).
    Sync {
        /// Session id.
        session: u64,
        /// The same snapshot `write_snapshot` persists.
        snapshot: SnapshotFile,
    },
    /// Primary → follower: one acknowledged WAL record, verbatim.
    Record {
        /// Session id.
        session: u64,
        /// The record, exactly as fsynced on the primary.
        record: WalRecord,
    },
    /// Primary → follower: the session was deleted (or rebalanced away).
    Delete {
        /// Session id.
        session: u64,
    },
    /// Follower → primary: cumulative count of frames applied on this
    /// connection, for the apply-lag gauge.
    Ack {
        /// Frames applied since subscribe.
        frames: u64,
    },
}

/// A follower's position in one session's record stream.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SessionCursor {
    /// Session id.
    pub session: u64,
    /// Highest applied sequence number.
    pub seq: u64,
}

/// `POST /handoff` body: the snapshot + WAL-tail parts of a session
/// being rebalanced from another shard.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HandoffRequest {
    /// Session id (kept across the move).
    pub session: u64,
    /// On-disk snapshot of the source, if one was written.
    pub snapshot: Option<SnapshotFile>,
    /// WAL records past the snapshot (may overlap it; duplicates are
    /// skipped by seq exactly as recovery does).
    pub tail: Vec<WalRecord>,
}

/// FNV-1a over arbitrary bytes — the same constants `config_digest`
/// uses, reused for ring placement.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Consistent-hash shard map: every peer contributes [`VNODES`] points
/// on a 64-bit ring; a session id is owned by the peer whose point is
/// the first at or clockwise of the id's hash.
#[derive(Debug, Clone)]
pub struct ShardRing {
    points: Vec<(u64, u32)>,
    peers: Vec<String>,
    self_idx: u32,
}

impl ShardRing {
    /// Build the ring. `self_addr` must appear in `peers` — a shard
    /// that is not in its own map would misroute every session.
    pub fn new(peers: Vec<String>, self_addr: &str) -> Result<ShardRing, String> {
        if peers.is_empty() {
            return Err("shard map is empty".into());
        }
        let self_idx = peers.iter().position(|p| p == self_addr).ok_or_else(|| {
            format!(
                "shard map {peers:?} does not include this server's advertised address \
                     {self_addr}"
            )
        })? as u32;
        let mut points = Vec::with_capacity(peers.len() * VNODES);
        for (i, peer) in peers.iter().enumerate() {
            for v in 0..VNODES {
                points.push((fnv1a(format!("{peer}#{v}").as_bytes()), i as u32));
            }
        }
        points.sort_unstable();
        Ok(ShardRing {
            points,
            peers,
            self_idx,
        })
    }

    /// The peer that owns `session`.
    pub fn owner_of(&self, session: u64) -> &str {
        let h = fnv1a(session.to_string().as_bytes());
        let i = match self.points.binary_search(&(h, u32::MAX)) {
            Ok(i) => i,
            Err(i) => i,
        };
        let (_, peer) = self.points[i % self.points.len()];
        &self.peers[peer as usize]
    }

    /// Does this shard own `session`?
    pub fn owns(&self, session: u64) -> bool {
        self.owner_of(session) == self.peers[self.self_idx as usize]
    }

    /// This shard's advertised address.
    pub fn self_addr(&self) -> &str {
        &self.peers[self.self_idx as usize]
    }

    /// Every peer in the map, in `--peers` order.
    pub fn peers(&self) -> &[String] {
        &self.peers
    }
}

/// Append one length-prefixed frame to an output buffer.
pub fn encode_frame(out: &mut Vec<u8>, payload: &str) {
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.extend_from_slice(payload.as_bytes());
}

/// Try to split one frame off the front of `buf`. `Ok(None)` means more
/// bytes are needed; errors are protocol violations that poison the
/// link.
pub fn decode_frame(buf: &mut Vec<u8>) -> Result<Option<String>, String> {
    if buf.len() < 4 {
        return Ok(None);
    }
    let len = u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    if len > MAX_FRAME {
        return Err(format!("frame of {len} bytes exceeds the {MAX_FRAME} cap"));
    }
    if buf.len() < 4 + len {
        return Ok(None);
    }
    let payload = String::from_utf8(buf[4..4 + len].to_vec())
        .map_err(|_| "frame payload is not UTF-8".to_string())?;
    buf.drain(..4 + len);
    Ok(Some(payload))
}

/// The primary side of WAL shipping: mutation paths enqueue serialized
/// frames here (under the session lock, so per-session seq order is
/// preserved), and a dedicated hub thread broadcasts them to every
/// subscribed follower.
pub struct ReplHub {
    queue: Mutex<VecDeque<String>>,
    wake_fd: AtomicI32,
    finish: AtomicBool,
    http_addr: String,
}

impl ReplHub {
    /// A hub advertising `http_addr` (quoted in follower 421s).
    pub fn new(http_addr: String) -> ReplHub {
        ReplHub {
            queue: Mutex::new(VecDeque::new()),
            wake_fd: AtomicI32::new(-1),
            finish: AtomicBool::new(false),
            http_addr,
        }
    }

    /// Attach the hub thread's wake pipe (called before the thread
    /// spawns, so no enqueue can miss its wake).
    pub fn set_wake_fd(&self, fd: i32) {
        self.wake_fd.store(fd, Ordering::SeqCst);
    }

    /// Ship one acknowledged WAL record. `line` is the exact JSONL line
    /// the WAL fsynced — it is spliced into the frame verbatim so the
    /// follower replays byte-identical records.
    pub fn ship_record(&self, session: u64, line: &str) {
        panda_obs::counter_add_labeled("repl.shipped", &[("kind", "record")], 1);
        self.enqueue(format!(
            "{{\"Record\":{{\"session\":{session},\"record\":{line}}}}}"
        ));
    }

    /// Ship a session deletion.
    pub fn ship_delete(&self, session: u64) {
        panda_obs::counter_add_labeled("repl.shipped", &[("kind", "delete")], 1);
        if let Ok(frame) = serde_json::to_string(&ReplMsg::Delete { session }) {
            self.enqueue(frame);
        }
    }

    /// Ship a pre-serialized `Sync` frame (handoff adoption pushes the
    /// moved session to this shard's followers immediately).
    pub fn ship_sync_frame(&self, frame: String) {
        panda_obs::counter_add_labeled("repl.shipped", &[("kind", "sync")], 1);
        self.enqueue(frame);
    }

    /// Tell the hub the workers are drained: flush the remaining queue
    /// to connected followers, then exit. Called from `join`.
    pub fn finish(&self) {
        self.finish.store(true, Ordering::SeqCst);
        self.wake();
    }

    fn enqueue(&self, frame: String) {
        self.queue
            .lock()
            .expect("repl queue poisoned")
            .push_back(frame);
        self.wake();
    }

    fn wake(&self) {
        let fd = self.wake_fd.load(Ordering::SeqCst);
        if fd >= 0 {
            net::notify_fd(fd);
        }
    }
}

/// One follower connection inside the hub.
struct FollowerConn {
    stream: TcpStream,
    inbuf: Vec<u8>,
    out: OutBuf,
    synced: bool,
    sent: u64,
    acked: u64,
}

/// A partially flushed output buffer over a non-blocking stream.
struct OutBuf {
    buf: Vec<u8>,
    pos: usize,
}

impl OutBuf {
    fn new() -> OutBuf {
        OutBuf {
            buf: Vec::new(),
            pos: 0,
        }
    }

    fn push_frame(&mut self, payload: &str) {
        encode_frame(&mut self.buf, payload);
    }

    fn is_empty(&self) -> bool {
        self.pos >= self.buf.len()
    }

    fn pending(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Write as much as the socket accepts. `Ok(true)` when drained.
    fn flush(&mut self, stream: &mut TcpStream) -> std::io::Result<bool> {
        while self.pos < self.buf.len() {
            match stream.write(&self.buf[self.pos..]) {
                Ok(0) => return Err(std::io::Error::other("peer closed mid-write")),
                Ok(n) => self.pos += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    // Reclaim flushed space lazily so a slow follower
                    // does not pin the whole history in memory.
                    if self.pos > 1024 * 1024 {
                        self.buf.drain(..self.pos);
                        self.pos = 0;
                    }
                    return Ok(false);
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        self.buf.clear();
        self.pos = 0;
        Ok(true)
    }
}

const TOKEN_LISTENER: u64 = u64::MAX;
const TOKEN_WAKE: u64 = u64::MAX - 1;

/// The hub thread: accepts followers on the replication listener,
/// answers subscribes with per-session syncs, broadcasts queued record
/// frames, and tracks apply lag from follower acks. Single-threaded by
/// design — subscribe-time sync and queue broadcast are serialized, so
/// a freshly synced follower can never observe a seq gap (anything it
/// missed is covered by the snapshot it just received; anything resent
/// is skipped by the `seq <= cursor` duplicate rule).
pub fn run_hub(hub: Arc<ReplHub>, listener: Listener, state: Arc<AppState>, wake: WakePipe) {
    let epoll = match Epoll::new() {
        Ok(e) => e,
        Err(e) => {
            eprintln!("panda-serve: repl hub epoll failed: {e}");
            return;
        }
    };
    let _ = epoll.add(listener.fd(), net::EPOLLIN, TOKEN_LISTENER);
    let _ = epoll.add(wake.read_fd(), net::EPOLLIN, TOKEN_WAKE);
    crate::signal::register_wake_fd(wake.write_fd());

    let mut conns: Vec<Option<FollowerConn>> = Vec::new();
    let mut events = [EpollEvent { events: 0, data: 0 }; 64];
    let mut finish_at: Option<Instant> = None;

    while let Ok(n) = epoll.wait(&mut events, 500) {
        for ev in events.iter().take(n) {
            let token = { ev.data };
            match token {
                TOKEN_WAKE => wake.drain(),
                TOKEN_LISTENER => {
                    // Stop admitting followers once drain began; the
                    // remaining work is shipping the tail to the ones
                    // already connected.
                    if state.shutdown_requested() {
                        continue;
                    }
                    while let Ok(Some(stream)) = listener.accept() {
                        let idx = conns.iter().position(|c| c.is_none()).unwrap_or_else(|| {
                            conns.push(None);
                            conns.len() - 1
                        });
                        if epoll
                            .add(stream.as_raw_fd(), net::EPOLLIN, idx as u64)
                            .is_ok()
                        {
                            conns[idx] = Some(FollowerConn {
                                stream,
                                inbuf: Vec::new(),
                                out: OutBuf::new(),
                                synced: false,
                                sent: 0,
                                acked: 0,
                            });
                        }
                    }
                }
                idx => {
                    let idx = idx as usize;
                    if hub_conn_event(&hub, &state, &mut conns, idx).is_err() {
                        drop_follower(&epoll, &mut conns, idx);
                    }
                }
            }
        }

        // Broadcast queued frames to every synced follower.
        let frames: Vec<String> = {
            let mut q = hub.queue.lock().expect("repl queue poisoned");
            q.drain(..).collect()
        };
        if !frames.is_empty() {
            for conn in conns.iter_mut().flatten() {
                if !conn.synced {
                    continue;
                }
                for frame in &frames {
                    conn.out.push_frame(frame);
                }
                conn.sent += frames.len() as u64;
            }
        }

        // Flush and set per-connection interest; drop slow followers.
        let mut dead = Vec::new();
        for (idx, slot) in conns.iter_mut().enumerate() {
            let Some(conn) = slot else { continue };
            match conn.out.flush(&mut conn.stream) {
                Ok(drained) => {
                    let interest = if drained {
                        net::EPOLLIN
                    } else {
                        net::EPOLLIN | net::EPOLLOUT
                    };
                    let _ = epoll.modify(conn.stream.as_raw_fd(), interest, idx as u64);
                    if conn.out.pending() > FOLLOWER_OUT_CAP {
                        dead.push(idx);
                    }
                }
                Err(_) => dead.push(idx),
            }
        }
        for idx in dead {
            drop_follower(&epoll, &mut conns, idx);
        }

        let live = conns.iter().flatten().count();
        panda_obs::gauge_set("repl.followers", live as f64);
        for (idx, conn) in conns.iter().enumerate() {
            if let Some(conn) = conn {
                panda_obs::gauge_set_labeled(
                    "repl.apply_lag",
                    &[("follower", &idx.to_string())],
                    conn.sent.saturating_sub(conn.acked) as f64,
                );
            }
        }

        if hub.finish.load(Ordering::SeqCst) {
            let deadline = *finish_at.get_or_insert_with(|| Instant::now() + FINISH_GRACE);
            let queue_empty = hub.queue.lock().expect("repl queue poisoned").is_empty();
            let flushed = conns.iter().flatten().all(|c| c.out.is_empty());
            if (queue_empty && flushed) || Instant::now() >= deadline {
                break;
            }
        }
    }
    panda_obs::gauge_set("repl.followers", 0.0);
}

/// Handle readability on one follower connection: consume `Subscribe`
/// (reply with `Hello` + per-session syncs) and `Ack` frames.
fn hub_conn_event(
    hub: &ReplHub,
    state: &AppState,
    conns: &mut [Option<FollowerConn>],
    idx: usize,
) -> Result<(), String> {
    let conn = conns
        .get_mut(idx)
        .and_then(|c| c.as_mut())
        .ok_or("stale token")?;
    read_available(&mut conn.stream, &mut conn.inbuf).map_err(|e| e.to_string())?;
    while let Some(payload) = decode_frame(&mut conn.inbuf)? {
        let msg: ReplMsg = serde_json::from_str(&payload).map_err(|e| e.0)?;
        match msg {
            ReplMsg::Subscribe { cursors } => {
                let hello = serde_json::to_string(&ReplMsg::Hello {
                    http_addr: hub.http_addr.clone(),
                })
                .map_err(|e| e.0)?;
                conn.out.push_frame(&hello);
                for frame in state.sync_frames(&cursors) {
                    conn.out.push_frame(&frame);
                    conn.sent += 1;
                }
                conn.synced = true;
            }
            ReplMsg::Ack { frames } => conn.acked = conn.acked.max(frames),
            _ => return Err("unexpected frame from follower".into()),
        }
    }
    Ok(())
}

fn drop_follower(epoll: &Epoll, conns: &mut [Option<FollowerConn>], idx: usize) {
    if let Some(Some(conn)) = conns.get(idx) {
        epoll.del(conn.stream.as_raw_fd());
    }
    if let Some(slot) = conns.get_mut(idx) {
        *slot = None;
    }
}

/// Drain everything currently readable from a non-blocking stream into
/// `buf`. An orderly EOF is an error for replication links — both ends
/// treat it as "reconnect and resync".
fn read_available(stream: &mut TcpStream, buf: &mut Vec<u8>) -> std::io::Result<()> {
    let mut chunk = [0u8; 64 * 1024];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => return Err(std::io::Error::other("peer closed")),
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

fn resolve(addr: &str) -> Result<SocketAddr, String> {
    addr.to_socket_addrs()
        .map_err(|e| format!("cannot resolve {addr}: {e}"))?
        .next()
        .ok_or_else(|| format!("{addr} resolves to no address"))
}

fn follower_should_exit(state: &AppState) -> bool {
    state.shutdown_requested() || !state.is_follower()
}

/// The follower's dial-and-apply loop: connect to the primary's
/// replication port (non-blocking connect resolved via `EPOLLOUT` +
/// `SO_ERROR`), subscribe with current cursors, then apply every frame
/// through the digest-verified replay path. Exits on shutdown or
/// promotion; reconnects with backoff on any link error.
pub fn run_follower(state: Arc<AppState>, primary: String) {
    let Ok(epoll) = Epoll::new() else { return };
    let Ok(wake) = WakePipe::new() else { return };
    if epoll.add(wake.read_fd(), net::EPOLLIN, TOKEN_WAKE).is_err() {
        return;
    }
    crate::signal::register_wake_fd(wake.write_fd());
    let mut events = [EpollEvent { events: 0, data: 0 }; 16];
    let mut backoff = BACKOFF_MIN;

    while !follower_should_exit(&state) {
        match follower_connect(&state, &epoll, &wake, &mut events, &primary) {
            Ok(Some(stream)) => {
                backoff = BACKOFF_MIN;
                panda_obs::counter_add("repl.follower.connects", 1);
                follower_apply_loop(&state, &epoll, &wake, &mut events, stream);
            }
            Ok(None) => {} // exit requested mid-connect
            Err(_) => {
                panda_obs::counter_add("repl.follower.connect_failures", 1);
                // Park on the wake pipe for the backoff interval so
                // shutdown/promotion still interrupts immediately.
                let _ = epoll.wait(&mut events, backoff.as_millis() as i32);
                wake.drain();
                backoff = (backoff * 2).min(BACKOFF_MAX);
            }
        }
    }
}

/// One connect attempt. `Ok(None)` means an exit was requested while
/// waiting for the handshake.
fn follower_connect(
    state: &AppState,
    epoll: &Epoll,
    wake: &WakePipe,
    events: &mut [EpollEvent],
    primary: &str,
) -> Result<Option<TcpStream>, String> {
    let addr = resolve(primary)?;
    let (stream, done) = net::connect_start(&addr).map_err(|e| e.to_string())?;
    if !done {
        epoll
            .add(stream.as_raw_fd(), net::EPOLLOUT, 1)
            .map_err(|e| e.to_string())?;
        let deadline = Instant::now() + Duration::from_secs(3);
        let connected = loop {
            if follower_should_exit(state) {
                epoll.del(stream.as_raw_fd());
                return Ok(None);
            }
            let n = epoll.wait(events, 250).map_err(|e| e.to_string())?;
            let mut writable = false;
            for ev in events.iter().take(n) {
                let token = { ev.data };
                match token {
                    TOKEN_WAKE => wake.drain(),
                    _ => writable = true,
                }
            }
            if writable {
                break true;
            }
            if Instant::now() >= deadline {
                break false;
            }
        };
        epoll.del(stream.as_raw_fd());
        if !connected {
            return Err(format!("connect to {primary} timed out"));
        }
    }
    net::take_connect_error(&stream).map_err(|e| e.to_string())?;
    Ok(Some(stream))
}

/// Subscribe, then apply frames until the link breaks or an exit is
/// requested.
fn follower_apply_loop(
    state: &Arc<AppState>,
    epoll: &Epoll,
    wake: &WakePipe,
    events: &mut [EpollEvent],
    mut stream: TcpStream,
) {
    let token = 1u64;
    if epoll.add(stream.as_raw_fd(), net::EPOLLIN, token).is_err() {
        return;
    }
    let mut out = OutBuf::new();
    let mut inbuf: Vec<u8> = Vec::new();
    let mut applied: u64 = 0;
    let mut acked: u64 = 0;

    let subscribe = ReplMsg::Subscribe {
        cursors: state.replica_cursors(),
    };
    match serde_json::to_string(&subscribe) {
        Ok(frame) => out.push_frame(&frame),
        Err(_) => {
            epoll.del(stream.as_raw_fd());
            return;
        }
    }

    loop {
        if follower_should_exit(state) {
            break;
        }
        // Flush pending output (subscribe/acks) and set interest.
        let interest = match out.flush(&mut stream) {
            Ok(true) => net::EPOLLIN,
            Ok(false) => net::EPOLLIN | net::EPOLLOUT,
            Err(_) => break,
        };
        if epoll.modify(stream.as_raw_fd(), interest, token).is_err() {
            break;
        }
        let Ok(n) = epoll.wait(events, 500) else {
            break;
        };
        let mut ready = false;
        for ev in events.iter().take(n) {
            let token = { ev.data };
            match token {
                TOKEN_WAKE => wake.drain(),
                _ => ready = true,
            }
        }
        if !ready {
            continue;
        }
        if read_available(&mut stream, &mut inbuf).is_err() {
            break;
        }
        let mut poisoned = false;
        loop {
            match decode_frame(&mut inbuf) {
                Ok(Some(payload)) => match serde_json::from_str::<ReplMsg>(&payload) {
                    Ok(msg) => {
                        state.apply_repl_frame(msg);
                        applied += 1;
                    }
                    Err(e) => {
                        panda_obs::counter_add("repl.follower.link_errors", 1);
                        eprintln!(
                            "panda-serve: follower dropped corrupt frame stream: {}",
                            e.0
                        );
                        poisoned = true;
                        break;
                    }
                },
                Ok(None) => break,
                Err(msg) => {
                    panda_obs::counter_add("repl.follower.link_errors", 1);
                    eprintln!("panda-serve: follower dropped corrupt frame stream: {msg}");
                    poisoned = true;
                    break;
                }
            }
        }
        if poisoned {
            break;
        }
        if applied > acked {
            if let Ok(frame) = serde_json::to_string(&ReplMsg::Ack { frames: applied }) {
                out.push_frame(&frame);
            }
            acked = applied;
        }
    }
    epoll.del(stream.as_raw_fd());
}

/// A minimal one-shot HTTP POST (Connection: close) used by
/// `/rebalance` to hand a session to the target shard. Blocking with
/// timeouts — rebalance is an operator action on a worker thread, not
/// event-loop traffic.
pub fn http_post(
    addr: &str,
    path: &str,
    body: &str,
    timeout: Duration,
) -> Result<(u16, String), String> {
    let sockaddr = resolve(addr)?;
    let mut stream = TcpStream::connect_timeout(&sockaddr, timeout)
        .map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(timeout))
        .map_err(|e| e.to_string())?;
    stream
        .set_write_timeout(Some(timeout))
        .map_err(|e| e.to_string())?;
    let req = format!(
        "POST {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream
        .write_all(req.as_bytes())
        .map_err(|e| format!("send to {addr}: {e}"))?;
    let mut raw = Vec::new();
    stream
        .read_to_end(&mut raw)
        .map_err(|e| format!("read from {addr}: {e}"))?;
    let text = String::from_utf8_lossy(&raw);
    let status: u16 = text
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("malformed response from {addr}"))?;
    let body = text
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    Ok((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_and_reject_oversize() {
        let mut wire = Vec::new();
        encode_frame(&mut wire, "{\"a\":1}");
        encode_frame(&mut wire, "second");
        let mut buf = wire.clone();
        assert_eq!(decode_frame(&mut buf).unwrap().unwrap(), "{\"a\":1}");
        assert_eq!(decode_frame(&mut buf).unwrap().unwrap(), "second");
        assert!(decode_frame(&mut buf).unwrap().is_none());
        // A partial frame waits for more bytes.
        let mut partial = wire[..5].to_vec();
        assert!(decode_frame(&mut partial).unwrap().is_none());
        // A length past the cap poisons the link.
        let mut huge = ((MAX_FRAME + 1) as u32).to_be_bytes().to_vec();
        huge.extend_from_slice(b"xx");
        assert!(decode_frame(&mut huge).is_err());
    }

    #[test]
    fn repl_msgs_serialize_round_trip_including_spliced_records() {
        let record_line = "{\"seq\":3,\"digest\":42,\"op\":\"Fit\"}";
        // The splice the hub ships must parse as a ReplMsg::Record.
        let frame = format!("{{\"Record\":{{\"session\":7,\"record\":{record_line}}}}}");
        match serde_json::from_str::<ReplMsg>(&frame) {
            Ok(ReplMsg::Record { session, record }) => {
                assert_eq!(session, 7);
                assert_eq!(record.seq, 3);
                assert_eq!(record.digest, 42);
            }
            other => panic!("bad decode: {other:?}"),
        }
        let sub = ReplMsg::Subscribe {
            cursors: vec![SessionCursor { session: 1, seq: 5 }],
        };
        let json = serde_json::to_string(&sub).unwrap();
        match serde_json::from_str::<ReplMsg>(&json).unwrap() {
            ReplMsg::Subscribe { cursors } => {
                assert_eq!(cursors.len(), 1);
                assert_eq!(cursors[0].seq, 5);
            }
            other => panic!("bad decode: {other:?}"),
        }
    }

    #[test]
    fn shard_ring_is_deterministic_covering_and_self_aware() {
        let peers = vec![
            "127.0.0.1:7001".to_string(),
            "127.0.0.1:7002".to_string(),
            "127.0.0.1:7003".to_string(),
        ];
        let ring_a = ShardRing::new(peers.clone(), "127.0.0.1:7001").unwrap();
        let ring_b = ShardRing::new(peers.clone(), "127.0.0.1:7002").unwrap();
        let mut counts = [0usize; 3];
        for id in 1..=600u64 {
            // Every member computes the same owner for every id.
            assert_eq!(ring_a.owner_of(id), ring_b.owner_of(id));
            let owner = ring_a.owner_of(id);
            counts[peers.iter().position(|p| p == owner).unwrap()] += 1;
            assert_eq!(ring_a.owns(id), owner == "127.0.0.1:7001");
        }
        // Virtual nodes keep the split roughly even: no shard is empty
        // or hoarding everything.
        for c in counts {
            assert!(c > 60, "unbalanced ring: {counts:?}");
        }
        // A ring that does not contain the advertised self address is a
        // configuration error.
        let err = ShardRing::new(peers, "127.0.0.1:9999").unwrap_err();
        assert!(err.contains("9999"), "{err}");
    }
}
