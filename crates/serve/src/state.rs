//! Shared server state: the session table, the durable store, capacity
//! management, and the shutdown latch.
//!
//! Sessions sit behind individual mutexes so requests against *different*
//! sessions proceed in parallel; the outer map lock is held only for
//! lookup/insert/remove/eviction bookkeeping. Lock order is always map →
//! session (the evictor only `try_lock`s victims while holding the map
//! lock, so it can never deadlock against a worker that holds a session
//! and wants the map). A poisoned session lock (an LF panicked while a
//! worker held it) is recovered — the session rolls back failed edits
//! itself, so its state stays coherent.
//!
//! With a [`SessionStore`] attached, every entry pairs its session with a
//! [`SessionPersist`] WAL handle, startup replays the state directory,
//! LRU entries beyond `max_sessions` are **evicted to snapshot** (the
//! entry stays in the map with `slot: None` and transparently rehydrates
//! on the next touch), and a TTL sweep evicts idle sessions.

use crate::api::CreateSessionRequest;
use crate::persist::{SessionPersist, SessionStore, WalOp};
use panda_session::PandaSession;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, TryLockError};
use std::time::{Duration, Instant};

/// A live session plus its persistence handle (absent when the server
/// runs without `--state-dir`).
pub struct SessionSlot {
    /// The session itself.
    pub session: PandaSession,
    persist: Option<SessionPersist>,
}

impl SessionSlot {
    /// Durably log an already-applied op (no-op without a store). Called
    /// before the response is acknowledged; an error must surface as a
    /// 500 so the client knows the edit is not durable.
    pub fn log_op(&mut self, op: WalOp) -> Result<(), String> {
        match &mut self.persist {
            Some(p) => p.append(op, &self.session),
            None => Ok(()),
        }
    }
}

/// One session-table entry. `slot: None` means evicted-to-snapshot.
struct Entry {
    slot: Option<Arc<Mutex<SessionSlot>>>,
    last_touch: Instant,
    recovered: bool,
}

/// A `GET /sessions` listing row, pre-wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionInfo {
    /// Session handle.
    pub id: u64,
    /// In memory right now (vs evicted to snapshot).
    pub live: bool,
    /// Rebuilt from disk at server startup.
    pub recovered: bool,
}

/// Durability and capacity knobs for [`AppState::open`].
#[derive(Debug, Clone, Default)]
pub struct StateOptions {
    /// State directory; `None` runs fully in-memory.
    pub state_dir: Option<PathBuf>,
    /// Max sessions held in memory (0 = unbounded). Beyond it, LRU
    /// entries are evicted to snapshot (with a store) or dropped
    /// entirely (without one).
    pub max_sessions: usize,
    /// Idle time after which a session is evicted by [`AppState::sweep`].
    pub session_ttl: Option<Duration>,
    /// Appended WAL ops between snapshot compactions (0 = never).
    pub snapshot_every: u64,
}

/// Everything the worker threads share.
pub struct AppState {
    entries: Mutex<HashMap<u64, Entry>>,
    store: Option<SessionStore>,
    max_live: usize,
    ttl: Option<Duration>,
    /// Serializes rehydration so N concurrent touches of one evicted
    /// session replay it once, and the map lock stays free meanwhile.
    rehydrate_lock: Mutex<()>,
    next_id: AtomicU64,
    shutdown: AtomicBool,
}

impl Default for AppState {
    fn default() -> Self {
        AppState::open(StateOptions::default()).expect("in-memory state cannot fail")
    }
}

fn lock_map(state: &AppState) -> MutexGuard<'_, HashMap<u64, Entry>> {
    state.entries.lock().unwrap_or_else(|e| e.into_inner())
}

impl AppState {
    /// Fresh in-memory state with no sessions and no durability.
    pub fn new() -> Self {
        Self::default()
    }

    /// Open state with durability/capacity options. With a state dir,
    /// every persisted session is recovered (WAL-on-top-of-snapshot,
    /// digest-verified) before this returns; sessions that fail to
    /// recover are quarantined on disk and skipped with a counter + a
    /// stderr note, never served wrong.
    pub fn open(options: StateOptions) -> Result<Self, String> {
        let store = match &options.state_dir {
            Some(dir) => Some(SessionStore::open(dir, options.snapshot_every)?),
            None => None,
        };
        let mut entries = HashMap::new();
        let mut next_id = 1u64;
        if let Some(store) = &store {
            let _span = panda_obs::span("serve.recover");
            let mut ids = store.scan();
            ids.sort_unstable();
            for id in ids {
                next_id = next_id.max(id + 1);
                match store.recover(id) {
                    Ok(rec) => {
                        entries.insert(
                            id,
                            Entry {
                                slot: Some(Arc::new(Mutex::new(SessionSlot {
                                    session: rec.session,
                                    persist: Some(rec.persist),
                                }))),
                                last_touch: Instant::now(),
                                recovered: true,
                            },
                        );
                        panda_obs::counter_add("serve.sessions.recovered", 1);
                    }
                    Err(msg) => {
                        panda_obs::counter_add("serve.sessions.recovery_failed", 1);
                        eprintln!("panda-serve: session {id} not recovered ({msg}); its state dir is kept for inspection");
                    }
                }
            }
            panda_obs::gauge_set("serve.sessions.live", entries.len() as f64);
        }
        let state = AppState {
            entries: Mutex::new(entries),
            store,
            max_live: options.max_sessions,
            ttl: options.session_ttl,
            rehydrate_lock: Mutex::new(()),
            next_id: AtomicU64::new(next_id),
            shutdown: AtomicBool::new(false),
        };
        state.enforce_capacity(None);
        Ok(state)
    }

    /// Register a session created from a wire request; with a store the
    /// create record is durably logged before this returns. Returns the
    /// wire handle.
    pub fn create(
        &self,
        session: PandaSession,
        request: Option<&CreateSessionRequest>,
    ) -> Result<u64, String> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let persist = match (&self.store, request) {
            (Some(store), Some(req)) => Some(store.create(id, req, &session)?),
            _ => None,
        };
        let slot = Arc::new(Mutex::new(SessionSlot { session, persist }));
        {
            let mut map = lock_map(self);
            map.insert(
                id,
                Entry {
                    slot: Some(slot),
                    last_touch: Instant::now(),
                    recovered: false,
                },
            );
            // Gauge published under the map lock: a concurrent insert
            // cannot interleave between the mutation and the publish.
            publish_live_gauge(&map);
        }
        self.enforce_capacity(Some(id));
        Ok(id)
    }

    /// Register a session with no backing request (library/test use —
    /// such sessions are never persisted); returns its wire handle.
    pub fn insert(&self, session: PandaSession) -> u64 {
        self.create(session, None).expect("no store I/O involved")
    }

    /// Look up a session by handle, rehydrating it from its snapshot if
    /// it was evicted. Touches the LRU clock.
    pub fn get(&self, id: u64) -> Option<Arc<Mutex<SessionSlot>>> {
        match self.probe(id) {
            Probe::Live(slot) => return Some(slot),
            Probe::Missing => return None,
            Probe::Evicted => {}
        }
        // Rehydrate outside the map lock, serialized so concurrent
        // touches of the same evicted session load it once.
        let guard = self
            .rehydrate_lock
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        match self.probe(id) {
            Probe::Live(slot) => return Some(slot),
            Probe::Missing => return None,
            Probe::Evicted => {}
        }
        let store = self.store.as_ref()?;
        let _span = panda_obs::span("serve.session.rehydrate");
        match store.recover(id) {
            Ok(rec) => {
                let slot = Arc::new(Mutex::new(SessionSlot {
                    session: rec.session,
                    persist: Some(rec.persist),
                }));
                {
                    let mut map = lock_map(self);
                    let entry = map.get_mut(&id)?; // deleted meanwhile
                    entry.slot = Some(Arc::clone(&slot));
                    entry.last_touch = Instant::now();
                    publish_live_gauge(&map);
                }
                panda_obs::counter_add("serve.sessions.rehydrated", 1);
                drop(guard);
                self.enforce_capacity(Some(id));
                Some(slot)
            }
            Err(msg) => {
                panda_obs::counter_add("serve.sessions.recovery_failed", 1);
                eprintln!("panda-serve: session {id} failed to rehydrate: {msg}");
                None
            }
        }
    }

    fn probe(&self, id: u64) -> Probe {
        let mut map = lock_map(self);
        match map.get_mut(&id) {
            None => Probe::Missing,
            Some(entry) => {
                entry.last_touch = Instant::now();
                match &entry.slot {
                    Some(slot) => Probe::Live(Arc::clone(slot)),
                    None => Probe::Evicted,
                }
            }
        }
    }

    /// Drop a session (memory and disk). Returns whether it existed.
    pub fn remove(&self, id: u64) -> bool {
        let existed = {
            let mut map = lock_map(self);
            let existed = map.remove(&id).is_some();
            publish_live_gauge(&map);
            existed
        };
        if existed {
            if let Some(store) = &self.store {
                store.delete(id);
            }
        }
        existed
    }

    /// Number of known sessions (live + evicted).
    pub fn len(&self) -> usize {
        lock_map(self).len()
    }

    /// Whether no sessions are known.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of sessions currently held in memory.
    pub fn live_len(&self) -> usize {
        lock_map(self).values().filter(|e| e.slot.is_some()).count()
    }

    /// Listing rows for `GET /sessions`, sorted by id.
    pub fn list(&self) -> Vec<SessionInfo> {
        let map = lock_map(self);
        let mut rows: Vec<SessionInfo> = map
            .iter()
            .map(|(&id, e)| SessionInfo {
                id,
                live: e.slot.is_some(),
                recovered: e.recovered,
            })
            .collect();
        drop(map);
        rows.sort_by_key(|r| r.id);
        rows
    }

    /// Evict LRU live sessions down to the `max_sessions` bound. Victims
    /// whose lock is currently held by a worker are skipped (soft
    /// overshoot rather than deadlock); the next enforcement catches
    /// them. `exempt` protects the entry that triggered enforcement.
    fn enforce_capacity(&self, exempt: Option<u64>) {
        if self.max_live == 0 {
            return;
        }
        let mut map = lock_map(self);
        loop {
            let live = map.values().filter(|e| e.slot.is_some()).count();
            if live <= self.max_live {
                return;
            }
            let mut victims: Vec<(Instant, u64)> = map
                .iter()
                .filter(|(id, e)| e.slot.is_some() && Some(**id) != exempt)
                .map(|(&id, e)| (e.last_touch, id))
                .collect();
            victims.sort_unstable();
            let evicted_one = victims
                .iter()
                .any(|&(_, id)| self.evict_locked(&mut map, id));
            if !evicted_one {
                return; // everyone busy or un-evictable right now
            }
        }
    }

    /// Evict idle sessions past the TTL. Driven from shard 0's
    /// event-loop timer (~1s cadence).
    pub fn sweep(&self) {
        let Some(ttl) = self.ttl else {
            return;
        };
        let now = Instant::now();
        let mut map = lock_map(self);
        let stale: Vec<u64> = map
            .iter()
            .filter(|(_, e)| e.slot.is_some() && now.duration_since(e.last_touch) >= ttl)
            .map(|(&id, _)| id)
            .collect();
        for id in stale {
            self.evict_locked(&mut map, id);
        }
    }

    /// Evict one live entry while holding the map lock. With a store the
    /// session is snapshotted and the entry kept (rehydratable); without
    /// one the entry is dropped entirely. Returns whether it evicted.
    fn evict_locked(&self, map: &mut HashMap<u64, Entry>, id: u64) -> bool {
        let Some(entry) = map.get(&id) else {
            return false;
        };
        let Some(slot) = entry.slot.clone() else {
            return false;
        };
        let mut locked = match slot.try_lock() {
            Ok(g) => g,
            Err(TryLockError::Poisoned(p)) => p.into_inner(),
            Err(TryLockError::WouldBlock) => return false, // a worker is in it
        };
        if self.store.is_some() {
            let SessionSlot { session, persist } = &mut *locked;
            let Some(p) = persist.as_mut() else {
                return false; // request-less session: nothing to rehydrate from
            };
            if let Err(msg) = p.write_snapshot(session) {
                panda_obs::counter_add("serve.sessions.evict_failed", 1);
                eprintln!("panda-serve: session {id} not evicted: {msg}");
                return false;
            }
            drop(locked);
            map.get_mut(&id).expect("entry present").slot = None;
        } else {
            drop(locked);
            map.remove(&id);
        }
        panda_obs::counter_add("serve.sessions.evicted", 1);
        if panda_obs::journal_enabled() {
            panda_obs::event("serve.session.evicted")
                .field("session", id)
                .field("rehydratable", self.store.is_some())
                .emit();
        }
        publish_live_gauge(map);
        true
    }

    /// Snapshot every live persisted session — graceful-shutdown path,
    /// so a later restart replays zero WAL records. Failures are logged,
    /// never fatal: the WAL already holds everything.
    pub fn compact_all(&self) {
        if self.store.is_none() {
            return;
        }
        let slots: Vec<(u64, Arc<Mutex<SessionSlot>>)> = {
            let map = lock_map(self);
            map.iter()
                .filter_map(|(&id, e)| e.slot.clone().map(|s| (id, s)))
                .collect()
        };
        for (id, slot) in slots {
            let mut locked = slot.lock().unwrap_or_else(|e| e.into_inner());
            let SessionSlot { session, persist } = &mut *locked;
            if let Some(p) = persist.as_mut() {
                if p.wal_depth() == 0 {
                    continue; // already compact
                }
                if let Err(msg) = p.write_snapshot(session) {
                    eprintln!("panda-serve: final snapshot of session {id} failed: {msg}");
                }
            }
        }
    }

    /// Ask the server to stop accepting and drain. Wakes every parked
    /// event loop so idle keep-alive connections are closed promptly
    /// instead of at the next timer tick.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        crate::signal::wake_all();
    }

    /// Has shutdown been requested (by `/shutdown` or a signal)?
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst) || crate::signal::sigterm_received()
    }
}

enum Probe {
    Live(Arc<Mutex<SessionSlot>>),
    Evicted,
    Missing,
}

fn publish_live_gauge(map: &HashMap<u64, Entry>) {
    let live = map.values().filter(|e| e.slot.is_some()).count();
    panda_obs::gauge_set("serve.sessions.live", live as f64);
}

#[cfg(test)]
mod tests {
    use super::*;
    use panda_session::SessionConfig;
    use panda_table::{Table, TablePair};

    fn tiny_session() -> PandaSession {
        let left = Table::from_csv_str("l", "id,name\n1,acme corp\n2,zeta llc", true).unwrap();
        let right = Table::from_csv_str("r", "id,name\n1,acme corporation", true).unwrap();
        PandaSession::load(
            TablePair::new(left, right),
            SessionConfig {
                auto_lfs: false,
                ..Default::default()
            },
        )
    }

    #[test]
    fn insert_get_remove_lifecycle() {
        let state = AppState::new();
        assert!(state.is_empty());
        let a = state.insert(tiny_session());
        let b = state.insert(tiny_session());
        assert_ne!(a, b);
        assert_eq!(state.len(), 2);
        assert!(state.get(a).is_some());
        assert!(state.get(999).is_none());
        assert!(state.remove(a));
        assert!(!state.remove(a));
        assert_eq!(state.len(), 1);
    }

    #[test]
    fn shutdown_latch() {
        let state = AppState::new();
        assert!(!state.shutdown_requested());
        state.request_shutdown();
        assert!(state.shutdown_requested());
    }

    #[test]
    fn capacity_without_store_drops_lru() {
        let state = AppState::open(StateOptions {
            max_sessions: 2,
            ..Default::default()
        })
        .unwrap();
        let a = state.insert(tiny_session());
        let b = state.insert(tiny_session());
        // Touch `a` so `b` becomes the LRU victim when `c` arrives.
        assert!(state.get(a).is_some());
        let c = state.insert(tiny_session());
        assert_eq!(state.live_len(), 2);
        assert!(state.get(b).is_none(), "LRU dropped without a store");
        assert!(state.get(a).is_some());
        assert!(state.get(c).is_some());
    }

    #[test]
    fn sweep_without_ttl_is_a_noop() {
        let state = AppState::new();
        state.insert(tiny_session());
        state.sweep();
        assert_eq!(state.live_len(), 1);
    }

    #[test]
    fn ttl_sweep_drops_idle_sessions() {
        let state = AppState::open(StateOptions {
            session_ttl: Some(Duration::from_millis(10)),
            ..Default::default()
        })
        .unwrap();
        let id = state.insert(tiny_session());
        std::thread::sleep(Duration::from_millis(25));
        state.sweep();
        assert!(state.get(id).is_none(), "idle session swept");
        assert!(state.is_empty());
    }
}
