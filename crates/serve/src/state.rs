//! Shared server state: the session table and the shutdown latch.

use panda_session::PandaSession;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Everything the worker threads share.
///
/// Sessions sit behind individual mutexes so requests against *different*
/// sessions proceed in parallel; the outer map lock is held only for
/// lookup/insert/remove. A poisoned session lock (an LF panicked while a
/// worker held it) is recovered — the session rolls back failed edits
/// itself, so its state stays coherent.
pub struct AppState {
    sessions: Mutex<HashMap<u64, Arc<Mutex<PandaSession>>>>,
    next_id: AtomicU64,
    shutdown: AtomicBool,
}

impl Default for AppState {
    fn default() -> Self {
        AppState {
            sessions: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            shutdown: AtomicBool::new(false),
        }
    }
}

impl AppState {
    /// Fresh state with no sessions.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a session; returns its wire handle.
    pub fn insert(&self, session: PandaSession) -> u64 {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.sessions
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(id, Arc::new(Mutex::new(session)));
        panda_obs::gauge_set("serve.sessions.live", self.len() as f64);
        id
    }

    /// Look up a session by handle.
    pub fn get(&self, id: u64) -> Option<Arc<Mutex<PandaSession>>> {
        self.sessions
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(&id)
            .cloned()
    }

    /// Drop a session. Returns whether it existed.
    pub fn remove(&self, id: u64) -> bool {
        let existed = self
            .sessions
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&id)
            .is_some();
        panda_obs::gauge_set("serve.sessions.live", self.len() as f64);
        existed
    }

    /// Number of live sessions.
    pub fn len(&self) -> usize {
        self.sessions
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .len()
    }

    /// Whether no sessions are live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Ask the server to stop accepting and drain.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Has shutdown been requested (by `/shutdown` or a signal)?
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst) || crate::signal::sigterm_received()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use panda_session::SessionConfig;
    use panda_table::{Table, TablePair};

    fn tiny_session() -> PandaSession {
        let left = Table::from_csv_str("l", "id,name\n1,acme corp\n2,zeta llc", true).unwrap();
        let right = Table::from_csv_str("r", "id,name\n1,acme corporation", true).unwrap();
        PandaSession::load(
            TablePair::new(left, right),
            SessionConfig {
                auto_lfs: false,
                ..Default::default()
            },
        )
    }

    #[test]
    fn insert_get_remove_lifecycle() {
        let state = AppState::new();
        assert!(state.is_empty());
        let a = state.insert(tiny_session());
        let b = state.insert(tiny_session());
        assert_ne!(a, b);
        assert_eq!(state.len(), 2);
        assert!(state.get(a).is_some());
        assert!(state.get(999).is_none());
        assert!(state.remove(a));
        assert!(!state.remove(a));
        assert_eq!(state.len(), 1);
    }

    #[test]
    fn shutdown_latch() {
        let state = AppState::new();
        assert!(!state.shutdown_requested());
        state.request_shutdown();
        assert!(state.shutdown_requested());
    }
}
