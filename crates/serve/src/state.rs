//! Shared server state: the session table, the durable store, capacity
//! management, and the shutdown latch.
//!
//! Sessions sit behind individual mutexes so requests against *different*
//! sessions proceed in parallel; the outer map lock is held only for
//! lookup/insert/remove/eviction bookkeeping. Lock order is always map →
//! session (the evictor only `try_lock`s victims while holding the map
//! lock, so it can never deadlock against a worker that holds a session
//! and wants the map). A poisoned session lock (an LF panicked while a
//! worker held it) is recovered — the session rolls back failed edits
//! itself, so its state stays coherent.
//!
//! With a [`SessionStore`] attached, every entry pairs its session with a
//! [`SessionPersist`] WAL handle, startup replays the state directory,
//! LRU entries beyond `max_sessions` are **evicted to snapshot** (the
//! entry stays in the map with `slot: None` and transparently rehydrates
//! on the next touch), and a TTL sweep evicts idle sessions.

use crate::api::CreateSessionRequest;
use crate::persist::{
    self, config_digest, SessionPersist, SessionStore, SnapshotFile, WalOp, WalRecord,
    SNAPSHOT_FORMAT,
};
use crate::repl::{ReplHub, ReplMsg, SessionCursor, ShardRing};
use panda_session::PandaSession;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, TryLockError};
use std::time::{Duration, Instant};

/// Lock-free per-session replication metadata, shared between the slot
/// (writers: `log_op`, the follower apply loop) and the session-table
/// entry (reader: `GET /sessions`), so listings report `wal_seq` +
/// `matrix_digest` without taking session locks behind a long fit.
pub struct SlotMeta {
    wal_seq: AtomicU64,
    digest: AtomicU64,
}

impl SlotMeta {
    fn new(wal_seq: u64, digest: u64) -> Arc<SlotMeta> {
        Arc::new(SlotMeta {
            wal_seq: AtomicU64::new(wal_seq),
            digest: AtomicU64::new(digest),
        })
    }

    fn set(&self, wal_seq: u64, digest: u64) {
        self.wal_seq.store(wal_seq, Ordering::SeqCst);
        self.digest.store(digest, Ordering::SeqCst);
    }
}

/// The replay recipe a session carries when it has no on-disk persist
/// handle: follower replicas and sessions adopted on a store-less shard.
/// Holds exactly what `SessionPersist` would — the create request, the
/// LF spec map, and the applied seq — so the session can still be
/// dehydrated for sync frames and onward rebalances.
pub(crate) struct ReplayRecipe {
    pub(crate) last_seq: u64,
    pub(crate) specs: HashMap<String, String>,
    pub(crate) request: CreateSessionRequest,
}

/// The hub handle shared by every slot: set once by `Server::start`
/// when `--repl-addr` is configured, read on every logged op.
type HubCell = Arc<OnceLock<Arc<ReplHub>>>;

/// A live session plus its persistence handle (absent when the server
/// runs without `--state-dir`).
pub struct SessionSlot {
    /// The session itself.
    pub session: PandaSession,
    persist: Option<SessionPersist>,
    recipe: Option<ReplayRecipe>,
    meta: Arc<SlotMeta>,
    id: u64,
    hub: HubCell,
}

impl SessionSlot {
    /// Durably log an already-applied op (no-op without a store), update
    /// the listing metadata, and ship the record to followers. Called
    /// before the response is acknowledged; an error must surface as a
    /// 500 so the client knows the edit is not durable.
    pub fn log_op(&mut self, op: WalOp) -> Result<(), String> {
        match &mut self.persist {
            Some(p) => {
                let appended = p.append(op, &self.session)?;
                self.meta.set(appended.seq, appended.digest);
                if let Some(hub) = self.hub.get() {
                    hub.ship_record(self.id, &appended.line);
                }
                Ok(())
            }
            None => {
                // No WAL: keep the recipe and listing metadata coherent
                // so a promoted ex-follower can still be listed, synced,
                // and rebalanced accurately.
                let seq = self.meta.wal_seq.load(Ordering::SeqCst) + 1;
                if let Some(recipe) = &mut self.recipe {
                    recipe.last_seq = seq;
                    match &op {
                        WalOp::UpsertLf { spec } => {
                            recipe.specs.insert(
                                spec.name.clone(),
                                serde_json::to_string(spec).map_err(|e| e.0)?,
                            );
                        }
                        WalOp::RemoveLf { name } => {
                            recipe.specs.remove(name);
                        }
                        _ => {}
                    }
                }
                self.meta.set(seq, self.session.matrix().digest());
                Ok(())
            }
        }
    }

    /// The highest acknowledged sequence number for this session.
    pub fn wal_seq(&self) -> u64 {
        self.meta.wal_seq.load(Ordering::SeqCst)
    }

    /// Build the full-state snapshot replication ships to a follower.
    /// `Ok(None)` for sessions with no replay recipe (library/test
    /// inserts) — they cannot be replicated.
    pub(crate) fn sync_snapshot(&self) -> Result<Option<SnapshotFile>, String> {
        if let Some(p) = &self.persist {
            return Ok(Some(p.snapshot_file(&self.session)?));
        }
        if let Some(recipe) = &self.recipe {
            let specs = &recipe.specs;
            let state = self.session.dehydrate(&|name| specs.get(name).cloned())?;
            return Ok(Some(SnapshotFile {
                format: SNAPSHOT_FORMAT,
                last_seq: recipe.last_seq,
                config_digest: config_digest(&recipe.request),
                request: recipe.request.clone(),
                state,
            }));
        }
        Ok(None)
    }

    /// The snapshot + WAL-tail parts `/rebalance` ships to the target
    /// shard: the on-disk pair when persisted, a fresh dehydration when
    /// only a recipe exists.
    pub(crate) fn handoff_parts(&self) -> Result<(Option<SnapshotFile>, Vec<WalRecord>), String> {
        if let Some(p) = &self.persist {
            return p.disk_parts();
        }
        match self.sync_snapshot()? {
            Some(snap) => Ok((Some(snap), Vec::new())),
            None => Err(
                "session has no replay recipe (library insert without a create request); \
                 it cannot be rebalanced"
                    .into(),
            ),
        }
    }

    /// Apply one shipped WAL record through the same digest-verified
    /// rules crash recovery uses. `Ok(false)` = duplicate skipped.
    fn apply_replica_record(&mut self, rec: &WalRecord) -> Result<bool, String> {
        let recipe = self
            .recipe
            .as_mut()
            .ok_or("session is not a replica (no replay recipe)")?;
        if rec.seq <= recipe.last_seq {
            return Ok(false);
        }
        if let WalOp::Create { .. } = &rec.op {
            return Err(format!("duplicate create record at seq {}", rec.seq));
        }
        let applied = persist::apply_record(
            &mut self.session,
            &mut recipe.specs,
            &mut recipe.last_seq,
            rec,
        )?;
        if applied {
            self.meta.set(recipe.last_seq, rec.digest);
        }
        Ok(applied)
    }
}

/// One session-table entry. `slot: None` means evicted-to-snapshot (or
/// quarantined, when the flag is set).
struct Entry {
    slot: Option<Arc<Mutex<SessionSlot>>>,
    last_touch: Instant,
    recovered: bool,
    quarantined: bool,
    meta: Arc<SlotMeta>,
}

/// A `GET /sessions` listing row, pre-wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionInfo {
    /// Session handle.
    pub id: u64,
    /// In memory right now (vs evicted to snapshot).
    pub live: bool,
    /// Rebuilt from disk at server startup.
    pub recovered: bool,
    /// Replication apply failed (digest mismatch / seq gap); reads are
    /// refused until a full resync replaces the session.
    pub quarantined: bool,
    /// Highest acknowledged WAL sequence number.
    pub wal_seq: u64,
    /// Label-matrix digest after the last acknowledged op.
    pub matrix_digest: u64,
}

/// Durability and capacity knobs for [`AppState::open`].
#[derive(Debug, Clone, Default)]
pub struct StateOptions {
    /// State directory; `None` runs fully in-memory.
    pub state_dir: Option<PathBuf>,
    /// Max sessions held in memory (0 = unbounded). Beyond it, LRU
    /// entries are evicted to snapshot (with a store) or dropped
    /// entirely (without one).
    pub max_sessions: usize,
    /// Idle time after which a session is evicted by [`AppState::sweep`].
    pub session_ttl: Option<Duration>,
    /// Appended WAL ops between snapshot compactions (0 = never).
    pub snapshot_every: u64,
    /// Start as a read-only follower (`panda serve --follow`): mutations
    /// answer 421 and state arrives over the replication link.
    pub follower: bool,
    /// Consistent-hash shard map (`--peers`); `None` = unsharded.
    pub ring: Option<ShardRing>,
}

/// Everything the worker threads share.
pub struct AppState {
    entries: Mutex<HashMap<u64, Entry>>,
    store: Option<SessionStore>,
    max_live: usize,
    ttl: Option<Duration>,
    /// Serializes rehydration so N concurrent touches of one evicted
    /// session replay it once, and the map lock stays free meanwhile.
    rehydrate_lock: Mutex<()>,
    next_id: AtomicU64,
    shutdown: AtomicBool,
    /// True while this server is a read-only follower; `POST /promote`
    /// clears it.
    follower: AtomicBool,
    /// The primary's HTTP address (learned from its `Hello` frame),
    /// quoted in 421 mutation rejections.
    primary_http: Mutex<Option<String>>,
    ring: Option<ShardRing>,
    hub: HubCell,
}

impl Default for AppState {
    fn default() -> Self {
        AppState::open(StateOptions::default()).expect("in-memory state cannot fail")
    }
}

fn lock_map(state: &AppState) -> MutexGuard<'_, HashMap<u64, Entry>> {
    state.entries.lock().unwrap_or_else(|e| e.into_inner())
}

impl AppState {
    /// Fresh in-memory state with no sessions and no durability.
    pub fn new() -> Self {
        Self::default()
    }

    /// Open state with durability/capacity options. With a state dir,
    /// every persisted session is recovered (WAL-on-top-of-snapshot,
    /// digest-verified) before this returns; sessions that fail to
    /// recover are quarantined on disk and skipped with a counter + a
    /// stderr note, never served wrong.
    pub fn open(options: StateOptions) -> Result<Self, String> {
        let store = match &options.state_dir {
            Some(dir) => Some(SessionStore::open(dir, options.snapshot_every)?),
            None => None,
        };
        let hub: HubCell = Arc::new(OnceLock::new());
        let mut entries = HashMap::new();
        let mut next_id = 1u64;
        if let Some(store) = &store {
            let _span = panda_obs::span("serve.recover");
            let mut ids = store.scan();
            ids.sort_unstable();
            for id in ids {
                next_id = next_id.max(id + 1);
                match store.recover(id) {
                    Ok(rec) => {
                        let meta = SlotMeta::new(rec.persist.seq(), rec.session.matrix().digest());
                        entries.insert(
                            id,
                            Entry {
                                slot: Some(Arc::new(Mutex::new(SessionSlot {
                                    session: rec.session,
                                    persist: Some(rec.persist),
                                    recipe: None,
                                    meta: Arc::clone(&meta),
                                    id,
                                    hub: Arc::clone(&hub),
                                }))),
                                last_touch: Instant::now(),
                                recovered: true,
                                quarantined: false,
                                meta,
                            },
                        );
                        panda_obs::counter_add("serve.sessions.recovered", 1);
                    }
                    Err(msg) => {
                        panda_obs::counter_add("serve.sessions.recovery_failed", 1);
                        eprintln!("panda-serve: session {id} not recovered ({msg}); its state dir is kept for inspection");
                    }
                }
            }
            panda_obs::gauge_set("serve.sessions.live", entries.len() as f64);
        }
        let state = AppState {
            entries: Mutex::new(entries),
            store,
            max_live: options.max_sessions,
            ttl: options.session_ttl,
            rehydrate_lock: Mutex::new(()),
            next_id: AtomicU64::new(next_id),
            shutdown: AtomicBool::new(false),
            follower: AtomicBool::new(options.follower),
            primary_http: Mutex::new(None),
            ring: options.ring,
            hub,
        };
        state.enforce_capacity(None);
        Ok(state)
    }

    /// Register a session created from a wire request; with a store the
    /// create record is durably logged before this returns. Returns the
    /// wire handle.
    pub fn create(
        &self,
        session: PandaSession,
        request: Option<&CreateSessionRequest>,
    ) -> Result<u64, String> {
        // With a shard map, only ids this shard owns are handed out, so
        // the same id can never be minted on two shards. The ring mixes
        // peers evenly, so the expected number of skipped ids is the
        // peer count — cheap, and ids stay unique-per-shard forever.
        let id = loop {
            let id = self.next_id.fetch_add(1, Ordering::Relaxed);
            match &self.ring {
                Some(ring) if !ring.owns(id) => continue,
                _ => break id,
            }
        };
        let mut shipped_create: Option<String> = None;
        let persist = match (&self.store, request) {
            (Some(store), Some(req)) => {
                let (persist, appended) = store.create(id, req, &session)?;
                shipped_create = Some(appended.line);
                Some(persist)
            }
            _ => None,
        };
        let meta = match &persist {
            Some(p) => SlotMeta::new(p.seq(), session.matrix().digest()),
            None => SlotMeta::new(0, session.matrix().digest()),
        };
        let recipe = match (&persist, request) {
            (None, Some(req)) => Some(ReplayRecipe {
                last_seq: 0,
                specs: HashMap::new(),
                request: req.clone(),
            }),
            _ => None,
        };
        let slot = Arc::new(Mutex::new(SessionSlot {
            session,
            persist,
            recipe,
            meta: Arc::clone(&meta),
            id,
            hub: Arc::clone(&self.hub),
        }));
        {
            let mut map = lock_map(self);
            map.insert(
                id,
                Entry {
                    slot: Some(slot),
                    last_touch: Instant::now(),
                    recovered: false,
                    quarantined: false,
                    meta,
                },
            );
            // Gauge published under the map lock: a concurrent insert
            // cannot interleave between the mutation and the publish.
            publish_live_gauge(&map);
        }
        if let (Some(line), Some(hub)) = (shipped_create, self.hub.get()) {
            hub.ship_record(id, &line);
        }
        self.enforce_capacity(Some(id));
        Ok(id)
    }

    /// Register a session with no backing request (library/test use —
    /// such sessions are never persisted); returns its wire handle.
    pub fn insert(&self, session: PandaSession) -> u64 {
        self.create(session, None).expect("no store I/O involved")
    }

    /// Look up a session by handle, rehydrating it from its snapshot if
    /// it was evicted. Touches the LRU clock.
    pub fn get(&self, id: u64) -> Option<Arc<Mutex<SessionSlot>>> {
        match self.probe(id) {
            Probe::Live(slot) => return Some(slot),
            Probe::Missing => return None,
            Probe::Evicted => {}
        }
        // Rehydrate outside the map lock, serialized so concurrent
        // touches of the same evicted session load it once.
        let guard = self
            .rehydrate_lock
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        match self.probe(id) {
            Probe::Live(slot) => return Some(slot),
            Probe::Missing => return None,
            Probe::Evicted => {}
        }
        let store = self.store.as_ref()?;
        let _span = panda_obs::span("serve.session.rehydrate");
        match store.recover(id) {
            Ok(rec) => {
                let wal_seq = rec.persist.seq();
                let digest = rec.session.matrix().digest();
                let slot_inner = SessionSlot {
                    session: rec.session,
                    persist: Some(rec.persist),
                    recipe: None,
                    meta: SlotMeta::new(wal_seq, digest), // replaced below
                    id,
                    hub: Arc::clone(&self.hub),
                };
                let slot = Arc::new(Mutex::new(slot_inner));
                {
                    let mut map = lock_map(self);
                    let entry = map.get_mut(&id)?; // deleted meanwhile
                    entry.meta.set(wal_seq, digest);
                    // Share the entry's meta so listings keep tracking
                    // this slot's ops.
                    slot.lock().unwrap_or_else(|e| e.into_inner()).meta = Arc::clone(&entry.meta);
                    entry.slot = Some(Arc::clone(&slot));
                    entry.last_touch = Instant::now();
                    publish_live_gauge(&map);
                }
                panda_obs::counter_add("serve.sessions.rehydrated", 1);
                drop(guard);
                self.enforce_capacity(Some(id));
                Some(slot)
            }
            Err(msg) => {
                panda_obs::counter_add("serve.sessions.recovery_failed", 1);
                eprintln!("panda-serve: session {id} failed to rehydrate: {msg}");
                None
            }
        }
    }

    fn probe(&self, id: u64) -> Probe {
        let mut map = lock_map(self);
        match map.get_mut(&id) {
            None => Probe::Missing,
            Some(entry) => {
                entry.last_touch = Instant::now();
                match &entry.slot {
                    Some(slot) => Probe::Live(Arc::clone(slot)),
                    None => Probe::Evicted,
                }
            }
        }
    }

    /// Drop a session (memory and disk). Returns whether it existed.
    pub fn remove(&self, id: u64) -> bool {
        let existed = {
            let mut map = lock_map(self);
            let existed = map.remove(&id).is_some();
            publish_live_gauge(&map);
            existed
        };
        if existed {
            if let Some(store) = &self.store {
                store.delete(id);
            }
            if let Some(hub) = self.hub.get() {
                hub.ship_delete(id);
            }
        }
        existed
    }

    /// Number of known sessions (live + evicted).
    pub fn len(&self) -> usize {
        lock_map(self).len()
    }

    /// Whether no sessions are known.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of sessions currently held in memory.
    pub fn live_len(&self) -> usize {
        lock_map(self).values().filter(|e| e.slot.is_some()).count()
    }

    /// Listing rows for `GET /sessions`, sorted by id. Sequence numbers
    /// and digests come from the shared per-entry metadata, so a long
    /// fit holding a session lock never blocks the listing.
    pub fn list(&self) -> Vec<SessionInfo> {
        let map = lock_map(self);
        let mut rows: Vec<SessionInfo> = map
            .iter()
            .map(|(&id, e)| SessionInfo {
                id,
                live: e.slot.is_some(),
                recovered: e.recovered,
                quarantined: e.quarantined,
                wal_seq: e.meta.wal_seq.load(Ordering::SeqCst),
                matrix_digest: e.meta.digest.load(Ordering::SeqCst),
            })
            .collect();
        drop(map);
        rows.sort_by_key(|r| r.id);
        rows
    }

    /// Is this session known (live, evicted, or quarantined)? Does not
    /// touch the LRU clock — used by the shard misdirect check.
    pub fn contains(&self, id: u64) -> bool {
        lock_map(self).contains_key(&id)
    }

    /// Is this session quarantined (replication apply failed)?
    pub fn quarantined(&self, id: u64) -> bool {
        lock_map(self).get(&id).is_some_and(|e| e.quarantined)
    }

    /// Evict LRU live sessions down to the `max_sessions` bound. Victims
    /// whose lock is currently held by a worker are skipped (soft
    /// overshoot rather than deadlock); the next enforcement catches
    /// them. `exempt` protects the entry that triggered enforcement.
    fn enforce_capacity(&self, exempt: Option<u64>) {
        if self.max_live == 0 {
            return;
        }
        let mut map = lock_map(self);
        loop {
            let live = map.values().filter(|e| e.slot.is_some()).count();
            if live <= self.max_live {
                return;
            }
            let mut victims: Vec<(Instant, u64)> = map
                .iter()
                .filter(|(id, e)| e.slot.is_some() && Some(**id) != exempt)
                .map(|(&id, e)| (e.last_touch, id))
                .collect();
            victims.sort_unstable();
            let evicted_one = victims
                .iter()
                .any(|&(_, id)| self.evict_locked(&mut map, id));
            if !evicted_one {
                return; // everyone busy or un-evictable right now
            }
        }
    }

    /// Evict idle sessions past the TTL. Driven from shard 0's
    /// event-loop timer (~1s cadence).
    pub fn sweep(&self) {
        let Some(ttl) = self.ttl else {
            return;
        };
        let now = Instant::now();
        let mut map = lock_map(self);
        let stale: Vec<u64> = map
            .iter()
            .filter(|(_, e)| e.slot.is_some() && now.duration_since(e.last_touch) >= ttl)
            .map(|(&id, _)| id)
            .collect();
        for id in stale {
            self.evict_locked(&mut map, id);
        }
    }

    /// Evict one live entry while holding the map lock. With a store the
    /// session is snapshotted and the entry kept (rehydratable); without
    /// one the entry is dropped entirely. Returns whether it evicted.
    fn evict_locked(&self, map: &mut HashMap<u64, Entry>, id: u64) -> bool {
        let Some(entry) = map.get(&id) else {
            return false;
        };
        let Some(slot) = entry.slot.clone() else {
            return false;
        };
        let mut locked = match slot.try_lock() {
            Ok(g) => g,
            Err(TryLockError::Poisoned(p)) => p.into_inner(),
            Err(TryLockError::WouldBlock) => return false, // a worker is in it
        };
        if self.store.is_some() {
            let SessionSlot {
                session, persist, ..
            } = &mut *locked;
            let Some(p) = persist.as_mut() else {
                return false; // request-less session: nothing to rehydrate from
            };
            if let Err(msg) = p.write_snapshot(session) {
                panda_obs::counter_add("serve.sessions.evict_failed", 1);
                eprintln!("panda-serve: session {id} not evicted: {msg}");
                return false;
            }
            drop(locked);
            map.get_mut(&id).expect("entry present").slot = None;
        } else {
            drop(locked);
            map.remove(&id);
        }
        panda_obs::counter_add("serve.sessions.evicted", 1);
        if panda_obs::journal_enabled() {
            panda_obs::event("serve.session.evicted")
                .field("session", id)
                .field("rehydratable", self.store.is_some())
                .emit();
        }
        publish_live_gauge(map);
        true
    }

    /// Snapshot every live persisted session — graceful-shutdown path,
    /// so a later restart replays zero WAL records. Failures are logged,
    /// never fatal: the WAL already holds everything.
    pub fn compact_all(&self) {
        if self.store.is_none() {
            return;
        }
        let slots: Vec<(u64, Arc<Mutex<SessionSlot>>)> = {
            let map = lock_map(self);
            map.iter()
                .filter_map(|(&id, e)| e.slot.clone().map(|s| (id, s)))
                .collect()
        };
        for (id, slot) in slots {
            let mut locked = slot.lock().unwrap_or_else(|e| e.into_inner());
            let SessionSlot {
                session, persist, ..
            } = &mut *locked;
            if let Some(p) = persist.as_mut() {
                if p.wal_depth() == 0 {
                    continue; // already compact
                }
                if let Err(msg) = p.write_snapshot(session) {
                    eprintln!("panda-serve: final snapshot of session {id} failed: {msg}");
                }
            }
        }
    }

    /// Is this server currently a read-only follower?
    pub fn is_follower(&self) -> bool {
        self.follower.load(Ordering::SeqCst)
    }

    /// Flip a follower to primary (`POST /promote`). Returns whether the
    /// role actually changed. Wakes the parked apply loop so it exits;
    /// everything already applied stays — at most the in-flight record
    /// is lost.
    pub fn promote(&self) -> bool {
        let was_follower = self.follower.swap(false, Ordering::SeqCst);
        if was_follower {
            panda_obs::counter_add("repl.promotions", 1);
            crate::signal::wake_all();
        }
        was_follower
    }

    /// The primary's HTTP address (learned from its `Hello` frame).
    pub fn primary_http(&self) -> Option<String> {
        self.primary_http
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Record the primary's HTTP address for 421 redirects.
    pub fn set_primary_http(&self, addr: String) {
        *self.primary_http.lock().unwrap_or_else(|e| e.into_inner()) = Some(addr);
    }

    /// The consistent-hash shard map, when `--peers` was configured.
    pub fn ring(&self) -> Option<&ShardRing> {
        self.ring.as_ref()
    }

    /// Attach the replication hub (primary with `--repl-addr`). Called
    /// once at server start, before any request is accepted.
    pub fn set_hub(&self, hub: Arc<ReplHub>) {
        let _ = self.hub.set(hub);
    }

    /// The replication hub, when WAL shipping is active.
    pub fn hub(&self) -> Option<Arc<ReplHub>> {
        self.hub.get().cloned()
    }

    /// Per-session cursors for the subscribe handshake. Quarantined
    /// sessions are omitted, so the primary answers with a full sync
    /// that replaces the quarantined state wholesale.
    pub fn replica_cursors(&self) -> Vec<SessionCursor> {
        let map = lock_map(self);
        let mut cursors: Vec<SessionCursor> = map
            .iter()
            .filter(|(_, e)| !e.quarantined)
            .map(|(&id, e)| SessionCursor {
                session: id,
                seq: e.meta.wal_seq.load(Ordering::SeqCst),
            })
            .collect();
        drop(map);
        cursors.sort_by_key(|c| c.session);
        cursors
    }

    /// Serialized `Sync` frames for every replicable session a fresh
    /// subscriber is behind on (runs on the hub thread). Sessions whose
    /// cursor already matches are skipped — a reconnect after a clean
    /// link drop resyncs nothing.
    pub fn sync_frames(&self, cursors: &[SessionCursor]) -> Vec<String> {
        let by_id: HashMap<u64, u64> = cursors.iter().map(|c| (c.session, c.seq)).collect();
        let mut ids: Vec<u64> = {
            let map = lock_map(self);
            map.keys().copied().collect()
        };
        ids.sort_unstable();
        let mut frames = Vec::new();
        for id in ids {
            let Some(slot) = self.get(id) else { continue };
            let locked = slot.lock().unwrap_or_else(|e| e.into_inner());
            if by_id.get(&id).copied() == Some(locked.wal_seq()) {
                continue;
            }
            match locked.sync_snapshot() {
                Ok(Some(snapshot)) => {
                    if let Ok(frame) = serde_json::to_string(&ReplMsg::Sync {
                        session: id,
                        snapshot,
                    }) {
                        panda_obs::counter_add_labeled("repl.shipped", &[("kind", "sync")], 1);
                        frames.push(frame);
                    }
                }
                Ok(None) => {} // request-less library insert: not replicable
                Err(msg) => {
                    eprintln!("panda-serve: session {id} sync snapshot failed: {msg}");
                }
            }
        }
        frames
    }

    /// Apply one replication frame (follower side). Failures quarantine
    /// the affected session — they never crash the apply loop.
    pub fn apply_repl_frame(&self, msg: ReplMsg) {
        match msg {
            ReplMsg::Hello { http_addr } => self.set_primary_http(http_addr),
            ReplMsg::Sync { session, snapshot } => match persist::Replayer::from_snapshot(snapshot)
            {
                Ok(replayer) => match self.install_replica(session, replayer) {
                    Ok(()) => {
                        panda_obs::counter_add_labeled("repl.applied", &[("kind", "sync")], 1);
                    }
                    Err(msg) => self.quarantine(session, &msg),
                },
                Err(msg) => self.quarantine(session, &msg),
            },
            ReplMsg::Record { session, record } => self.apply_replica_record(session, &record),
            ReplMsg::Delete { session } => {
                if self.remove_replica(session) {
                    panda_obs::counter_add_labeled("repl.applied", &[("kind", "delete")], 1);
                }
            }
            // Primary-bound frames; nothing to do on this side.
            ReplMsg::Subscribe { .. } | ReplMsg::Ack { .. } => {}
        }
    }

    /// Install (or replace) a replicated session. Replacing is how a
    /// full sync clears a quarantine.
    fn install_replica(&self, id: u64, replayer: persist::Replayer) -> Result<(), String> {
        let persist::Replayer {
            session,
            request,
            specs,
            last_seq,
        } = replayer;
        let session = session.ok_or("sync carries no session")?;
        let request = request.ok_or("sync carries no create request")?;
        let meta = SlotMeta::new(last_seq, session.matrix().digest());
        let slot = Arc::new(Mutex::new(SessionSlot {
            session,
            persist: None,
            recipe: Some(ReplayRecipe {
                last_seq,
                specs,
                request,
            }),
            meta: Arc::clone(&meta),
            id,
            hub: Arc::clone(&self.hub),
        }));
        self.next_id.fetch_max(id + 1, Ordering::Relaxed);
        let mut map = lock_map(self);
        map.insert(
            id,
            Entry {
                slot: Some(slot),
                last_touch: Instant::now(),
                recovered: false,
                quarantined: false,
                meta,
            },
        );
        publish_live_gauge(&map);
        Ok(())
    }

    /// Apply one shipped WAL record to the replica it belongs to.
    fn apply_replica_record(&self, id: u64, rec: &WalRecord) {
        let slot = {
            let map = lock_map(self);
            map.get(&id).and_then(|e| e.slot.clone())
        };
        match slot {
            Some(slot) => {
                let mut locked = slot.lock().unwrap_or_else(|e| e.into_inner());
                match locked.apply_replica_record(rec) {
                    Ok(true) => {
                        panda_obs::counter_add_labeled("repl.applied", &[("kind", "record")], 1);
                    }
                    Ok(false) => {} // duplicate already covered by a sync
                    Err(msg) => {
                        drop(locked);
                        self.quarantine(id, &msg);
                    }
                }
            }
            None => {
                if self.quarantined(id) {
                    return; // awaiting the resync that clears it
                }
                // Unknown session: only a create record is
                // self-contained; anything else is a gap.
                let mut replayer = persist::Replayer::new();
                match replayer.apply(rec) {
                    Ok(_) => match self.install_replica(id, replayer) {
                        Ok(()) => {
                            panda_obs::counter_add_labeled(
                                "repl.applied",
                                &[("kind", "record")],
                                1,
                            );
                        }
                        Err(msg) => self.quarantine(id, &msg),
                    },
                    Err(msg) => self.quarantine(id, &msg),
                }
            }
        }
    }

    /// Quarantine a session after a failed replication apply: the slot
    /// is dropped, reads answer 409, and a later full sync replaces it.
    fn quarantine(&self, id: u64, msg: &str) {
        let reason = if msg.contains("digest") {
            "digest"
        } else if msg.contains("gap") {
            "gap"
        } else {
            "apply"
        };
        panda_obs::counter_add_labeled("repl.quarantines", &[("reason", reason)], 1);
        eprintln!("panda-serve: session {id} quarantined ({msg}); awaiting full resync");
        let mut map = lock_map(self);
        let entry = map.entry(id).or_insert_with(|| Entry {
            slot: None,
            last_touch: Instant::now(),
            recovered: false,
            quarantined: true,
            meta: SlotMeta::new(0, 0),
        });
        entry.slot = None;
        entry.quarantined = true;
        publish_live_gauge(&map);
        if panda_obs::journal_enabled() {
            panda_obs::event("repl.session.quarantined")
                .field("session", id)
                .emit();
        }
    }

    /// Remove a replicated session (shipped delete) — memory only, no
    /// store involvement and no onward shipping.
    fn remove_replica(&self, id: u64) -> bool {
        let mut map = lock_map(self);
        let existed = map.remove(&id).is_some();
        publish_live_gauge(&map);
        existed
    }

    /// Install a handed-off session on this shard (the receiving side
    /// of `/rebalance`). With a store the moved state is snapshotted
    /// durably before this returns, and the session is announced to
    /// this shard's own followers as a full sync.
    pub fn adopt_handoff(&self, id: u64, replayer: persist::Replayer) -> Result<(), String> {
        let persist::Replayer {
            session,
            request,
            specs,
            last_seq,
        } = replayer;
        let session = session.ok_or("handoff carries no session")?;
        let request = request.ok_or("handoff carries no create request")?;
        if self.contains(id) {
            return Err(format!("session {id} already exists on this shard"));
        }
        let persist_handle = match &self.store {
            Some(store) => Some(store.adopt(id, &request, &session, specs.clone(), last_seq)?),
            None => None,
        };
        let recipe = if persist_handle.is_none() {
            Some(ReplayRecipe {
                last_seq,
                specs,
                request,
            })
        } else {
            None
        };
        let meta = SlotMeta::new(last_seq, session.matrix().digest());
        let slot = Arc::new(Mutex::new(SessionSlot {
            session,
            persist: persist_handle,
            recipe,
            meta: Arc::clone(&meta),
            id,
            hub: Arc::clone(&self.hub),
        }));
        self.next_id.fetch_max(id + 1, Ordering::Relaxed);
        {
            let mut map = lock_map(self);
            map.insert(
                id,
                Entry {
                    slot: Some(Arc::clone(&slot)),
                    last_touch: Instant::now(),
                    recovered: false,
                    quarantined: false,
                    meta,
                },
            );
            publish_live_gauge(&map);
        }
        panda_obs::counter_add_labeled("repl.rebalance_moves", &[("direction", "in")], 1);
        if let Some(hub) = self.hub.get() {
            let locked = slot.lock().unwrap_or_else(|e| e.into_inner());
            if let Ok(Some(snapshot)) = locked.sync_snapshot() {
                if let Ok(frame) = serde_json::to_string(&ReplMsg::Sync {
                    session: id,
                    snapshot,
                }) {
                    hub.ship_sync_frame(frame);
                }
            }
        }
        self.enforce_capacity(Some(id));
        Ok(())
    }

    /// Ask the server to stop accepting and drain. Wakes every parked
    /// event loop so idle keep-alive connections are closed promptly
    /// instead of at the next timer tick.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        crate::signal::wake_all();
    }

    /// Has shutdown been requested (by `/shutdown` or a signal)?
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst) || crate::signal::sigterm_received()
    }
}

enum Probe {
    Live(Arc<Mutex<SessionSlot>>),
    Evicted,
    Missing,
}

fn publish_live_gauge(map: &HashMap<u64, Entry>) {
    let live = map.values().filter(|e| e.slot.is_some()).count();
    panda_obs::gauge_set("serve.sessions.live", live as f64);
}

#[cfg(test)]
mod tests {
    use super::*;
    use panda_session::SessionConfig;
    use panda_table::{Table, TablePair};

    fn tiny_session() -> PandaSession {
        let left = Table::from_csv_str("l", "id,name\n1,acme corp\n2,zeta llc", true).unwrap();
        let right = Table::from_csv_str("r", "id,name\n1,acme corporation", true).unwrap();
        PandaSession::load(
            TablePair::new(left, right),
            SessionConfig {
                auto_lfs: false,
                ..Default::default()
            },
        )
    }

    #[test]
    fn insert_get_remove_lifecycle() {
        let state = AppState::new();
        assert!(state.is_empty());
        let a = state.insert(tiny_session());
        let b = state.insert(tiny_session());
        assert_ne!(a, b);
        assert_eq!(state.len(), 2);
        assert!(state.get(a).is_some());
        assert!(state.get(999).is_none());
        assert!(state.remove(a));
        assert!(!state.remove(a));
        assert_eq!(state.len(), 1);
    }

    #[test]
    fn shutdown_latch() {
        let state = AppState::new();
        assert!(!state.shutdown_requested());
        state.request_shutdown();
        assert!(state.shutdown_requested());
    }

    #[test]
    fn capacity_without_store_drops_lru() {
        let state = AppState::open(StateOptions {
            max_sessions: 2,
            ..Default::default()
        })
        .unwrap();
        let a = state.insert(tiny_session());
        let b = state.insert(tiny_session());
        // Touch `a` so `b` becomes the LRU victim when `c` arrives.
        assert!(state.get(a).is_some());
        let c = state.insert(tiny_session());
        assert_eq!(state.live_len(), 2);
        assert!(state.get(b).is_none(), "LRU dropped without a store");
        assert!(state.get(a).is_some());
        assert!(state.get(c).is_some());
    }

    #[test]
    fn sweep_without_ttl_is_a_noop() {
        let state = AppState::new();
        state.insert(tiny_session());
        state.sweep();
        assert_eq!(state.live_len(), 1);
    }

    #[test]
    fn ttl_sweep_drops_idle_sessions() {
        let state = AppState::open(StateOptions {
            session_ttl: Some(Duration::from_millis(10)),
            ..Default::default()
        })
        .unwrap();
        let id = state.insert(tiny_session());
        std::thread::sleep(Duration::from_millis(25));
        state.sweep();
        assert!(state.get(id).is_none(), "idle session swept");
        assert!(state.is_empty());
    }
}
