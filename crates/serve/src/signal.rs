//! SIGTERM → graceful drain, without a libc crate.
//!
//! std already links the platform C library, so on Unix we can declare
//! `signal(2)` ourselves and install a handler that does the only two
//! async-signal-safe things a handler may do here: flip one atomic and
//! `write(2)` a byte to each registered wake pipe. The event-loop
//! workers park in `epoll_wait`; the wake byte makes their self-pipe
//! readable so they observe the latch immediately instead of at the
//! next timer tick. `POST /shutdown` reuses the same registry via
//! [`wake_all`].

use std::sync::atomic::{AtomicBool, AtomicI32, Ordering};

static SIGTERM: AtomicBool = AtomicBool::new(false);

/// One slot per event-loop worker; plenty for any sane `--workers`.
const MAX_WAKE_FDS: usize = 128;

/// Registered wake-pipe write fds (−1 = empty slot). Written with CAS so
/// registration is lock-free — the signal handler only ever reads.
static WAKE_FDS: [AtomicI32; MAX_WAKE_FDS] = [const { AtomicI32::new(-1) }; MAX_WAKE_FDS];

/// Has SIGTERM (or SIGINT, when installed) been delivered?
pub fn sigterm_received() -> bool {
    SIGTERM.load(Ordering::SeqCst)
}

/// Test hook: simulate signal delivery.
#[doc(hidden)]
pub fn raise_for_test() {
    SIGTERM.store(true, Ordering::SeqCst);
    wake_all();
}

/// Register a wake-pipe write fd; [`wake_all`] will poke it. Silently
/// drops the registration if every slot is taken (the worker then falls
/// back to noticing the latch at its next epoll timeout).
pub fn register_wake_fd(fd: i32) {
    for slot in &WAKE_FDS {
        if slot
            .compare_exchange(-1, fd, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
        {
            return;
        }
    }
}

/// Remove a previously registered wake fd (worker teardown).
pub fn unregister_wake_fd(fd: i32) {
    for slot in &WAKE_FDS {
        let _ = slot.compare_exchange(fd, -1, Ordering::SeqCst, Ordering::SeqCst);
    }
}

/// Write one byte to every registered wake pipe. Async-signal-safe
/// (atomic loads + `write(2)` only), so the SIGTERM handler may call it;
/// so may ordinary code (`/shutdown`, [`crate::state::AppState`]).
pub fn wake_all() {
    imp::wake_all();
}

#[cfg(unix)]
mod imp {
    use super::{SIGTERM, WAKE_FDS};
    use std::ffi::{c_int, c_void};
    use std::sync::atomic::Ordering;

    const SIGINT: c_int = 2;
    const SIGTERM_NO: c_int = 15;

    extern "C" {
        fn signal(signum: c_int, handler: usize) -> usize;
        fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    }

    pub fn wake_all() {
        for slot in &WAKE_FDS {
            let fd = slot.load(Ordering::SeqCst);
            if fd >= 0 {
                // Non-blocking pipe: if it is already full the worker has
                // a wake pending anyway, so a failed write is fine.
                unsafe { write(fd, b"w".as_ptr().cast(), 1) };
            }
        }
    }

    extern "C" fn on_signal(_signum: c_int) {
        SIGTERM.store(true, Ordering::SeqCst);
        wake_all();
    }

    /// Route SIGTERM and SIGINT to the drain flag.
    pub fn install() {
        unsafe {
            signal(SIGTERM_NO, on_signal as extern "C" fn(c_int) as usize);
            signal(SIGINT, on_signal as extern "C" fn(c_int) as usize);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    /// No-op off Unix: `/shutdown` remains the only drain trigger.
    pub fn install() {}
    pub fn wake_all() {}
}

/// Install the termination handlers (call once, from the CLI entry point;
/// tests and embedded servers use `/shutdown` instead).
pub fn install_handlers() {
    imp::install();
}
