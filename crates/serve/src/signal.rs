//! SIGTERM → graceful drain, without a libc crate.
//!
//! std already links the platform C library, so on Unix we can declare
//! `signal(2)` ourselves and install a handler that flips one atomic —
//! the only async-signal-safe thing a handler may do. The accept loop
//! polls the flag alongside the `/shutdown` latch.

use std::sync::atomic::{AtomicBool, Ordering};

static SIGTERM: AtomicBool = AtomicBool::new(false);

/// Has SIGTERM (or SIGINT, when installed) been delivered?
pub fn sigterm_received() -> bool {
    SIGTERM.load(Ordering::SeqCst)
}

/// Test hook: simulate signal delivery.
#[doc(hidden)]
pub fn raise_for_test() {
    SIGTERM.store(true, Ordering::SeqCst);
}

#[cfg(unix)]
mod imp {
    use super::SIGTERM;
    use std::ffi::c_int;
    use std::sync::atomic::Ordering;

    const SIGINT: c_int = 2;
    const SIGTERM_NO: c_int = 15;

    extern "C" {
        fn signal(signum: c_int, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_signum: c_int) {
        SIGTERM.store(true, Ordering::SeqCst);
    }

    /// Route SIGTERM and SIGINT to the drain flag.
    pub fn install() {
        unsafe {
            signal(SIGTERM_NO, on_signal as extern "C" fn(c_int) as usize);
            signal(SIGINT, on_signal as extern "C" fn(c_int) as usize);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    /// No-op off Unix: `/shutdown` remains the only drain trigger.
    pub fn install() {}
}

/// Install the termination handlers (call once, from the CLI entry point;
/// tests and embedded servers use `/shutdown` instead).
pub fn install_handlers() {
    imp::install();
}
