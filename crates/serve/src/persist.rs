//! The durable session store: per-session write-ahead log + compacted
//! snapshots.
//!
//! Layout under the state directory (`panda serve --state-dir`):
//!
//! ```text
//! <state-dir>/sessions/<id>/wal.jsonl      append-only op log
//! <state-dir>/sessions/<id>/snapshot.json  compacted state (optional)
//! ```
//!
//! **WAL.** Every acknowledged session-mutating request appends exactly
//! one JSONL [`WalRecord`] — create (with the full table CSVs + a config
//! digest), LF upsert/remove, fit, spot label — and fsyncs it *before*
//! the HTTP response is written (the fsync runs under the
//! `persist.wal.fsync` span, so `/metrics` exposes its latency histogram
//! for free). Records carry a monotonically increasing `seq` and the
//! [`panda_lf::LabelMatrix::digest`] taken **after** applying the op, so
//! replay can verify every step. A torn final line (crash mid-append) is
//! dropped: its op was never acknowledged. Corruption anywhere else is
//! an error — the session is quarantined instead of served wrong.
//!
//! **Snapshots.** Every `snapshot_every` appended ops the session is
//! dehydrated ([`panda_session::PandaSession::dehydrate`]) into
//! `snapshot.json` (tmp + fsync + rename, then directory fsync) and the
//! WAL is reset, bounding replay cost. Recovery loads the snapshot (if
//! any), verifies its config digest, rehydrates — which re-runs
//! deterministic blocking and checks the persisted matrix digest — then
//! replays WAL records with `seq > snapshot.last_seq` through the same
//! session methods the live server uses, re-verifying the digest after
//! each op.
//!
//! **Failure policy.** A WAL append failure surfaces as an error *before*
//! the response is acknowledged (the op stays applied in memory but the
//! client sees a 500 and must retry), and the persist handle latches
//! `broken` so later mutating ops fail fast instead of silently running
//! undurable. Reads keep working.

use crate::api::{build_tables, CreateSessionRequest, LfSpec};
use panda_lf::BoxedLf;
use panda_session::{PandaSession, SessionState};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Bumped when the snapshot encoding changes incompatibly.
pub const SNAPSHOT_FORMAT: u64 = 1;
/// Default appended ops between snapshot compactions.
pub const DEFAULT_SNAPSHOT_EVERY: u64 = 16;

const WAL_FILE: &str = "wal.jsonl";
const SNAPSHOT_FILE: &str = "snapshot.json";
const SNAPSHOT_TMP: &str = "snapshot.json.tmp";
const BROKEN_MSG: &str =
    "session store is in a failed state (an earlier WAL or snapshot write failed); \
     mutating operations are rejected to avoid silent durability loss";

/// One session-mutating operation, as logged.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum WalOp {
    /// Session creation: the full request (CSVs, gold, config DTO) plus
    /// a digest of its canonical JSON, re-verified at replay.
    Create {
        /// The original `POST /sessions` body.
        request: CreateSessionRequest,
        /// [`config_digest`] of `request` at log time.
        config_digest: u64,
    },
    /// `POST /sessions/{id}/lfs` — the declarative spec is the replay
    /// recipe.
    UpsertLf {
        /// The wire LF spec.
        spec: LfSpec,
    },
    /// `DELETE /sessions/{id}/lfs/{name}`.
    RemoveLf {
        /// Registry name removed.
        name: String,
    },
    /// `POST /sessions/{id}/fit` (warm-started refit).
    Fit,
    /// `POST /sessions/{id}/labels` (user spot label).
    Label {
        /// Candidate index.
        candidate: u64,
        /// The user's verdict.
        is_match: bool,
    },
}

/// One WAL line.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WalRecord {
    /// Monotonic per-session sequence number, starting at 1.
    pub seq: u64,
    /// [`panda_lf::LabelMatrix::digest`] **after** applying `op`.
    pub digest: u64,
    /// The operation.
    pub op: WalOp,
}

/// The compacted snapshot file.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SnapshotFile {
    /// [`SNAPSHOT_FORMAT`] at write time.
    pub format: u64,
    /// WAL records with `seq <=` this are folded into `state`.
    pub last_seq: u64,
    /// [`config_digest`] of `request`, re-verified at load.
    pub config_digest: u64,
    /// The original create request (tables are rebuilt from it).
    pub request: CreateSessionRequest,
    /// The dehydrated session.
    pub state: SessionState,
}

/// FNV-1a digest of the canonical JSON of a create request — covers the
/// CSVs, gold pairs, and config DTO, so recovery refuses to rebuild a
/// session from a request that doesn't match what was logged.
pub fn config_digest(request: &CreateSessionRequest) -> u64 {
    let json = serde_json::to_string(request).unwrap_or_default();
    let mut h: u64 = 0xcbf29ce484222325;
    for b in json.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Rebuild an LF from its persisted wire-spec JSON — the `build_spec`
/// hook [`panda_session::PandaSession::rehydrate`] needs.
pub fn build_from_spec(name: &str, spec_json: &str) -> Result<BoxedLf, String> {
    let spec: LfSpec = serde_json::from_str(spec_json)
        .map_err(|e| format!("LF {name:?}: bad persisted spec: {}", e.0))?;
    spec.build()
}

/// The digest-verified replay engine shared by crash recovery, the
/// follower apply loop, and cross-shard handoff: applies [`WalRecord`]s
/// in sequence, skipping snapshot-covered duplicates, rejecting gaps,
/// and verifying the post-op matrix digest after every applied record.
pub struct Replayer {
    /// The session being rebuilt (`None` until a snapshot or create).
    pub session: Option<PandaSession>,
    /// The original create request (travels with the session).
    pub request: Option<CreateSessionRequest>,
    /// LF name → wire-spec JSON: the dehydration recipe map.
    pub specs: HashMap<String, String>,
    /// Highest applied (or snapshot-covered) sequence number.
    pub last_seq: u64,
}

impl Replayer {
    /// An empty replayer: the first record must be a create.
    pub fn new() -> Replayer {
        Replayer {
            session: None,
            request: None,
            specs: HashMap::new(),
            last_seq: 0,
        }
    }

    /// Seed from a snapshot: verifies the format and config digest, then
    /// rehydrates (which re-runs deterministic blocking and checks the
    /// persisted matrix digest).
    pub fn from_snapshot(snap: SnapshotFile) -> Result<Replayer, String> {
        if snap.format != SNAPSHOT_FORMAT {
            return Err(format!(
                "snapshot format {} unsupported (expected {SNAPSHOT_FORMAT})",
                snap.format
            ));
        }
        if snap.config_digest != config_digest(&snap.request) {
            return Err("snapshot create-request digest mismatch".into());
        }
        let config = snap.request.config.clone().unwrap_or_default().resolve()?;
        let tables = build_tables(&snap.request)?;
        let session = PandaSession::rehydrate(tables, config, &snap.state, &build_from_spec)?;
        let mut specs = HashMap::new();
        for lf in &snap.state.lfs {
            if let Some(spec) = &lf.spec {
                specs.insert(lf.name.clone(), spec.clone());
            }
        }
        Ok(Replayer {
            session: Some(session),
            request: Some(snap.request),
            specs,
            last_seq: snap.last_seq,
        })
    }

    /// Apply one record. `Ok(false)` means the record was skipped as a
    /// duplicate already covered by the seeded snapshot (crash between
    /// snapshot rename and WAL reset, or a replication resend); any gap,
    /// digest mismatch, or misplaced create is an error — the caller
    /// quarantines instead of serving wrong state.
    pub fn apply(&mut self, rec: &WalRecord) -> Result<bool, String> {
        if rec.seq <= self.last_seq {
            return Ok(false);
        }
        if let WalOp::Create {
            request,
            config_digest: logged,
        } = &rec.op
        {
            if rec.seq != self.last_seq + 1 {
                return Err(format!(
                    "seq gap: record {} follows {}",
                    rec.seq, self.last_seq
                ));
            }
            if self.session.is_some() {
                return Err(format!("duplicate create record at seq {}", rec.seq));
            }
            if *logged != config_digest(request) {
                return Err("create record digest mismatch".into());
            }
            let config = request.config.clone().unwrap_or_default().resolve()?;
            let tables = build_tables(request)?;
            let session = PandaSession::load(tables, config);
            let got = session.matrix().digest();
            if got != rec.digest {
                return Err(format!(
                    "matrix digest mismatch at WAL seq {}: logged {:#018x}, replayed {got:#018x}",
                    rec.seq, rec.digest
                ));
            }
            self.request = Some(request.clone());
            self.session = Some(session);
            self.last_seq = rec.seq;
            return Ok(true);
        }
        let session = self
            .session
            .as_mut()
            .ok_or_else(|| format!("WAL op at seq {} before create", rec.seq))?;
        apply_record(session, &mut self.specs, &mut self.last_seq, rec)
    }
}

/// Apply one non-create record to a live session under the recovery
/// rules: skip duplicates, reject gaps, verify the post-op matrix
/// digest. The follower apply loop runs this directly against the slot
/// it replicates into.
pub(crate) fn apply_record(
    session: &mut PandaSession,
    specs: &mut HashMap<String, String>,
    last_seq: &mut u64,
    rec: &WalRecord,
) -> Result<bool, String> {
    if rec.seq <= *last_seq {
        return Ok(false);
    }
    if rec.seq != *last_seq + 1 {
        return Err(format!("seq gap: record {} follows {}", rec.seq, *last_seq));
    }
    if matches!(rec.op, WalOp::Create { .. }) {
        return Err(format!("duplicate create record at seq {}", rec.seq));
    }
    apply_wal_op(session, &rec.op, specs).map_err(|e| format!("WAL seq {}: {e}", rec.seq))?;
    let got = session.matrix().digest();
    if got != rec.digest {
        return Err(format!(
            "matrix digest mismatch at WAL seq {}: logged {:#018x}, replayed {got:#018x}",
            rec.seq, rec.digest
        ));
    }
    *last_seq = rec.seq;
    Ok(true)
}

impl Default for Replayer {
    fn default() -> Self {
        Replayer::new()
    }
}

/// Rebuild a session from handed-off parts (optional snapshot + WAL
/// tail), enforcing the same gap and digest rules as recovery. Strict:
/// an out-of-order or digest-mismatched record is an error — the
/// receiving shard refuses the handoff rather than installing a wrong
/// session.
pub fn rebuild(snapshot: Option<SnapshotFile>, tail: &[WalRecord]) -> Result<Replayer, String> {
    let mut replayer = match snapshot {
        Some(snap) => Replayer::from_snapshot(snap)?,
        None => Replayer::new(),
    };
    for rec in tail {
        replayer.apply(rec)?;
    }
    if replayer.session.is_none() {
        return Err("handoff carries no snapshot and no create record".into());
    }
    Ok(replayer)
}

/// A recovered session plus its re-attached persistence handle.
pub struct Recovered {
    /// The rebuilt session, digest-verified.
    pub session: PandaSession,
    /// Persistence handle, positioned to append after the last replayed
    /// record.
    pub persist: SessionPersist,
}

/// The on-disk store: owns the state directory and builds per-session
/// persistence handles.
#[derive(Debug, Clone)]
pub struct SessionStore {
    sessions_dir: PathBuf,
    snapshot_every: u64,
}

impl SessionStore {
    /// Open (creating if needed) a state directory.
    pub fn open(dir: &Path, snapshot_every: u64) -> Result<SessionStore, String> {
        let sessions_dir = dir.join("sessions");
        fs::create_dir_all(&sessions_dir)
            .map_err(|e| format!("cannot create state dir {}: {e}", sessions_dir.display()))?;
        Ok(SessionStore {
            sessions_dir,
            snapshot_every,
        })
    }

    /// Session ids present on disk (unordered).
    pub fn scan(&self) -> Vec<u64> {
        let Ok(entries) = fs::read_dir(&self.sessions_dir) else {
            return Vec::new();
        };
        entries
            .filter_map(|e| e.ok())
            .filter(|e| e.path().is_dir())
            .filter_map(|e| e.file_name().to_str().and_then(|s| s.parse().ok()))
            .collect()
    }

    fn session_dir(&self, id: u64) -> PathBuf {
        self.sessions_dir.join(id.to_string())
    }

    /// Remove a session's on-disk state (`DELETE /sessions/{id}`).
    pub fn delete(&self, id: u64) {
        let _ = fs::remove_dir_all(self.session_dir(id));
    }

    /// Start persisting a freshly created session: opens a fresh WAL and
    /// logs the create record (fsynced before this returns). Also yields
    /// the appended create record so a primary can ship it to followers.
    pub fn create(
        &self,
        id: u64,
        request: &CreateSessionRequest,
        session: &PandaSession,
    ) -> Result<(SessionPersist, Appended), String> {
        let dir = self.session_dir(id);
        fs::create_dir_all(&dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
        let wal_path = dir.join(WAL_FILE);
        let wal = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&wal_path)
            .map_err(|e| format!("open {}: {e}", wal_path.display()))?;
        let mut persist = SessionPersist {
            dir,
            wal,
            seq: 0,
            ops_since_snapshot: 0,
            snapshot_every: self.snapshot_every,
            request: request.clone(),
            specs: HashMap::new(),
            broken: false,
        };
        let appended = persist.append(
            WalOp::Create {
                request: request.clone(),
                config_digest: config_digest(request),
            },
            session,
        )?;
        Ok((persist, appended))
    }

    /// Install a handed-off session under a fresh directory: an empty
    /// WAL positioned at `last_seq` plus an immediate snapshot, so the
    /// moved state is durable before the handoff is acknowledged.
    pub fn adopt(
        &self,
        id: u64,
        request: &CreateSessionRequest,
        session: &PandaSession,
        specs: HashMap<String, String>,
        last_seq: u64,
    ) -> Result<SessionPersist, String> {
        let dir = self.session_dir(id);
        fs::create_dir_all(&dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
        let wal_path = dir.join(WAL_FILE);
        let wal = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&wal_path)
            .map_err(|e| format!("open {}: {e}", wal_path.display()))?;
        let mut persist = SessionPersist {
            dir,
            wal,
            seq: last_seq,
            ops_since_snapshot: 0,
            snapshot_every: self.snapshot_every,
            request: request.clone(),
            specs,
            broken: false,
        };
        persist.write_snapshot(session)?;
        Ok(persist)
    }

    /// Rebuild a session from disk: snapshot (verified) + WAL replay
    /// (digest-verified per record). Errors quarantine the session —
    /// its directory is left untouched for inspection.
    pub fn recover(&self, id: u64) -> Result<Recovered, String> {
        let _span = panda_obs::span("persist.session.recover");
        let dir = self.session_dir(id);
        let snap_path = dir.join(SNAPSHOT_FILE);
        let wal_path = dir.join(WAL_FILE);

        let mut replayer = if snap_path.exists() {
            let text = fs::read_to_string(&snap_path)
                .map_err(|e| format!("read {}: {e}", snap_path.display()))?;
            let snap: SnapshotFile =
                serde_json::from_str(&text).map_err(|e| format!("snapshot: {}", e.0))?;
            Replayer::from_snapshot(snap)?
        } else {
            Replayer::new()
        };

        let mut replayed = 0u64;
        if wal_path.exists() {
            let text = fs::read_to_string(&wal_path)
                .map_err(|e| format!("read {}: {e}", wal_path.display()))?;
            let lines: Vec<&str> = text.lines().collect();
            let mut prev_seq: Option<u64> = None;
            for (i, line) in lines.iter().enumerate() {
                if line.trim().is_empty() {
                    continue;
                }
                let rec: WalRecord = match serde_json::from_str(line) {
                    Ok(rec) => rec,
                    Err(e) => {
                        if i + 1 == lines.len() {
                            // Torn tail from a crash mid-append: the op
                            // was never acknowledged, dropping it is the
                            // correct recovery.
                            panda_obs::counter_add("persist.wal.torn_tail", 1);
                            break;
                        }
                        return Err(format!("WAL line {}: {}", i + 1, e.0));
                    }
                };
                // In-file contiguity: even records the snapshot already
                // covers must be gap-free, or the log is corrupt.
                if let Some(p) = prev_seq {
                    if rec.seq != p + 1 {
                        return Err(format!("WAL gap: record {} follows {p}", rec.seq));
                    }
                }
                prev_seq = Some(rec.seq);
                if replayer.apply(&rec)? {
                    replayed += 1;
                }
            }
        }

        let Replayer {
            session,
            request,
            specs,
            last_seq,
        } = replayer;
        let session = session.ok_or("no snapshot and no create record — nothing to recover")?;
        let request = request.expect("request travels with session");
        let wal = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&wal_path)
            .map_err(|e| format!("reopen {}: {e}", wal_path.display()))?;
        Ok(Recovered {
            session,
            persist: SessionPersist {
                dir,
                wal,
                seq: last_seq,
                ops_since_snapshot: replayed,
                snapshot_every: self.snapshot_every,
                request,
                specs,
                broken: false,
            },
        })
    }
}

/// Replay one non-create op through the same session methods the live
/// router uses, keeping the spec map in sync exactly as `append` does.
fn apply_wal_op(
    session: &mut PandaSession,
    op: &WalOp,
    specs: &mut HashMap<String, String>,
) -> Result<(), String> {
    match op {
        WalOp::UpsertLf { spec } => {
            let lf = spec.build()?;
            session.upsert_lf_incremental(lf)?;
            specs.insert(
                spec.name.clone(),
                serde_json::to_string(spec).map_err(|e| e.0)?,
            );
        }
        WalOp::RemoveLf { name } => {
            session.remove_lf_incremental(name);
            specs.remove(name);
        }
        WalOp::Fit => session.fit(),
        WalOp::Label {
            candidate,
            is_match,
        } => {
            let i = *candidate as usize;
            if i >= session.candidates().len() {
                return Err(format!("label index {i} out of range"));
            }
            session.label_pair(i, *is_match);
        }
        WalOp::Create { .. } => return Err("unexpected nested create".into()),
    }
    Ok(())
}

/// Metadata of one durably appended WAL record, for replication: the
/// primary ships `line` verbatim so followers replay byte-identical
/// records.
#[derive(Debug, Clone)]
pub struct Appended {
    /// The record's sequence number.
    pub seq: u64,
    /// Post-op matrix digest logged with the record.
    pub digest: u64,
    /// The serialized JSONL line (no trailing newline).
    pub line: String,
}

/// Per-session persistence handle: the open WAL plus the bookkeeping to
/// compact it. All calls happen under the session's mutex, so WAL writes
/// and the snapshot-then-truncate sequence are never concurrent.
pub struct SessionPersist {
    dir: PathBuf,
    wal: File,
    seq: u64,
    ops_since_snapshot: u64,
    snapshot_every: u64,
    request: CreateSessionRequest,
    /// LF name → wire-spec JSON for every spec-backed LF currently
    /// registered — the dehydration recipe map.
    specs: HashMap<String, String>,
    broken: bool,
}

impl SessionPersist {
    /// Durably log one applied op: serialize, append, fsync — then
    /// compact when the snapshot cadence is due. Must be called *after*
    /// the op was applied to `session` (the record carries the resulting
    /// matrix digest) and *before* the response is acknowledged. Returns
    /// the appended record so the caller can ship it to followers.
    pub fn append(&mut self, op: WalOp, session: &PandaSession) -> Result<Appended, String> {
        if self.broken {
            return Err(BROKEN_MSG.into());
        }
        let spec_entry = match &op {
            WalOp::UpsertLf { spec } => Some((
                spec.name.clone(),
                serde_json::to_string(spec).map_err(|e| e.0)?,
            )),
            _ => None,
        };
        let rec = WalRecord {
            seq: self.seq + 1,
            digest: session.matrix().digest(),
            op,
        };
        let line = serde_json::to_string(&rec).map_err(|e| e.0)?;
        let written = (|| -> std::io::Result<()> {
            self.wal.write_all(line.as_bytes())?;
            self.wal.write_all(b"\n")?;
            let _fsync = panda_obs::span("persist.wal.fsync");
            self.wal.sync_data()
        })();
        if let Err(e) = written {
            self.broken = true;
            panda_obs::counter_add("persist.wal.append_failed", 1);
            return Err(format!("WAL append failed: {e}"));
        }
        self.seq += 1;
        self.ops_since_snapshot += 1;
        panda_obs::counter_add("persist.wal.appends", 1);
        match (&rec.op, spec_entry) {
            (WalOp::UpsertLf { .. }, Some((name, json))) => {
                self.specs.insert(name, json);
            }
            (WalOp::RemoveLf { name }, _) => {
                self.specs.remove(name);
            }
            _ => {}
        }
        if self.snapshot_every > 0 && self.ops_since_snapshot >= self.snapshot_every {
            if let Err(msg) = self.write_snapshot(session) {
                // The record itself is already durable; a failed
                // compaction only costs replay time now and blocks
                // *future* appends fast via `broken`.
                eprintln!("panda-serve: snapshot compaction failed: {msg}");
            }
        }
        Ok(Appended {
            seq: self.seq,
            digest: rec.digest,
            line,
        })
    }

    /// Dehydrate the session into `snapshot.json` (tmp + fsync + rename,
    /// then dir fsync) and reset the WAL. Used by the compaction cadence,
    /// LRU eviction, and graceful shutdown.
    pub fn write_snapshot(&mut self, session: &PandaSession) -> Result<(), String> {
        if self.broken {
            return Err(BROKEN_MSG.into());
        }
        let _span = panda_obs::span("persist.snapshot.write");
        let snap = self.snapshot_file(session)?;
        let json = serde_json::to_string(&snap).map_err(|e| e.0)?;
        let tmp = self.dir.join(SNAPSHOT_TMP);
        let result = (|| -> std::io::Result<()> {
            let mut f = File::create(&tmp)?;
            f.write_all(json.as_bytes())?;
            f.sync_data()?;
            fs::rename(&tmp, self.dir.join(SNAPSHOT_FILE))?;
            // Make the rename itself durable, then reset the WAL (safe
            // under the session lock — no append can interleave). A
            // crash between rename and reset leaves stale WAL records
            // with seq <= last_seq, which replay skips.
            File::open(&self.dir).and_then(|d| d.sync_all())?;
            self.wal.set_len(0)?;
            self.wal.seek(SeekFrom::Start(0))?;
            self.wal.sync_data()
        })();
        match result {
            Ok(()) => {
                self.ops_since_snapshot = 0;
                panda_obs::counter_add("persist.snapshots.written", 1);
                Ok(())
            }
            Err(e) => {
                self.broken = true;
                Err(format!("snapshot write failed: {e}"))
            }
        }
    }

    /// Records appended since the last snapshot (replay cost on crash).
    pub fn wal_depth(&self) -> u64 {
        self.ops_since_snapshot
    }

    /// Sequence number of the last durably appended record.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// The original create request this handle persists for.
    pub fn request(&self) -> &CreateSessionRequest {
        &self.request
    }

    /// Build (without writing) the snapshot `write_snapshot` would
    /// persist right now — the full-sync payload replication ships to a
    /// freshly subscribed follower.
    pub fn snapshot_file(&self, session: &PandaSession) -> Result<SnapshotFile, String> {
        let specs = &self.specs;
        let state = session.dehydrate(&|name| specs.get(name).cloned())?;
        Ok(SnapshotFile {
            format: SNAPSHOT_FORMAT,
            last_seq: self.seq,
            config_digest: config_digest(&self.request),
            request: self.request.clone(),
            state,
        })
    }

    /// Read the on-disk snapshot + WAL tail for a cross-shard handoff.
    /// Runs under the session lock, so the files are quiescent. A torn
    /// final WAL line is dropped (its op was never acknowledged); any
    /// other parse failure is an error.
    pub fn disk_parts(&self) -> Result<(Option<SnapshotFile>, Vec<WalRecord>), String> {
        let snap_path = self.dir.join(SNAPSHOT_FILE);
        let snapshot = if snap_path.exists() {
            let text = fs::read_to_string(&snap_path)
                .map_err(|e| format!("read {}: {e}", snap_path.display()))?;
            Some(
                serde_json::from_str::<SnapshotFile>(&text)
                    .map_err(|e| format!("snapshot: {}", e.0))?,
            )
        } else {
            None
        };
        let wal_path = self.dir.join(WAL_FILE);
        let mut tail = Vec::new();
        if wal_path.exists() {
            let text = fs::read_to_string(&wal_path)
                .map_err(|e| format!("read {}: {e}", wal_path.display()))?;
            let lines: Vec<&str> = text.lines().collect();
            for (i, line) in lines.iter().enumerate() {
                if line.trim().is_empty() {
                    continue;
                }
                match serde_json::from_str::<WalRecord>(line) {
                    Ok(rec) => tail.push(rec),
                    Err(e) => {
                        if i + 1 == lines.len() {
                            break;
                        }
                        return Err(format!("WAL line {}: {}", i + 1, e.0));
                    }
                }
            }
        }
        Ok((snapshot, tail))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_digest_is_stable_and_sensitive() {
        let req = CreateSessionRequest {
            left_csv: "id,name\n1,a".into(),
            right_csv: "id,name\n1,b".into(),
            gold: None,
            config: None,
        };
        assert_eq!(config_digest(&req), config_digest(&req.clone()));
        let mut other = req.clone();
        other.left_csv.push_str("\n2,c");
        assert_ne!(config_digest(&req), config_digest(&other));
    }

    #[test]
    fn build_from_spec_round_trips_wire_specs() {
        let spec = LfSpec {
            name: "name_overlap".into(),
            kind: "similarity".into(),
            attr: Some("name".into()),
            upper: Some(0.7),
            ..Default::default()
        };
        let json = serde_json::to_string(&spec).unwrap();
        let lf = build_from_spec("name_overlap", &json).unwrap();
        assert_eq!(lf.name(), "name_overlap");
        assert!(build_from_spec("x", "{not json").is_err());
    }
}
