//! The Panda serving layer: the IDE loop over HTTP.
//!
//! The original demo serves its Vue front-end from a Flask process; this
//! crate is that process's Rust equivalent — a **std-only** HTTP/1.1
//! server (no async runtime, no HTTP dependency) exposing every session
//! interaction as a JSON endpoint:
//!
//! | Route | Session method |
//! |---|---|
//! | `POST /sessions` | [`panda_session::PandaSession::load`] |
//! | `GET /sessions` | [`state::AppState::list`] (live/evicted/recovered) |
//! | `POST /sessions/{id}/lfs` | [`panda_session::PandaSession::upsert_lf_incremental`] |
//! | `DELETE /sessions/{id}/lfs/{name}` | [`panda_session::PandaSession::remove_lf_incremental`] |
//! | `POST /sessions/{id}/fit` | [`panda_session::PandaSession::fit`] (warm-started) |
//! | `POST /sessions/{id}/labels` | [`panda_session::PandaSession::label_pair`] |
//! | `POST /sessions/{id}/query` | [`panda_session::PandaSession::debug_pairs`] |
//! | `POST /match` | [`panda_session::PandaSession::score_pair`] |
//! | `GET /metrics` | [`panda_obs::snapshot`] |
//! | `POST /promote` | [`state::AppState::promote`] (follower → primary) |
//! | `POST /rebalance` | snapshot + WAL-tail handoff to another shard |
//! | `POST /handoff` | receiving side of `/rebalance` ([`state::AppState::adopt_handoff`]) |
//!
//! LF edits are **incremental**: adding an LF computes exactly one new
//! label-matrix column ([`panda_lf::LabelMatrix::add_column`]) instead of
//! re-applying every LF, and a refit warm-starts EM from the previous
//! posterior. The server therefore runs the same code as the offline
//! session — wire results are bit-identical to library results (proved by
//! `tests/wire_parity.rs`).
//!
//! The transport is event-driven: each worker (sized like
//! [`panda_exec::worker_count`]) owns an `SO_REUSEPORT` listener and an
//! epoll loop ([`net`]) over non-blocking connection state machines, with
//! HTTP/1.1 keep-alive and pipelining so clients amortize connect cost
//! across requests. Robustness: per-shard connection caps with 503
//! shedding, per-state deadlines (slowloris eviction → 408, idle
//! keep-alive reap, bounded writes), a request-body cap (413), structured
//! JSON errors, panic isolation per request, and graceful drain on
//! `POST /shutdown` or SIGTERM (idle persistent connections close
//! immediately; in-flight requests finish under their deadlines).
//!
//! Durability: with `--state-dir` every acknowledged mutating request is
//! appended (and fsynced) to a per-session WAL before the response goes
//! out, snapshots compact the log on a cadence, and startup replays
//! WAL-on-top-of-snapshot with [`panda_lf::LabelMatrix::digest`]
//! verification at every step ([`persist`]). `--max-sessions` bounds
//! resident memory by evicting least-recently-used sessions to snapshot
//! (they rehydrate transparently on the next touch) and `--session-ttl`
//! sweeps idle ones ([`state::AppState`]).
//!
//! Replication ([`repl`]): `--repl-addr` streams every acknowledged WAL
//! record to subscribed followers (`--follow`) which replay it through
//! the digest-verified recovery path and serve read-only routes
//! (mutations answer 421 naming the primary; `POST /promote` flips a
//! follower to primary). `--peers` arranges servers on an FNV-1a
//! consistent-hash ring: each session lives on one shard, foreign
//! requests answer 421 with the owner, and `POST /rebalance` moves a
//! session between shards by snapshot + WAL-tail handoff.
//!
//! ```no_run
//! let handle = panda_serve::Server::start(panda_serve::ServerConfig {
//!     addr: "127.0.0.1:7700".to_string(),
//!     ..Default::default()
//! })
//! .unwrap();
//! println!("listening on {}", handle.addr());
//! handle.join(); // returns after /shutdown or SIGTERM
//! ```

pub mod api;
pub mod http;
pub mod net;
pub mod persist;
pub mod repl;
pub mod router;
pub mod server;
pub mod signal;
pub mod state;

pub use server::{Server, ServerConfig, ServerHandle};
pub use state::{AppState, SessionInfo, SessionSlot, StateOptions};
