//! Prometheus text exposition (format version 0.0.4): a renderer for
//! [`Snapshot`] and a small conformance parser.
//!
//! The mapping from the registry to exposition families:
//!
//! * **Counters** (labeled and unlabeled, merged by name) render as
//!   `# TYPE <name>_total counter` — dots become underscores, the
//!   conventional `_total` suffix is appended.
//! * **Gauges** render as `# TYPE <name> gauge`.
//! * **Spans and labeled log₂ histograms** render as
//!   `# TYPE <name>_seconds histogram`: each occupied log₂ bucket `b`
//!   becomes a *cumulative* `_bucket` sample with
//!   `le = 2^(b+1) ns / 1e9` seconds, the terminal bucket is
//!   `le="+Inf"` (the last log₂ bucket is open-ended — everything
//!   ≥ 2^31 ns lands there — so it folds into `+Inf` rather than lying
//!   about an upper bound), `_sum` is total seconds, and `_count` the
//!   observation count. Non-latency histograms (e.g. keep-alive reuse
//!   depth) use the same pipeline; their "seconds" are raw magnitudes
//!   divided by 1e9, which preserves ordering and shape.
//!
//! Within a family, the unlabeled series (if any) renders first, then
//! labeled series in sorted label-set order; label values escape `\`,
//! `"`, and newline per the exposition spec. All of this is pinned by
//! unit tests — scrape consumers can rely on it.
//!
//! The parser ([`parse`]) understands exactly this dialect (plus `# HELP`
//! and arbitrary comments), and *validates* while parsing: name/label
//! syntax, samples belonging to their `# TYPE` family, no duplicate
//! series, histogram bucket monotonicity, `+Inf` presence, and
//! `_count`/`+Inf` agreement. CI pipes a live server's
//! `GET /metrics?format=prometheus` through it (`panda promcheck`).

use crate::{Snapshot, SpanStats, HIST_BUCKETS};
use std::collections::{BTreeMap, BTreeSet};

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

/// Render a snapshot in the exposition format. See the module docs for
/// the mapping.
pub fn render(snap: &Snapshot) -> String {
    let mut out = String::with_capacity(4096);

    let counter_names: BTreeSet<&String> = snap
        .counters
        .keys()
        .chain(snap.labeled_counters.keys())
        .collect();
    for name in counter_names {
        let pname = format!("{}_total", sanitize(name));
        out.push_str(&format!("# TYPE {pname} counter\n"));
        if let Some(v) = snap.counters.get(name) {
            out.push_str(&format!("{pname} {v}\n"));
        }
        if let Some(family) = snap.labeled_counters.get(name) {
            for (labels, v) in family {
                out.push_str(&pname);
                render_labels(&mut out, labels, None);
                out.push_str(&format!(" {v}\n"));
            }
        }
    }

    let gauge_names: BTreeSet<&String> = snap
        .gauges
        .keys()
        .chain(snap.labeled_gauges.keys())
        .collect();
    for name in gauge_names {
        let pname = sanitize(name);
        out.push_str(&format!("# TYPE {pname} gauge\n"));
        if let Some(v) = snap.gauges.get(name) {
            out.push_str(&format!("{pname} {}\n", fmt_value(*v)));
        }
        if let Some(family) = snap.labeled_gauges.get(name) {
            for (labels, v) in family {
                out.push_str(&pname);
                render_labels(&mut out, labels, None);
                out.push_str(&format!(" {}\n", fmt_value(*v)));
            }
        }
    }

    let hist_names: BTreeSet<&String> =
        snap.spans.keys().chain(snap.labeled_hists.keys()).collect();
    for name in hist_names {
        let pname = format!("{}_seconds", sanitize(name));
        out.push_str(&format!("# TYPE {pname} histogram\n"));
        if let Some(stats) = snap.spans.get(name) {
            render_histogram(&mut out, &pname, &[], stats);
        }
        if let Some(family) = snap.labeled_hists.get(name) {
            for (labels, stats) in family {
                render_histogram(&mut out, &pname, labels, stats);
            }
        }
    }

    out
}

/// One histogram series: cumulative occupied buckets, `+Inf`, `_sum`,
/// `_count`.
fn render_histogram(out: &mut String, pname: &str, labels: &[(String, String)], s: &SpanStats) {
    let mut cumulative = 0u64;
    for (b, &c) in s.hist.iter().enumerate().take(HIST_BUCKETS - 1) {
        if c == 0 {
            continue;
        }
        cumulative += c;
        let le = (1u64 << (b + 1)) as f64 / 1e9;
        out.push_str(pname);
        out.push_str("_bucket");
        render_labels(out, labels, Some(&fmt_value(le)));
        out.push_str(&format!(" {cumulative}\n"));
    }
    out.push_str(pname);
    out.push_str("_bucket");
    render_labels(out, labels, Some("+Inf"));
    out.push_str(&format!(" {}\n", s.count));
    out.push_str(pname);
    out.push_str("_sum");
    render_labels(out, labels, None);
    out.push_str(&format!(" {}\n", fmt_value(s.total_ns as f64 / 1e9)));
    out.push_str(pname);
    out.push_str("_count");
    render_labels(out, labels, None);
    out.push_str(&format!(" {}\n", s.count));
}

/// Append `{k="v",...}` (sorted keys; `le` last when given); appends
/// nothing for an empty set with no `le`.
fn render_labels(out: &mut String, labels: &[(String, String)], le: Option<&str>) {
    if labels.is_empty() && le.is_none() {
        return;
    }
    out.push('{');
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(k);
        out.push_str("=\"");
        escape_label_value(v, out);
        out.push('"');
    }
    if let Some(le) = le {
        if !first {
            out.push(',');
        }
        out.push_str("le=\"");
        out.push_str(le);
        out.push('"');
    }
    out.push('}');
}

/// Exposition-format label value escaping: `\` → `\\`, `"` → `\"`,
/// newline → `\n`.
fn escape_label_value(v: &str, out: &mut String) {
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
}

/// `.` → `_`: registry names are dotted `[a-z0-9_.]`, so the result is a
/// valid exposition metric name.
fn sanitize(name: &str) -> String {
    name.replace('.', "_")
}

/// Sample value formatting: plain decimal (Rust's shortest round-trip
/// `Display`, never scientific), with the spec spellings for the
/// non-finite values.
fn fmt_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

// ---------------------------------------------------------------------------
// Parsing / validation
// ---------------------------------------------------------------------------

/// One parsed sample line.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Full sample name (`serve_http_requests_total`,
    /// `serve_request_seconds_bucket`, …).
    pub name: String,
    /// Label pairs in source order (including `le` for buckets).
    pub labels: Vec<(String, String)>,
    /// The sample value.
    pub value: f64,
}

impl Sample {
    /// Fetch a label by name.
    pub fn label(&self, name: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// One `# TYPE` family and the samples that followed it.
#[derive(Debug, Clone, PartialEq)]
pub struct Family {
    /// The family name from the `# TYPE` line.
    pub name: String,
    /// `counter`, `gauge`, `histogram`, `summary`, or `untyped`.
    pub kind: String,
    /// Samples, in source order.
    pub samples: Vec<Sample>,
}

/// Parse and validate an exposition document. Returns the families, or
/// the first conformance violation found. Validations: `# TYPE` syntax
/// and known kinds; metric/label name character sets; every sample
/// belonging to the family announced above it; no duplicate series;
/// counter values finite and non-negative; histogram buckets cumulative
/// (non-decreasing with increasing `le`), terminated by `le="+Inf"`,
/// with `_count` equal to the `+Inf` bucket.
pub fn parse(text: &str) -> Result<Vec<Family>, String> {
    let mut families: Vec<Family> = Vec::new();
    let mut seen_types: BTreeSet<String> = BTreeSet::new();
    let mut seen_series: BTreeSet<String> = BTreeSet::new();
    for (lineno, line) in text.lines().enumerate() {
        let n = lineno + 1;
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts
                .next()
                .ok_or_else(|| format!("line {n}: # TYPE without a name"))?;
            let kind = parts
                .next()
                .ok_or_else(|| format!("line {n}: # TYPE {name} without a kind"))?;
            if parts.next().is_some() {
                return Err(format!("line {n}: trailing tokens after # TYPE"));
            }
            check_metric_name(name).map_err(|e| format!("line {n}: {e}"))?;
            if !["counter", "gauge", "histogram", "summary", "untyped"].contains(&kind) {
                return Err(format!("line {n}: unknown TYPE kind {kind:?}"));
            }
            if !seen_types.insert(name.to_string()) {
                return Err(format!("line {n}: duplicate # TYPE for {name}"));
            }
            families.push(Family {
                name: name.to_string(),
                kind: kind.to_string(),
                samples: Vec::new(),
            });
            continue;
        }
        if line.starts_with('#') {
            continue; // HELP or comment
        }
        let sample = parse_sample(line).map_err(|e| format!("line {n}: {e}"))?;
        let family = families
            .last_mut()
            .ok_or_else(|| format!("line {n}: sample before any # TYPE"))?;
        let belongs = if family.kind == "histogram" {
            sample.name == format!("{}_bucket", family.name)
                || sample.name == format!("{}_sum", family.name)
                || sample.name == format!("{}_count", family.name)
        } else {
            sample.name == family.name
        };
        if !belongs {
            return Err(format!(
                "line {n}: sample {} does not belong to family {} ({})",
                sample.name, family.name, family.kind
            ));
        }
        let series_key = format!("{}|{:?}", sample.name, sample.labels);
        if !seen_series.insert(series_key) {
            return Err(format!("line {n}: duplicate series {}", sample.name));
        }
        if family.kind == "counter" && !(sample.value.is_finite() && sample.value >= 0.0) {
            return Err(format!(
                "line {n}: counter {} has non-monotonic value {}",
                sample.name, sample.value
            ));
        }
        family.samples.push(sample);
    }
    for family in &families {
        if family.kind == "histogram" {
            validate_histogram(family)?;
        }
    }
    Ok(families)
}

/// One histogram series grouped by base label set: `(le, count)` bucket
/// pairs plus the `_sum` and `_count` samples once seen.
type HistSeries = (Vec<(f64, f64)>, Option<f64>, Option<f64>);

/// Check every histogram invariant for one family: buckets cumulative,
/// `+Inf` present, `_count` == `+Inf`, `_sum` present per series.
fn validate_histogram(family: &Family) -> Result<(), String> {
    // Group by the label set minus `le`.
    let mut series: BTreeMap<String, HistSeries> = BTreeMap::new();
    let bucket_name = format!("{}_bucket", family.name);
    let sum_name = format!("{}_sum", family.name);
    let count_name = format!("{}_count", family.name);
    for s in &family.samples {
        let base: Vec<&(String, String)> = s.labels.iter().filter(|(k, _)| k != "le").collect();
        let key = format!("{base:?}");
        let entry = series.entry(key).or_default();
        if s.name == bucket_name {
            let le = s
                .label("le")
                .ok_or_else(|| format!("{}: bucket without le", family.name))?;
            let le = parse_value(le).map_err(|e| format!("{}: bad le: {e}", family.name))?;
            entry.0.push((le, s.value));
        } else if s.name == sum_name {
            entry.1 = Some(s.value);
        } else if s.name == count_name {
            entry.2 = Some(s.value);
        }
    }
    for (key, (mut buckets, sum, count)) in series {
        if buckets.is_empty() {
            return Err(format!("{} {key}: no buckets", family.name));
        }
        buckets.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("le is never NaN"));
        let last = buckets.last().expect("non-empty");
        if last.0 != f64::INFINITY {
            return Err(format!("{} {key}: missing le=\"+Inf\" bucket", family.name));
        }
        for w in buckets.windows(2) {
            if w[1].1 < w[0].1 {
                return Err(format!(
                    "{} {key}: bucket counts not cumulative ({} after {})",
                    family.name, w[1].1, w[0].1
                ));
            }
        }
        let count = count.ok_or_else(|| format!("{} {key}: missing _count sample", family.name))?;
        if count != last.1 {
            return Err(format!(
                "{} {key}: _count {} disagrees with +Inf bucket {}",
                family.name, count, last.1
            ));
        }
        if sum.is_none() {
            return Err(format!("{} {key}: missing _sum sample", family.name));
        }
    }
    Ok(())
}

/// Parse `name{labels} value` (an optional trailing timestamp is
/// tolerated and ignored).
fn parse_sample(line: &str) -> Result<Sample, String> {
    let (name, rest) = match line.find(['{', ' ']) {
        Some(pos) => (&line[..pos], &line[pos..]),
        None => return Err(format!("unparseable sample line {line:?}")),
    };
    check_metric_name(name)?;
    let (labels, rest) = if let Some(body) = rest.strip_prefix('{') {
        parse_labels(body)?
    } else {
        (Vec::new(), rest)
    };
    let mut parts = rest.split_whitespace();
    let value = parts
        .next()
        .ok_or_else(|| format!("sample {name} has no value"))?;
    let value = parse_value(value)?;
    if let Some(ts) = parts.next() {
        // An optional timestamp is integer milliseconds.
        ts.parse::<i64>()
            .map_err(|_| format!("sample {name}: bad timestamp {ts:?}"))?;
    }
    if parts.next().is_some() {
        return Err(format!("sample {name}: trailing tokens"));
    }
    Ok(Sample {
        name: name.to_string(),
        labels,
        value,
    })
}

/// Parsed label pairs plus the remainder of the line after `}`.
type ParsedLabels<'a> = (Vec<(String, String)>, &'a str);

/// Parse the label body after `{` up to the matching `}`; returns the
/// pairs and the remainder of the line.
fn parse_labels(body: &str) -> Result<ParsedLabels<'_>, String> {
    let mut labels = Vec::new();
    let mut chars = body.char_indices().peekable();
    loop {
        // End of the set (possibly after a trailing comma).
        if let Some(&(i, c)) = chars.peek() {
            if c == '}' {
                return Ok((labels, &body[i + 1..]));
            }
        } else {
            return Err("unterminated label set".to_string());
        }
        // Label name up to '='.
        let mut name = String::new();
        for (_, c) in chars.by_ref() {
            if c == '=' {
                break;
            }
            name.push(c);
        }
        check_label_name(&name)?;
        match chars.next() {
            Some((_, '"')) => {}
            other => {
                return Err(format!(
                    "label {name}: expected opening quote, got {other:?}"
                ))
            }
        }
        // Quoted value with escapes.
        let mut value = String::new();
        loop {
            match chars.next() {
                Some((_, '"')) => break,
                Some((_, '\\')) => match chars.next() {
                    Some((_, '\\')) => value.push('\\'),
                    Some((_, '"')) => value.push('"'),
                    Some((_, 'n')) => value.push('\n'),
                    other => return Err(format!("label {name}: bad escape {other:?}")),
                },
                Some((_, c)) => value.push(c),
                None => return Err(format!("label {name}: unterminated value")),
            }
        }
        labels.push((name, value));
        // Separator: ',' continues, '}' ends.
        match chars.peek() {
            Some(&(_, ',')) => {
                chars.next();
            }
            Some(&(_, '}')) => {}
            other => return Err(format!("expected ',' or '}}' after label, got {other:?}")),
        }
    }
}

fn parse_value(v: &str) -> Result<f64, String> {
    match v {
        "+Inf" | "Inf" => Ok(f64::INFINITY),
        "-Inf" => Ok(f64::NEG_INFINITY),
        "NaN" => Ok(f64::NAN),
        v => v.parse().map_err(|_| format!("bad sample value {v:?}")),
    }
}

fn check_metric_name(name: &str) -> Result<(), String> {
    let mut chars = name.chars();
    let ok_first = chars
        .next()
        .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':');
    if !ok_first || !chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':') {
        return Err(format!("bad metric name {name:?}"));
    }
    Ok(())
}

fn check_label_name(name: &str) -> Result<(), String> {
    let mut chars = name.chars();
    let ok_first = chars
        .next()
        .is_some_and(|c| c.is_ascii_alphabetic() || c == '_');
    if !ok_first || !chars.all(|c| c.is_ascii_alphanumeric() || c == '_') {
        return Err(format!("bad label name {name:?}"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LabelSet;

    fn series(labels: &[(&str, &str)]) -> LabelSet {
        labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect()
    }

    fn demo_snapshot() -> Snapshot {
        let mut snap = Snapshot::default();
        snap.counters.insert("serve.requests".into(), 9);
        snap.labeled_counters.insert(
            "serve.http.requests".into(),
            BTreeMap::from([
                (series(&[("route", "/healthz"), ("status", "200")]), 7),
                (series(&[("route", "/match"), ("status", "422")]), 2),
            ]),
        );
        snap.gauges.insert("serve.workers".into(), 2.0);
        snap.labeled_gauges.insert(
            "serve.loop.connections".into(),
            BTreeMap::from([(series(&[("shard", "0")]), 3.0)]),
        );
        let mut stats = SpanStats::default();
        stats.record(100); // bucket 6
        stats.record(200); // bucket 7
        stats.record(5_000_000_000); // ≥ 2^31: open-ended last bucket
        snap.spans.insert("serve.request".into(), stats);
        let mut lat = SpanStats::default();
        lat.record(1_000); // bucket 9
        snap.labeled_hists.insert(
            "serve.http.latency".into(),
            BTreeMap::from([(series(&[("route", "/healthz")]), lat)]),
        );
        snap
    }

    #[test]
    fn exposition_pins_names_ordering_and_structure() {
        let text = render(&demo_snapshot());
        let lines: Vec<&str> = text.lines().collect();
        // Counters: _total suffix, unlabeled before labeled, sorted series.
        let i = lines
            .iter()
            .position(|l| *l == "# TYPE serve_http_requests_total counter")
            .expect("counter family");
        assert_eq!(
            lines[i + 1],
            "serve_http_requests_total{route=\"/healthz\",status=\"200\"} 7"
        );
        assert_eq!(
            lines[i + 2],
            "serve_http_requests_total{route=\"/match\",status=\"422\"} 2"
        );
        assert!(lines.contains(&"serve_requests_total 9"));
        assert!(lines.contains(&"# TYPE serve_workers gauge"));
        assert!(lines.contains(&"serve_workers 2"));
        assert!(lines.contains(&"serve_loop_connections{shard=\"0\"} 3"));
        // Histogram: cumulative buckets, open-ended tail in +Inf only.
        assert!(lines.contains(&"# TYPE serve_request_seconds histogram"));
        assert!(
            lines.contains(&"serve_request_seconds_bucket{le=\"0.000000128\"} 1"),
            "{text}"
        );
        assert!(lines.contains(&"serve_request_seconds_bucket{le=\"0.000000256\"} 2"));
        assert!(lines.contains(&"serve_request_seconds_bucket{le=\"+Inf\"} 3"));
        assert!(lines.contains(&"serve_request_seconds_count 3"));
        assert!(lines.contains(
            &"serve_http_latency_seconds_bucket{route=\"/healthz\",le=\"0.000001024\"} 1"
        ));
        assert!(lines.contains(&"serve_http_latency_seconds_count{route=\"/healthz\"} 1"));
    }

    #[test]
    fn exposition_escapes_label_values() {
        let mut snap = Snapshot::default();
        snap.labeled_counters.insert(
            "x.weird".into(),
            BTreeMap::from([(series(&[("v", "a\\b\"c\nd")]), 1)]),
        );
        let text = render(&snap);
        assert!(
            text.contains("x_weird_total{v=\"a\\\\b\\\"c\\nd\"} 1"),
            "{text}"
        );
        // And the parser round-trips the escapes back to the raw value.
        let families = parse(&text).expect("parses");
        assert_eq!(families[0].samples[0].label("v"), Some("a\\b\"c\nd"));
    }

    #[test]
    fn renderer_output_passes_the_conformance_parser() {
        let text = render(&demo_snapshot());
        let families = parse(&text).expect("conformant");
        let hist = families
            .iter()
            .find(|f| f.name == "serve_request_seconds")
            .expect("histogram family");
        assert_eq!(hist.kind, "histogram");
        // _sum is 5.0000003 seconds, parsed back as a plain float.
        let sum = hist
            .samples
            .iter()
            .find(|s| s.name == "serve_request_seconds_sum")
            .expect("sum");
        assert!((sum.value - 5.0000003).abs() < 1e-9, "{}", sum.value);
    }

    #[test]
    fn parser_rejects_non_cumulative_buckets() {
        let bad = "# TYPE h histogram\n\
                   h_bucket{le=\"1\"} 5\n\
                   h_bucket{le=\"2\"} 3\n\
                   h_bucket{le=\"+Inf\"} 5\n\
                   h_sum 1\n\
                   h_count 5\n";
        let err = parse(bad).expect_err("non-cumulative");
        assert!(err.contains("not cumulative"), "{err}");
    }

    #[test]
    fn parser_rejects_missing_inf_and_count_mismatch() {
        let no_inf = "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_sum 1\nh_count 5\n";
        assert!(parse(no_inf).expect_err("no inf").contains("+Inf"));
        let mismatch = "# TYPE h histogram\n\
                        h_bucket{le=\"+Inf\"} 5\n\
                        h_sum 1\n\
                        h_count 4\n";
        assert!(parse(mismatch).expect_err("mismatch").contains("disagrees"));
    }

    #[test]
    fn parser_rejects_duplicates_strays_and_garbage() {
        let dup = "# TYPE c counter\nc 1\nc 2\n";
        assert!(parse(dup).expect_err("dup").contains("duplicate series"));
        let stray = "# TYPE c counter\nother 1\n";
        assert!(parse(stray).expect_err("stray").contains("does not belong"));
        let orphan = "c 1\n";
        assert!(parse(orphan).expect_err("orphan").contains("before any"));
        let garbage = "# TYPE c counter\nc{=\"x\"} 1\n";
        assert!(parse(garbage).is_err());
        let negative = "# TYPE c counter\nc -1\n";
        assert!(parse(negative).expect_err("negative").contains("monotonic"));
    }

    #[test]
    fn parser_accepts_help_comments_and_timestamps() {
        let text =
            "# HELP c says things\n# TYPE c counter\n# a comment\nc{a=\"b\"} 3 1700000000000\n";
        let families = parse(text).expect("parses");
        assert_eq!(families.len(), 1);
        assert_eq!(families[0].samples[0].value, 3.0);
    }
}
