//! Lightweight observability: spans, counters, gauges (std-only, zero
//! external dependencies).
//!
//! Every hot path in the workspace reports *what it did* through this
//! crate — how long each stage took ([`span`]), how many items it
//! processed ([`counter_add`]), and point-in-time measurements
//! ([`gauge_set`] / [`gauge_add`]). The design constraints, in order:
//!
//! 1. **True no-op when disabled.** The registry is gated on one
//!    `AtomicBool`; every recording call starts with a relaxed load and
//!    returns immediately when metrics are off. Hot loops never pay more
//!    than that load (verified against the `p2_autolf_grid` bench), and
//!    callers that would need to `format!` a dynamic name must guard on
//!    [`enabled`] so the disabled path allocates nothing.
//! 2. **Thread-safe aggregation.** Recording happens from the worker
//!    threads of `panda-exec` sections. Aggregates live behind plain
//!    `Mutex<BTreeMap>`s — instrumentation sites are per-stage or
//!    per-section, not per-item, so lock traffic is negligible next to
//!    the work being measured.
//! 3. **Machine- and human-readable exports.** [`snapshot`] freezes the
//!    registry into a [`Snapshot`] that serializes to JSON
//!    ([`Snapshot::to_json`]) for the CLI's `--metrics` flag and the
//!    bench trajectory, and renders as a text report
//!    ([`Snapshot::render`]) for `PANDA_LOG=summary|spans`.
//!
//! The registry is process-global: a session's stages (blocking, auto-LF
//! grid, matrix apply, EM fits) all land in one snapshot, keyed by
//! dotted names (`"autolf.score_grid"`, `"model.panda.em_iters.snorkel"`).
//! Call [`reset`] between runs that must not share aggregates.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::Instant;

/// Environment variable selecting the end-of-run report
/// (`summary` or `spans`). Any other value (or unset) means no report.
pub const LOG_ENV: &str = "PANDA_LOG";

static ENABLED: AtomicBool = AtomicBool::new(false);

static SPANS: Mutex<BTreeMap<String, SpanStats>> = Mutex::new(BTreeMap::new());
static COUNTERS: Mutex<BTreeMap<String, u64>> = Mutex::new(BTreeMap::new());
static GAUGES: Mutex<BTreeMap<String, f64>> = Mutex::new(BTreeMap::new());

/// Recover the map even if a panic unwound through a recording call
/// (poisoning would otherwise turn one quarantined LF panic into a
/// process-wide metrics outage).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Turn metric recording on or off process-wide.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::SeqCst);
}

/// Is metric recording currently on? Callers building dynamic metric
/// names (`format!`) must check this first so the disabled path stays
/// allocation-free.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Wipe every aggregate (spans, counters, gauges). The enabled flag is
/// left as-is.
pub fn reset() {
    lock(&SPANS).clear();
    lock(&COUNTERS).clear();
    lock(&GAUGES).clear();
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

/// Aggregated wall-time statistics of one named span.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SpanStats {
    /// How many times the span ran.
    pub count: u64,
    /// Total wall time across runs, nanoseconds.
    pub total_ns: u128,
    /// Fastest single run, nanoseconds.
    pub min_ns: u128,
    /// Slowest single run, nanoseconds.
    pub max_ns: u128,
}

impl SpanStats {
    fn record(&mut self, ns: u128) {
        if self.count == 0 {
            self.min_ns = ns;
            self.max_ns = ns;
        } else {
            self.min_ns = self.min_ns.min(ns);
            self.max_ns = self.max_ns.max(ns);
        }
        self.count += 1;
        self.total_ns += ns;
    }
}

/// A scoped timer: created by [`span`], records its wall time into the
/// global registry on drop. When metrics are disabled the guard holds no
/// clock reading and drop does nothing.
#[must_use = "a span records on drop; binding it to `_` drops immediately"]
pub struct Span {
    name: &'static str,
    start: Option<Instant>,
}

impl Span {
    /// End the span explicitly (identical to dropping it).
    pub fn end(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let ns = start.elapsed().as_nanos();
            lock(&SPANS)
                .entry(self.name.to_string())
                .or_default()
                .record(ns);
        }
    }
}

/// Start a scoped timer. `let _span = obs::span("stage.name");` — the
/// elapsed wall time is aggregated under `name` when the guard drops.
#[inline]
pub fn span(name: &'static str) -> Span {
    Span {
        name,
        start: enabled().then(Instant::now),
    }
}

/// Record an already-measured duration under a span name (for call sites
/// that cannot hold a guard across the timed region).
pub fn span_record(name: &str, ns: u128) {
    if !enabled() {
        return;
    }
    let mut map = lock(&SPANS);
    match map.get_mut(name) {
        Some(s) => s.record(ns),
        None => {
            map.entry(name.to_string()).or_default().record(ns);
        }
    }
}

// ---------------------------------------------------------------------------
// Counters and gauges
// ---------------------------------------------------------------------------

/// Add `delta` to the monotonic counter `name`. No-op when disabled.
#[inline]
pub fn counter_add(name: &str, delta: u64) {
    if !enabled() {
        return;
    }
    let mut map = lock(&COUNTERS);
    match map.get_mut(name) {
        Some(v) => *v += delta,
        None => {
            map.insert(name.to_string(), delta);
        }
    }
}

/// Set the gauge `name` to `value` (last write wins). No-op when
/// disabled.
#[inline]
pub fn gauge_set(name: &str, value: f64) {
    if !enabled() {
        return;
    }
    lock(&GAUGES).insert(name.to_string(), value);
}

/// Add `delta` to the gauge `name` (accumulating float measurements,
/// e.g. violation mass absorbed across projection sweeps). No-op when
/// disabled.
#[inline]
pub fn gauge_add(name: &str, delta: f64) {
    if !enabled() {
        return;
    }
    let mut map = lock(&GAUGES);
    match map.get_mut(name) {
        Some(v) => *v += delta,
        None => {
            map.insert(name.to_string(), delta);
        }
    }
}

// ---------------------------------------------------------------------------
// Snapshot
// ---------------------------------------------------------------------------

/// A frozen copy of the registry, for export. Maps are `BTreeMap`s so
/// JSON key order (and therefore diffs of snapshots) is deterministic.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Aggregated span timings by name.
    pub spans: BTreeMap<String, SpanStats>,
    /// Monotonic counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauges by name.
    pub gauges: BTreeMap<String, f64>,
}

/// Freeze the current registry contents into a [`Snapshot`].
pub fn snapshot() -> Snapshot {
    Snapshot {
        spans: lock(&SPANS).clone(),
        counters: lock(&COUNTERS).clone(),
        gauges: lock(&GAUGES).clone(),
    }
}

fn escape_json(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // Bare integers are valid JSON numbers, but keep floats obvious.
        if s.contains('.') || s.contains('e') || s.contains('E') {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        // JSON has no NaN/Inf; null is the conventional stand-in.
        "null".to_string()
    }
}

impl Snapshot {
    /// Serialize to a JSON object:
    ///
    /// ```json
    /// {
    ///   "spans":    { "<name>": { "count": N, "total_ns": N,
    ///                             "min_ns": N, "max_ns": N }, ... },
    ///   "counters": { "<name>": N, ... },
    ///   "gauges":   { "<name>": X, ... }
    /// }
    /// ```
    ///
    /// Durations are integer nanoseconds; gauges are JSON numbers (or
    /// `null` for non-finite values). Keys appear in sorted order.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n  \"spans\": {");
        for (i, (name, s)) in self.spans.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    ");
            escape_json(name, &mut out);
            out.push_str(&format!(
                ": {{\"count\": {}, \"total_ns\": {}, \"min_ns\": {}, \"max_ns\": {}}}",
                s.count, s.total_ns, s.min_ns, s.max_ns
            ));
        }
        out.push_str(if self.spans.is_empty() { "}" } else { "\n  }" });
        out.push_str(",\n  \"counters\": {");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    ");
            escape_json(name, &mut out);
            out.push_str(&format!(": {v}"));
        }
        out.push_str(if self.counters.is_empty() {
            "}"
        } else {
            "\n  }"
        });
        out.push_str(",\n  \"gauges\": {");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    ");
            escape_json(name, &mut out);
            out.push_str(": ");
            out.push_str(&json_f64(*v));
        }
        out.push_str(if self.gauges.is_empty() { "}" } else { "\n  }" });
        out.push_str("\n}\n");
        out
    }

    /// Render a human-readable report. [`LogMode::Summary`] prints
    /// counters, gauges, and each span's count + total; [`LogMode::Spans`]
    /// adds per-span min/mean/max columns.
    pub fn render(&self, mode: LogMode) -> String {
        let mut out = String::new();
        if mode == LogMode::Off {
            return out;
        }
        if !self.spans.is_empty() {
            out.push_str("spans:\n");
            let wide = self.spans.keys().map(|k| k.len()).max().unwrap_or(0);
            for (name, s) in &self.spans {
                let total_ms = s.total_ns as f64 / 1e6;
                match mode {
                    LogMode::Spans => {
                        let mean_ms = total_ms / s.count.max(1) as f64;
                        out.push_str(&format!(
                            "  {name:<wide$}  n={:<6} total={:>10.3}ms  min={:>9.3}ms  mean={:>9.3}ms  max={:>9.3}ms\n",
                            s.count,
                            total_ms,
                            s.min_ns as f64 / 1e6,
                            mean_ms,
                            s.max_ns as f64 / 1e6,
                        ));
                    }
                    _ => {
                        out.push_str(&format!(
                            "  {name:<wide$}  n={:<6} total={:>10.3}ms\n",
                            s.count, total_ms
                        ));
                    }
                }
            }
        }
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            let wide = self.counters.keys().map(|k| k.len()).max().unwrap_or(0);
            for (name, v) in &self.counters {
                out.push_str(&format!("  {name:<wide$}  {v}\n"));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            let wide = self.gauges.keys().map(|k| k.len()).max().unwrap_or(0);
            for (name, v) in &self.gauges {
                out.push_str(&format!("  {name:<wide$}  {v:.6}\n"));
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// PANDA_LOG
// ---------------------------------------------------------------------------

/// The end-of-run report style requested via `PANDA_LOG`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogMode {
    /// No report.
    Off,
    /// Counters, gauges, and span counts/totals.
    Summary,
    /// Everything in `Summary` plus per-span min/mean/max.
    Spans,
}

/// Parse `PANDA_LOG` (read on every call — cheap, and tests can vary
/// it). Unknown values mean [`LogMode::Off`].
pub fn log_mode() -> LogMode {
    match std::env::var(LOG_ENV).as_deref() {
        Ok("summary") => LogMode::Summary,
        Ok("spans") => LogMode::Spans,
        _ => LogMode::Off,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The registry is process-global; tests that assert exact contents
    /// serialize on this and reset() first.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_records_nothing() {
        let _g = lock(&TEST_LOCK);
        set_enabled(false);
        reset();
        {
            let _s = span("off.stage");
        }
        counter_add("off.count", 5);
        gauge_set("off.gauge", 1.0);
        gauge_add("off.gauge", 1.0);
        span_record("off.manual", 1000);
        let snap = snapshot();
        assert!(snap.spans.is_empty());
        assert!(snap.counters.is_empty());
        assert!(snap.gauges.is_empty());
    }

    #[test]
    fn spans_aggregate_count_total_min_max() {
        let _g = lock(&TEST_LOCK);
        set_enabled(true);
        reset();
        span_record("stage.a", 100);
        span_record("stage.a", 300);
        span_record("stage.a", 200);
        {
            let _s = span("stage.b"); // real timer: nonzero elapsed
        }
        let snap = snapshot();
        set_enabled(false);
        let a = &snap.spans["stage.a"];
        assert_eq!(a.count, 3);
        assert_eq!(a.total_ns, 600);
        assert_eq!(a.min_ns, 100);
        assert_eq!(a.max_ns, 300);
        let b = &snap.spans["stage.b"];
        assert_eq!(b.count, 1);
        assert!(b.total_ns > 0);
        assert_eq!(b.min_ns, b.max_ns);
    }

    #[test]
    fn counters_and_gauges_accumulate() {
        let _g = lock(&TEST_LOCK);
        set_enabled(true);
        reset();
        counter_add("c.items", 3);
        counter_add("c.items", 4);
        gauge_set("g.last", 1.5);
        gauge_set("g.last", 2.5);
        gauge_add("g.sum", 1.0);
        gauge_add("g.sum", 0.25);
        let snap = snapshot();
        set_enabled(false);
        assert_eq!(snap.counters["c.items"], 7);
        assert_eq!(snap.gauges["g.last"], 2.5);
        assert_eq!(snap.gauges["g.sum"], 1.25);
    }

    #[test]
    fn recording_is_thread_safe() {
        let _g = lock(&TEST_LOCK);
        set_enabled(true);
        reset();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        counter_add("t.hits", 1);
                        span_record("t.span", 10);
                    }
                });
            }
        });
        let snap = snapshot();
        set_enabled(false);
        assert_eq!(snap.counters["t.hits"], 4000);
        assert_eq!(snap.spans["t.span"].count, 4000);
        assert_eq!(snap.spans["t.span"].total_ns, 40_000);
    }

    #[test]
    fn json_shape_and_escaping() {
        let _g = lock(&TEST_LOCK);
        set_enabled(true);
        reset();
        span_record("stage.grid", 1_000_000);
        counter_add("em.iters", 42);
        gauge_set("score \"q\"", 0.5);
        gauge_set("bad", f64::NAN);
        let json = snapshot().to_json();
        set_enabled(false);
        assert!(json.contains("\"spans\""));
        assert!(json.contains("\"stage.grid\": {\"count\": 1, \"total_ns\": 1000000"));
        assert!(json.contains("\"em.iters\": 42"));
        assert!(json.contains("\"score \\\"q\\\"\": 0.5"));
        assert!(json.contains("\"bad\": null"));
        // Balanced braces — the cheapest structural sanity check without
        // pulling a parser into a zero-dependency crate (the workspace
        // integration test round-trips it through serde_json).
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
    }

    #[test]
    fn empty_snapshot_is_valid_json() {
        let snap = Snapshot::default();
        let json = snap.to_json();
        assert!(json.contains("\"spans\": {}"));
        assert!(json.contains("\"counters\": {}"));
        assert!(json.contains("\"gauges\": {}"));
    }

    #[test]
    fn render_modes() {
        let mut snap = Snapshot::default();
        snap.spans.insert(
            "stage.x".into(),
            SpanStats {
                count: 2,
                total_ns: 3_000_000,
                min_ns: 1_000_000,
                max_ns: 2_000_000,
            },
        );
        snap.counters.insert("c".into(), 7);
        snap.gauges.insert("g".into(), 0.5);
        assert!(snap.render(LogMode::Off).is_empty());
        let summary = snap.render(LogMode::Summary);
        assert!(summary.contains("stage.x"));
        assert!(summary.contains("counters:"));
        assert!(!summary.contains("mean="));
        let spans = snap.render(LogMode::Spans);
        assert!(spans.contains("mean="));
        assert!(spans.contains("min="));
    }

    #[test]
    fn reset_clears_everything() {
        let _g = lock(&TEST_LOCK);
        set_enabled(true);
        counter_add("will.vanish", 1);
        reset();
        let snap = snapshot();
        set_enabled(false);
        assert!(snap.counters.is_empty());
    }

    #[test]
    fn log_mode_parses_env() {
        // Serialized with the registry lock: env is process-global too.
        let _g = lock(&TEST_LOCK);
        std::env::remove_var(LOG_ENV);
        assert_eq!(log_mode(), LogMode::Off);
        std::env::set_var(LOG_ENV, "summary");
        assert_eq!(log_mode(), LogMode::Summary);
        std::env::set_var(LOG_ENV, "spans");
        assert_eq!(log_mode(), LogMode::Spans);
        std::env::set_var(LOG_ENV, "nonsense");
        assert_eq!(log_mode(), LogMode::Off);
        std::env::remove_var(LOG_ENV);
    }
}
