//! Lightweight observability: spans, counters, gauges, and a structured
//! run journal (std-only, zero external dependencies).
//!
//! Every hot path in the workspace reports *what it did* through this
//! crate — how long each stage took ([`span`]), how many items it
//! processed ([`counter_add`]), point-in-time measurements
//! ([`gauge_set`] / [`gauge_add`]), and, when the journal is on, a
//! stream of structured provenance events ([`event`]) that records what
//! happened *during* the run (per-EM-iteration state, auto-LF grid
//! decisions, per-LF disagreement structure). The design constraints,
//! in order:
//!
//! 1. **True no-op when disabled.** Both recording layers are gated on
//!    one `AtomicU8` bitmask; every recording call starts with a single
//!    relaxed load and returns immediately when its bit is off. Hot
//!    loops never pay more than that load (verified against the
//!    `p2_autolf_grid` bench), and callers that would need to `format!`
//!    a dynamic name or compute a diagnostic (e.g. a log-likelihood)
//!    must guard on [`enabled`] / [`journal_enabled`] so the disabled
//!    path allocates and computes nothing.
//! 2. **Thread-safe aggregation.** Recording happens from the worker
//!    threads of `panda-exec` sections. Aggregates and the journal live
//!    behind plain `Mutex`es — instrumentation sites are per-stage or
//!    per-decision, not per-item, so lock traffic is negligible next to
//!    the work being measured. The journal is *bounded*
//!    ([`set_journal_capacity`]): a runaway loop fills it up and
//!    increments a drop counter instead of exhausting memory.
//! 3. **Machine- and human-readable exports.** [`snapshot`] freezes the
//!    aggregate registry into a [`Snapshot`] that serializes to JSON
//!    ([`Snapshot::to_json`]) for the CLI's `--metrics` flag and the
//!    bench trajectory, and renders as a text report
//!    ([`Snapshot::render`]) for `PANDA_LOG=summary|spans`.
//!    [`journal_drain`] hands the event stream to the CLI's `--journal`
//!    flag, which frames it as JSONL (one [`Event`] object per line,
//!    see [`Event::to_json_line`]) for `panda report` and offline
//!    triage.
//!
//! # Metric naming convention
//!
//! Every registered name — span, counter, gauge, and journal event kind
//! alike — is **dotted lower-case**: `<crate>.<stage>[.<variant>]`,
//! where each `.`-separated segment matches `[a-z0-9_]+` and there are
//! at least two segments. The first segment names the owning subsystem
//! (`exec`, `text`, `blocking`, `autolf`, `lf`, `model`, `session`),
//! the second the stage or object (`score_grid`, `matrix`, `panda`),
//! and further segments narrow to a variant (`em_iters.smoothed`).
//! [`is_valid_metric_name`] checks conformance; the workspace
//! integration test asserts it over every name a full pipeline run
//! registers, so misnamed metrics fail CI instead of polluting
//! dashboards.
//!
//! The registry is process-global: a session's stages (blocking, auto-LF
//! grid, matrix apply, EM fits) all land in one snapshot, keyed by
//! dotted names (`"autolf.score_grid"`, `"model.panda.em_iters.snorkel"`).
//! Call [`reset`] between runs that must not share aggregates — it also
//! clears the journal.

use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::Instant;

pub mod prom;

/// Environment variable selecting the end-of-run report
/// (`summary` or `spans`). Any other value (or unset) means no report.
pub const LOG_ENV: &str = "PANDA_LOG";

/// Bit 0 of [`FLAGS`]: aggregate metrics (spans/counters/gauges) on.
const METRICS_BIT: u8 = 1;
/// Bit 1 of [`FLAGS`]: the structured event journal on.
const JOURNAL_BIT: u8 = 2;

/// One atomic carries both switches so the fully-disabled fast path —
/// the only path benchmarks ever see — is a single relaxed load.
static FLAGS: AtomicU8 = AtomicU8::new(0);

static SPANS: Mutex<BTreeMap<String, SpanStats>> = Mutex::new(BTreeMap::new());
static COUNTERS: Mutex<BTreeMap<String, u64>> = Mutex::new(BTreeMap::new());
static GAUGES: Mutex<BTreeMap<String, f64>> = Mutex::new(BTreeMap::new());

/// One series' identity inside a labeled family: `(key, value)` pairs,
/// sorted by key (the recording APIs normalize, so `[("a","1"),("b","2")]`
/// and `[("b","2"),("a","1")]` are the same series).
pub type LabelSet = Vec<(String, String)>;

static LABELED_COUNTERS: Mutex<BTreeMap<String, BTreeMap<LabelSet, u64>>> =
    Mutex::new(BTreeMap::new());
static LABELED_GAUGES: Mutex<BTreeMap<String, BTreeMap<LabelSet, f64>>> =
    Mutex::new(BTreeMap::new());
static LABELED_HISTS: Mutex<BTreeMap<String, BTreeMap<LabelSet, SpanStats>>> =
    Mutex::new(BTreeMap::new());

/// Recover the map even if a panic unwound through a recording call
/// (poisoning would otherwise turn one quarantined LF panic into a
/// process-wide metrics outage).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

#[inline]
fn flags() -> u8 {
    FLAGS.load(Ordering::Relaxed)
}

/// Turn aggregate metric recording on or off process-wide.
pub fn set_enabled(on: bool) {
    if on {
        FLAGS.fetch_or(METRICS_BIT, Ordering::SeqCst);
    } else {
        FLAGS.fetch_and(!METRICS_BIT, Ordering::SeqCst);
    }
}

/// Is aggregate metric recording currently on? Callers building dynamic
/// metric names (`format!`) must check this first so the disabled path
/// stays allocation-free.
#[inline]
pub fn enabled() -> bool {
    flags() & METRICS_BIT != 0
}

/// Turn the structured event journal on or off process-wide. The first
/// enable pins the journal epoch: event timestamps ([`Event::ts_us`])
/// count microseconds from that moment.
pub fn set_journal_enabled(on: bool) {
    if on {
        let mut j = lock(&JOURNAL);
        if j.epoch.is_none() {
            j.epoch = Some(Instant::now());
        }
        drop(j);
        FLAGS.fetch_or(JOURNAL_BIT, Ordering::SeqCst);
    } else {
        FLAGS.fetch_and(!JOURNAL_BIT, Ordering::SeqCst);
    }
}

/// Is the event journal currently on? Callers computing journal-only
/// diagnostics (log-likelihoods, per-cell summaries) must check this
/// first so the disabled path computes nothing.
#[inline]
pub fn journal_enabled() -> bool {
    flags() & JOURNAL_BIT != 0
}

/// Wipe every aggregate (spans, counters, gauges) AND the journal
/// (events, drop counter, sequence numbers). The enabled flags are left
/// as-is. Call between runs that must not share state — e.g. at the top
/// of each experiment binary, so back-to-back invocations in one
/// process cannot bleed into each other's `<id>.metrics.json`.
pub fn reset() {
    lock(&SPANS).clear();
    lock(&COUNTERS).clear();
    lock(&GAUGES).clear();
    lock(&LABELED_COUNTERS).clear();
    lock(&LABELED_GAUGES).clear();
    lock(&LABELED_HISTS).clear();
    let mut j = lock(&JOURNAL);
    j.events.clear();
    j.dropped = 0;
    j.next_seq = 0;
    j.epoch = None;
}

/// Check a metric/event name against the workspace convention:
/// `<crate>.<stage>[.<variant>]` — two or more non-empty
/// `.`-separated segments of `[a-z0-9_]+`.
pub fn is_valid_metric_name(name: &str) -> bool {
    let mut segments = 0usize;
    for seg in name.split('.') {
        if seg.is_empty()
            || !seg
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
        {
            return false;
        }
        segments += 1;
    }
    segments >= 2
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

/// Number of log₂ duration buckets per span histogram. Bucket `b` counts
/// runs with `ns ∈ [2^b, 2^(b+1))` (bucket 0 also holds 0 ns; the last
/// bucket holds everything ≥ 2^31 ns ≈ 2.1 s).
pub const HIST_BUCKETS: usize = 32;

/// The log₂ bucket index of a duration.
#[inline]
fn hist_bucket(ns: u128) -> usize {
    if ns == 0 {
        0
    } else {
        ((127 - ns.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
    }
}

/// Aggregated wall-time statistics of one named span.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SpanStats {
    /// How many times the span ran.
    pub count: u64,
    /// Total wall time across runs, nanoseconds.
    pub total_ns: u128,
    /// Fastest single run, nanoseconds.
    pub min_ns: u128,
    /// Slowest single run, nanoseconds.
    pub max_ns: u128,
    /// Log₂-bucketed duration histogram: `hist[b]` counts runs with
    /// `ns ∈ [2^b, 2^(b+1))`. Together with min/max this shows the
    /// *shape* of a span's timing (bimodal cache hit/miss, one slow
    /// outlier vs uniformly slow) that aggregates alone hide.
    pub hist: [u64; HIST_BUCKETS],
}

impl SpanStats {
    fn record(&mut self, ns: u128) {
        if self.count == 0 {
            self.min_ns = ns;
            self.max_ns = ns;
        } else {
            self.min_ns = self.min_ns.min(ns);
            self.max_ns = self.max_ns.max(ns);
        }
        self.count += 1;
        self.total_ns += ns;
        self.hist[hist_bucket(ns)] += 1;
    }

    /// Render the histogram as a sparkline over the occupied bucket
    /// range (`▁`–`█` scaled to the largest bucket), or an empty string
    /// for an empty histogram.
    pub fn sparkline(&self) -> String {
        sparkline(&self.hist)
    }
}

/// Sparkline over the non-empty range of a bucket vector.
pub fn sparkline(buckets: &[u64]) -> String {
    const BLOCKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let Some(first) = buckets.iter().position(|&c| c > 0) else {
        return String::new();
    };
    let last = buckets.iter().rposition(|&c| c > 0).unwrap_or(first);
    let peak = buckets[first..=last].iter().copied().max().unwrap_or(1);
    buckets[first..=last]
        .iter()
        .map(|&c| {
            if c == 0 {
                ' '
            } else {
                // Non-empty buckets always render at least `▁`.
                let level = (c * 8).div_ceil(peak).clamp(1, 8) as usize;
                BLOCKS[level - 1]
            }
        })
        .collect()
}

thread_local! {
    /// The stack of open journal span ids on this thread; the top is the
    /// parent of any span or event created next. Worker threads start
    /// with an empty stack, so their events parent to the root (id 0).
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// Journal span ids, process-wide and never reused (0 = "no span").
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

/// A scoped timer: created by [`span`], records its wall time into the
/// global registry on drop. When metrics are disabled the guard holds no
/// clock reading and drop does nothing. When the journal is on, the
/// guard also owns a span id (pushed on a thread-local parent stack) and
/// emits a `span` event with its name, duration, id, and parent id on
/// drop — the raw material `panda report` rebuilds the span tree from.
#[must_use = "a span records on drop; binding it to `_` drops immediately"]
pub struct Span {
    name: &'static str,
    start: Option<Instant>,
    /// Record into the aggregate registry on drop?
    metrics: bool,
    /// `(id, parent id)` when the journal was on at creation.
    journal: Option<(u64, u64)>,
}

impl Span {
    /// End the span explicitly (identical to dropping it).
    pub fn end(self) {}

    /// This span's journal id (0 when the journal is off).
    pub fn id(&self) -> u64 {
        self.journal.map(|(id, _)| id).unwrap_or(0)
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let ns = start.elapsed().as_nanos();
        if self.metrics {
            lock(&SPANS)
                .entry(self.name.to_string())
                .or_default()
                .record(ns);
        }
        if let Some((id, parent)) = self.journal {
            SPAN_STACK.with(|s| {
                let mut s = s.borrow_mut();
                // Pop our own id; a panic unwinding through nested spans
                // drops them innermost-first, so the top is ours.
                if s.last() == Some(&id) {
                    s.pop();
                }
            });
            push_event(Event {
                seq: 0,
                ts_us: 0,
                kind: "span".to_string(),
                span: id,
                parent,
                fields: vec![
                    ("name".to_string(), FieldValue::from(self.name)),
                    ("dur_ns".to_string(), FieldValue::U64(ns as u64)),
                ],
            });
        }
    }
}

/// Start a scoped timer. `let _span = obs::span("stage.name");` — the
/// elapsed wall time is aggregated under `name` when the guard drops.
#[inline]
pub fn span(name: &'static str) -> Span {
    let f = flags();
    if f == 0 {
        return Span {
            name,
            start: None,
            metrics: false,
            journal: None,
        };
    }
    let journal = (f & JOURNAL_BIT != 0).then(|| {
        let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
        let parent = SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            let parent = s.last().copied().unwrap_or(0);
            s.push(id);
            parent
        });
        (id, parent)
    });
    Span {
        name,
        start: Some(Instant::now()),
        metrics: f & METRICS_BIT != 0,
        journal,
    }
}

/// Record an already-measured duration under a span name (for call sites
/// that cannot hold a guard across the timed region).
pub fn span_record(name: &str, ns: u128) {
    if !enabled() {
        return;
    }
    let mut map = lock(&SPANS);
    match map.get_mut(name) {
        Some(s) => s.record(ns),
        None => {
            map.entry(name.to_string()).or_default().record(ns);
        }
    }
}

// ---------------------------------------------------------------------------
// Counters and gauges
// ---------------------------------------------------------------------------

/// Add `delta` to the monotonic counter `name`. No-op when disabled.
#[inline]
pub fn counter_add(name: &str, delta: u64) {
    if !enabled() {
        return;
    }
    let mut map = lock(&COUNTERS);
    match map.get_mut(name) {
        Some(v) => *v += delta,
        None => {
            map.insert(name.to_string(), delta);
        }
    }
}

/// Set the gauge `name` to `value` (last write wins). No-op when
/// disabled.
#[inline]
pub fn gauge_set(name: &str, value: f64) {
    if !enabled() {
        return;
    }
    lock(&GAUGES).insert(name.to_string(), value);
}

/// Add `delta` to the gauge `name` (accumulating float measurements,
/// e.g. violation mass absorbed across projection sweeps). No-op when
/// disabled.
#[inline]
pub fn gauge_add(name: &str, delta: f64) {
    if !enabled() {
        return;
    }
    let mut map = lock(&GAUGES);
    match map.get_mut(name) {
        Some(v) => *v += delta,
        None => {
            map.insert(name.to_string(), delta);
        }
    }
}

// ---------------------------------------------------------------------------
// Labeled (dimensional) metrics
// ---------------------------------------------------------------------------
//
// A thin dimensional layer over the same registry discipline: one family
// per dotted name, one series per sorted `(key, value)` label set. Label
// *keys* come from a small fixed vocabulary at each call site (`route`,
// `status`, `shard`); label *values* must be low-cardinality — route
// patterns, status codes, shard indices — never raw paths, session ids,
// or user input, or the registry becomes an unbounded memory leak. The
// disabled path is the same single relaxed load as the unlabeled APIs.

/// Normalize a call-site label slice into the canonical sorted form.
fn label_set(labels: &[(&str, &str)]) -> LabelSet {
    let mut set: LabelSet = labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    set.sort();
    set
}

/// Add `delta` to the labeled counter series `name{labels}`. No-op when
/// disabled.
#[inline]
pub fn counter_add_labeled(name: &str, labels: &[(&str, &str)], delta: u64) {
    if !enabled() {
        return;
    }
    let set = label_set(labels);
    let mut map = lock(&LABELED_COUNTERS);
    if !map.contains_key(name) {
        map.insert(name.to_string(), BTreeMap::new());
    }
    let family = map.get_mut(name).expect("family ensured above");
    *family.entry(set).or_insert(0) += delta;
}

/// Set the labeled gauge series `name{labels}` (last write wins). No-op
/// when disabled.
#[inline]
pub fn gauge_set_labeled(name: &str, labels: &[(&str, &str)], value: f64) {
    if !enabled() {
        return;
    }
    let set = label_set(labels);
    let mut map = lock(&LABELED_GAUGES);
    if !map.contains_key(name) {
        map.insert(name.to_string(), BTreeMap::new());
    }
    let family = map.get_mut(name).expect("family ensured above");
    family.insert(set, value);
}

/// Add `delta` to the labeled gauge series `name{labels}`. No-op when
/// disabled.
#[inline]
pub fn gauge_add_labeled(name: &str, labels: &[(&str, &str)], delta: f64) {
    if !enabled() {
        return;
    }
    let set = label_set(labels);
    let mut map = lock(&LABELED_GAUGES);
    if !map.contains_key(name) {
        map.insert(name.to_string(), BTreeMap::new());
    }
    let family = map.get_mut(name).expect("family ensured above");
    *family.entry(set).or_insert(0.0) += delta;
}

/// Record one observation into the labeled log₂ histogram series
/// `name{labels}`. The value is conventionally nanoseconds (latency
/// series), but any magnitude works — e.g. requests-served-per-connection
/// for the keep-alive reuse histogram. No-op when disabled.
#[inline]
pub fn hist_record_labeled(name: &str, labels: &[(&str, &str)], value: u128) {
    if !enabled() {
        return;
    }
    let set = label_set(labels);
    let mut map = lock(&LABELED_HISTS);
    if !map.contains_key(name) {
        map.insert(name.to_string(), BTreeMap::new());
    }
    let family = map.get_mut(name).expect("family ensured above");
    family.entry(set).or_default().record(value);
}

// ---------------------------------------------------------------------------
// The event journal
// ---------------------------------------------------------------------------

/// Default journal bound: generous for real runs (a full pipeline run
/// emits a few thousand events) while capping a runaway loop's memory.
pub const DEFAULT_JOURNAL_CAPACITY: usize = 1 << 18;

/// One typed event field value.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer.
    U64(u64),
    /// Floating point (serialized as `null` when non-finite).
    F64(f64),
    /// String.
    Str(String),
}

impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}
impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}
impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}
impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}
impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

/// One structured journal event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Monotonic sequence number (process-wide order of emission; gaps
    /// mean events were dropped at the capacity bound).
    pub seq: u64,
    /// Microseconds since the journal epoch (first
    /// [`set_journal_enabled`]`(true)`).
    pub ts_us: u64,
    /// Event kind, dotted lower-case (`model.em.iter`, `autolf.cell`,
    /// `span`).
    pub kind: String,
    /// For `span` events: this span's id. 0 otherwise.
    pub span: u64,
    /// The enclosing span's id on the emitting thread (0 = root).
    pub parent: u64,
    /// Typed key-value payload, in emission order.
    pub fields: Vec<(String, FieldValue)>,
}

impl Event {
    /// Fetch a field by key.
    pub fn field(&self, key: &str) -> Option<&FieldValue> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Serialize as one JSONL line (no trailing newline):
    ///
    /// ```json
    /// {"seq":3,"ts_us":1042,"kind":"span","span":7,"parent":2,"fields":{"name":"autolf.select","dur_ns":81920}}
    /// ```
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(96);
        out.push_str(&format!(
            "{{\"seq\":{},\"ts_us\":{},\"kind\":",
            self.seq, self.ts_us
        ));
        escape_json(&self.kind, &mut out);
        out.push_str(&format!(
            ",\"span\":{},\"parent\":{},\"fields\":{{",
            self.span, self.parent
        ));
        for (i, (k, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            escape_json(k, &mut out);
            out.push(':');
            match v {
                FieldValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
                FieldValue::I64(x) => out.push_str(&x.to_string()),
                FieldValue::U64(x) => out.push_str(&x.to_string()),
                FieldValue::F64(x) => out.push_str(&json_f64(*x)),
                FieldValue::Str(s) => escape_json(s, &mut out),
            }
        }
        out.push_str("}}");
        out
    }
}

/// The journal is a **drop-oldest ring**: at the capacity bound the
/// oldest buffered event is evicted (and counted in `dropped`) to make
/// room for the new one. A long-running server therefore always holds
/// the *most recent* window of events — exactly what a live tail
/// ([`journal_tail`]) and post-incident triage want — and sequence
/// numbers keep counting, so a reader can tell how much history it
/// missed.
struct JournalBuf {
    events: VecDeque<Event>,
    dropped: u64,
    capacity: usize,
    next_seq: u64,
    epoch: Option<Instant>,
}

static JOURNAL: Mutex<JournalBuf> = Mutex::new(JournalBuf {
    events: VecDeque::new(),
    dropped: 0,
    capacity: DEFAULT_JOURNAL_CAPACITY,
    next_seq: 0,
    epoch: None,
});

thread_local! {
    /// The request id stamped onto every journal event emitted on this
    /// thread (as a trailing `rid` field) while set. The serve event
    /// loop sets it around routing so a response's `X-Request-Id` links
    /// to every event its handler emitted.
    static REQUEST_ID: RefCell<Option<String>> = const { RefCell::new(None) };
}

/// Stamp journal events emitted on this thread with `rid` (pass `None`
/// to clear). Callers should guard on [`journal_enabled`] — the stamp
/// only affects journal events.
pub fn set_request_id(rid: Option<String>) {
    REQUEST_ID.with(|r| *r.borrow_mut() = rid);
}

fn push_event(mut e: Event) {
    REQUEST_ID.with(|r| {
        if let Some(rid) = r.borrow().as_deref() {
            e.fields
                .push(("rid".to_string(), FieldValue::Str(rid.to_string())));
        }
    });
    let mut j = lock(&JOURNAL);
    e.seq = j.next_seq;
    j.next_seq += 1;
    e.ts_us = j.epoch.map(|t| t.elapsed().as_micros() as u64).unwrap_or(0);
    if j.capacity == 0 {
        j.dropped += 1;
        return;
    }
    while j.events.len() >= j.capacity {
        j.events.pop_front();
        j.dropped += 1;
    }
    j.events.push_back(e);
}

/// Builder for one journal event. Obtained from [`event`]; a no-op shell
/// when the journal is off, so call sites pay one relaxed load and
/// nothing else on the disabled path (don't compute expensive field
/// values without guarding on [`journal_enabled`] first).
#[must_use = "an event is only recorded when .emit() is called"]
pub struct EventBuilder {
    inner: Option<Event>,
}

impl EventBuilder {
    /// Attach a typed field.
    pub fn field(mut self, key: &'static str, value: impl Into<FieldValue>) -> Self {
        if let Some(e) = &mut self.inner {
            e.fields.push((key.to_string(), value.into()));
        }
        self
    }

    /// Record the event (assigns its sequence number and timestamp).
    pub fn emit(self) {
        if let Some(e) = self.inner {
            push_event(e);
        }
    }
}

/// Start building a journal event of the given kind. The enclosing span
/// on the current thread becomes its parent. No-op when the journal is
/// off.
#[inline]
pub fn event(kind: &'static str) -> EventBuilder {
    if !journal_enabled() {
        return EventBuilder { inner: None };
    }
    let parent = SPAN_STACK.with(|s| s.borrow().last().copied().unwrap_or(0));
    EventBuilder {
        inner: Some(Event {
            seq: 0,
            ts_us: 0,
            kind: kind.to_string(),
            span: 0,
            parent,
            fields: Vec::new(),
        }),
    }
}

/// Everything [`journal_drain`] hands back.
#[derive(Debug, Default)]
pub struct JournalDump {
    /// The recorded events, in sequence order.
    pub events: Vec<Event>,
    /// Events discarded at the capacity bound since the last drain.
    pub dropped: u64,
}

impl JournalDump {
    /// Frame the dump as JSONL: one event object per line. A final
    /// `journal.dropped` meta line is appended when events were lost at
    /// the capacity bound, so readers can tell a complete journal from a
    /// truncated one.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(self.events.len() * 96);
        for e in &self.events {
            out.push_str(&e.to_json_line());
            out.push('\n');
        }
        if self.dropped > 0 {
            let seq = self.events.last().map(|e| e.seq + 1).unwrap_or(0);
            out.push_str(&format!(
                "{{\"seq\":{seq},\"ts_us\":0,\"kind\":\"journal.dropped\",\"span\":0,\"parent\":0,\"fields\":{{\"dropped\":{}}}}}\n",
                self.dropped
            ));
        }
        out
    }
}

/// Take all recorded events out of the journal (and reset the drop
/// counter). Sequence numbers keep counting across drains.
pub fn journal_drain() -> JournalDump {
    let mut j = lock(&JOURNAL);
    JournalDump {
        events: std::mem::take(&mut j.events).into_iter().collect(),
        dropped: std::mem::take(&mut j.dropped),
    }
}

/// Number of events currently buffered.
pub fn journal_len() -> usize {
    lock(&JOURNAL).events.len()
}

/// The sequence number the *next* event will get. A cheap "anything new
/// past my cursor?" probe for live tails: `journal_next_seq() > since`
/// iff [`journal_tail`]`(since, ..)` would return events.
pub fn journal_next_seq() -> u64 {
    lock(&JOURNAL).next_seq
}

/// A non-destructive read of the journal from a client cursor — the
/// payload behind the server's `GET /events?since=<seq>` live tail.
#[derive(Debug, Default)]
pub struct JournalTail {
    /// Buffered events with `seq >= since`, oldest first, at most `max`.
    pub events: Vec<Event>,
    /// The resume cursor: pass this as the next `since` for no gaps and
    /// no duplicates (it is one past the last returned event, or the
    /// current head when nothing matched).
    pub next: u64,
    /// Events with `seq >= since` that were already evicted from the
    /// ring before this read (the client's cursor fell behind the
    /// drop-oldest bound). 0 means the tail is gap-free.
    pub missed: u64,
}

/// Copy out up to `max` events with `seq >= since`, without disturbing
/// the journal (drains and tails can interleave; a tail never resets the
/// drop counter). See [`JournalTail`] for the cursor contract.
pub fn journal_tail(since: u64, max: usize) -> JournalTail {
    let j = lock(&JOURNAL);
    let oldest = j.events.front().map(|e| e.seq).unwrap_or(j.next_seq);
    let missed = oldest
        .saturating_sub(since)
        .min(j.next_seq.saturating_sub(since));
    // The ring holds the contiguous range [oldest, next_seq): index the
    // cursor directly instead of scanning.
    let skip = since.saturating_sub(oldest) as usize;
    let events: Vec<Event> = j.events.iter().skip(skip).take(max).cloned().collect();
    let next = match events.last() {
        Some(last) => last.seq + 1,
        None => j.next_seq.max(since),
    };
    JournalTail {
        events,
        next,
        missed,
    }
}

/// Bound the journal ring (the oldest event is evicted — and counted as
/// dropped — when a push would exceed the bound).
pub fn set_journal_capacity(capacity: usize) {
    let mut j = lock(&JOURNAL);
    j.capacity = capacity;
    while j.events.len() > capacity {
        j.events.pop_front();
        j.dropped += 1;
    }
}

// ---------------------------------------------------------------------------
// Snapshot
// ---------------------------------------------------------------------------

/// A frozen copy of the registry, for export. Maps are `BTreeMap`s so
/// JSON key order (and therefore diffs of snapshots) is deterministic.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Aggregated span timings by name.
    pub spans: BTreeMap<String, SpanStats>,
    /// Monotonic counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauges by name.
    pub gauges: BTreeMap<String, f64>,
    /// Labeled counter families: name → series (sorted label set → value).
    pub labeled_counters: BTreeMap<String, BTreeMap<LabelSet, u64>>,
    /// Labeled gauge families.
    pub labeled_gauges: BTreeMap<String, BTreeMap<LabelSet, f64>>,
    /// Labeled log₂ histogram families.
    pub labeled_hists: BTreeMap<String, BTreeMap<LabelSet, SpanStats>>,
}

/// Freeze the current registry contents into a [`Snapshot`].
pub fn snapshot() -> Snapshot {
    Snapshot {
        spans: lock(&SPANS).clone(),
        counters: lock(&COUNTERS).clone(),
        gauges: lock(&GAUGES).clone(),
        labeled_counters: lock(&LABELED_COUNTERS).clone(),
        labeled_gauges: lock(&LABELED_GAUGES).clone(),
        labeled_hists: lock(&LABELED_HISTS).clone(),
    }
}

fn escape_json(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Render a sorted label set as a JSON object (`{"route": "/x", ...}`).
fn labels_json(labels: &[(String, String)], out: &mut String) {
    out.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        escape_json(k, out);
        out.push_str(": ");
        escape_json(v, out);
    }
    out.push('}');
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // Bare integers are valid JSON numbers, but keep floats obvious.
        if s.contains('.') || s.contains('e') || s.contains('E') {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        // JSON has no NaN/Inf; null is the conventional stand-in.
        "null".to_string()
    }
}

impl Snapshot {
    /// Serialize to a JSON object:
    ///
    /// ```json
    /// {
    ///   "spans":    { "<name>": { "count": N, "total_ns": N,
    ///                             "min_ns": N, "max_ns": N,
    ///                             "hist": [[bucket, count], ...] }, ... },
    ///   "counters": { "<name>": N, ... },
    ///   "gauges":   { "<name>": X, ... }
    /// }
    /// ```
    ///
    /// Durations are integer nanoseconds; `hist` is the sparse log₂
    /// duration histogram (`bucket` b counts runs in `[2^b, 2^(b+1))`
    /// ns; empty buckets are omitted); gauges are JSON numbers (or
    /// `null` for non-finite values). Keys appear in sorted order.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n  \"spans\": {");
        for (i, (name, s)) in self.spans.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    ");
            escape_json(name, &mut out);
            out.push_str(&format!(
                ": {{\"count\": {}, \"total_ns\": {}, \"min_ns\": {}, \"max_ns\": {}, \"hist\": [",
                s.count, s.total_ns, s.min_ns, s.max_ns
            ));
            let mut first = true;
            for (b, &c) in s.hist.iter().enumerate() {
                if c > 0 {
                    if !first {
                        out.push_str(", ");
                    }
                    out.push_str(&format!("[{b}, {c}]"));
                    first = false;
                }
            }
            out.push_str("]}");
        }
        out.push_str(if self.spans.is_empty() { "}" } else { "\n  }" });
        out.push_str(",\n  \"counters\": {");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    ");
            escape_json(name, &mut out);
            out.push_str(&format!(": {v}"));
        }
        out.push_str(if self.counters.is_empty() {
            "}"
        } else {
            "\n  }"
        });
        out.push_str(",\n  \"gauges\": {");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    ");
            escape_json(name, &mut out);
            out.push_str(": ");
            out.push_str(&json_f64(*v));
        }
        out.push_str(if self.gauges.is_empty() { "}" } else { "\n  }" });
        out.push_str(",\n  \"labeled_counters\": {");
        for (i, (name, family)) in self.labeled_counters.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    ");
            escape_json(name, &mut out);
            out.push_str(": [");
            for (k, (labels, v)) in family.iter().enumerate() {
                if k > 0 {
                    out.push_str(", ");
                }
                out.push_str("{\"labels\": ");
                labels_json(labels, &mut out);
                out.push_str(&format!(", \"value\": {v}}}"));
            }
            out.push(']');
        }
        out.push_str(if self.labeled_counters.is_empty() {
            "}"
        } else {
            "\n  }"
        });
        out.push_str(",\n  \"labeled_gauges\": {");
        for (i, (name, family)) in self.labeled_gauges.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    ");
            escape_json(name, &mut out);
            out.push_str(": [");
            for (k, (labels, v)) in family.iter().enumerate() {
                if k > 0 {
                    out.push_str(", ");
                }
                out.push_str("{\"labels\": ");
                labels_json(labels, &mut out);
                out.push_str(", \"value\": ");
                out.push_str(&json_f64(*v));
                out.push('}');
            }
            out.push(']');
        }
        out.push_str(if self.labeled_gauges.is_empty() {
            "}"
        } else {
            "\n  }"
        });
        out.push_str(",\n  \"labeled_hists\": {");
        for (i, (name, family)) in self.labeled_hists.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    ");
            escape_json(name, &mut out);
            out.push_str(": [");
            for (k, (labels, s)) in family.iter().enumerate() {
                if k > 0 {
                    out.push_str(", ");
                }
                out.push_str("{\"labels\": ");
                labels_json(labels, &mut out);
                out.push_str(&format!(
                    ", \"count\": {}, \"total_ns\": {}, \"min_ns\": {}, \"max_ns\": {}, \"hist\": [",
                    s.count, s.total_ns, s.min_ns, s.max_ns
                ));
                let mut first = true;
                for (b, &c) in s.hist.iter().enumerate() {
                    if c > 0 {
                        if !first {
                            out.push_str(", ");
                        }
                        out.push_str(&format!("[{b}, {c}]"));
                        first = false;
                    }
                }
                out.push_str("]}");
            }
            out.push(']');
        }
        out.push_str(if self.labeled_hists.is_empty() {
            "}"
        } else {
            "\n  }"
        });
        out.push_str("\n}\n");
        out
    }

    /// Render this snapshot in the Prometheus text exposition format
    /// (version 0.0.4). See [`prom::render`] for the mapping.
    pub fn to_prometheus(&self) -> String {
        prom::render(self)
    }

    /// Render a human-readable report. [`LogMode::Summary`] prints
    /// counters, gauges, and each span's count + total; [`LogMode::Spans`]
    /// adds per-span min/mean/max columns and a duration-histogram
    /// sparkline.
    pub fn render(&self, mode: LogMode) -> String {
        let mut out = String::new();
        if mode == LogMode::Off {
            return out;
        }
        if !self.spans.is_empty() {
            out.push_str("spans:\n");
            let wide = self.spans.keys().map(|k| k.len()).max().unwrap_or(0);
            for (name, s) in &self.spans {
                let total_ms = s.total_ns as f64 / 1e6;
                match mode {
                    LogMode::Spans => {
                        let mean_ms = total_ms / s.count.max(1) as f64;
                        out.push_str(&format!(
                            "  {name:<wide$}  n={:<6} total={:>10.3}ms  min={:>9.3}ms  mean={:>9.3}ms  max={:>9.3}ms  {}\n",
                            s.count,
                            total_ms,
                            s.min_ns as f64 / 1e6,
                            mean_ms,
                            s.max_ns as f64 / 1e6,
                            s.sparkline(),
                        ));
                    }
                    _ => {
                        out.push_str(&format!(
                            "  {name:<wide$}  n={:<6} total={:>10.3}ms\n",
                            s.count, total_ms
                        ));
                    }
                }
            }
        }
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            let wide = self.counters.keys().map(|k| k.len()).max().unwrap_or(0);
            for (name, v) in &self.counters {
                out.push_str(&format!("  {name:<wide$}  {v}\n"));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            let wide = self.gauges.keys().map(|k| k.len()).max().unwrap_or(0);
            for (name, v) in &self.gauges {
                out.push_str(&format!("  {name:<wide$}  {v:.6}\n"));
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// PANDA_LOG
// ---------------------------------------------------------------------------

/// The end-of-run report style requested via `PANDA_LOG`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogMode {
    /// No report.
    Off,
    /// Counters, gauges, and span counts/totals.
    Summary,
    /// Everything in `Summary` plus per-span min/mean/max.
    Spans,
}

/// Parse `PANDA_LOG` (read on every call — cheap, and tests can vary
/// it). Unknown values mean [`LogMode::Off`].
pub fn log_mode() -> LogMode {
    match std::env::var(LOG_ENV).as_deref() {
        Ok("summary") => LogMode::Summary,
        Ok("spans") => LogMode::Spans,
        _ => LogMode::Off,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The registry is process-global; tests that assert exact contents
    /// serialize on this and reset() first.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn all_off() {
        set_enabled(false);
        set_journal_enabled(false);
    }

    #[test]
    fn disabled_records_nothing() {
        let _g = lock(&TEST_LOCK);
        all_off();
        reset();
        {
            let _s = span("off.stage");
        }
        counter_add("off.count", 5);
        gauge_set("off.gauge", 1.0);
        gauge_add("off.gauge", 1.0);
        span_record("off.manual", 1000);
        event("off.event").field("x", 1u64).emit();
        let snap = snapshot();
        assert!(snap.spans.is_empty());
        assert!(snap.counters.is_empty());
        assert!(snap.gauges.is_empty());
        assert_eq!(journal_len(), 0);
    }

    #[test]
    fn spans_aggregate_count_total_min_max_hist() {
        let _g = lock(&TEST_LOCK);
        set_enabled(true);
        reset();
        span_record("stage.a", 100);
        span_record("stage.a", 300);
        span_record("stage.a", 200);
        {
            let _s = span("stage.b"); // real timer: nonzero elapsed
        }
        let snap = snapshot();
        all_off();
        let a = &snap.spans["stage.a"];
        assert_eq!(a.count, 3);
        assert_eq!(a.total_ns, 600);
        assert_eq!(a.min_ns, 100);
        assert_eq!(a.max_ns, 300);
        // 100 → bucket 6 ([64,128)), 200 → 7, 300 → 8.
        assert_eq!(a.hist[6], 1);
        assert_eq!(a.hist[7], 1);
        assert_eq!(a.hist[8], 1);
        assert_eq!(a.hist.iter().sum::<u64>(), 3);
        assert!(!a.sparkline().is_empty());
        let b = &snap.spans["stage.b"];
        assert_eq!(b.count, 1);
        assert!(b.total_ns > 0);
        assert_eq!(b.min_ns, b.max_ns);
        assert_eq!(b.hist.iter().sum::<u64>(), 1);
    }

    #[test]
    fn hist_bucket_boundaries() {
        assert_eq!(hist_bucket(0), 0);
        assert_eq!(hist_bucket(1), 0);
        assert_eq!(hist_bucket(2), 1);
        assert_eq!(hist_bucket(3), 1);
        assert_eq!(hist_bucket(4), 2);
        assert_eq!(hist_bucket(1 << 31), HIST_BUCKETS - 1);
        assert_eq!(hist_bucket(u128::MAX), HIST_BUCKETS - 1);
    }

    #[test]
    fn counters_and_gauges_accumulate() {
        let _g = lock(&TEST_LOCK);
        set_enabled(true);
        reset();
        counter_add("c.items", 3);
        counter_add("c.items", 4);
        gauge_set("g.last", 1.5);
        gauge_set("g.last", 2.5);
        gauge_add("g.sum", 1.0);
        gauge_add("g.sum", 0.25);
        let snap = snapshot();
        all_off();
        assert_eq!(snap.counters["c.items"], 7);
        assert_eq!(snap.gauges["g.last"], 2.5);
        assert_eq!(snap.gauges["g.sum"], 1.25);
    }

    #[test]
    fn recording_is_thread_safe() {
        let _g = lock(&TEST_LOCK);
        set_enabled(true);
        set_journal_enabled(true);
        reset();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        counter_add("t.hits", 1);
                        span_record("t.span", 10);
                        event("t.event").field("n", 1u64).emit();
                    }
                });
            }
        });
        let snap = snapshot();
        let dump = journal_drain();
        all_off();
        assert_eq!(snap.counters["t.hits"], 4000);
        assert_eq!(snap.spans["t.span"].count, 4000);
        assert_eq!(snap.spans["t.span"].total_ns, 40_000);
        assert_eq!(dump.events.len(), 4000);
        // Sequence numbers are unique and strictly increasing.
        for w in dump.events.windows(2) {
            assert!(w[1].seq > w[0].seq);
        }
    }

    #[test]
    fn json_shape_and_escaping() {
        let _g = lock(&TEST_LOCK);
        set_enabled(true);
        reset();
        span_record("stage.grid", 1_000_000);
        counter_add("em.iters", 42);
        gauge_set("score \"q\"", 0.5);
        gauge_set("bad", f64::NAN);
        let json = snapshot().to_json();
        all_off();
        assert!(json.contains("\"spans\""));
        assert!(json.contains("\"stage.grid\": {\"count\": 1, \"total_ns\": 1000000"));
        // 1_000_000 ns → bucket 19 ([2^19, 2^20)).
        assert!(json.contains("\"hist\": [[19, 1]]"), "{json}");
        assert!(json.contains("\"em.iters\": 42"));
        assert!(json.contains("\"score \\\"q\\\"\": 0.5"));
        assert!(json.contains("\"bad\": null"));
        // Balanced braces — the cheapest structural sanity check without
        // pulling a parser into a zero-dependency crate (the workspace
        // integration test round-trips it through serde_json).
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
    }

    #[test]
    fn empty_snapshot_is_valid_json() {
        let snap = Snapshot::default();
        let json = snap.to_json();
        assert!(json.contains("\"spans\": {}"));
        assert!(json.contains("\"counters\": {}"));
        assert!(json.contains("\"gauges\": {}"));
    }

    #[test]
    fn render_modes() {
        let mut snap = Snapshot::default();
        snap.spans.insert(
            "stage.x".into(),
            SpanStats {
                count: 2,
                total_ns: 3_000_000,
                min_ns: 1_000_000,
                max_ns: 2_000_000,
                ..SpanStats::default()
            },
        );
        snap.counters.insert("c".into(), 7);
        snap.gauges.insert("g".into(), 0.5);
        assert!(snap.render(LogMode::Off).is_empty());
        let summary = snap.render(LogMode::Summary);
        assert!(summary.contains("stage.x"));
        assert!(summary.contains("counters:"));
        assert!(!summary.contains("mean="));
        let spans = snap.render(LogMode::Spans);
        assert!(spans.contains("mean="));
        assert!(spans.contains("min="));
    }

    #[test]
    fn sparkline_spans_occupied_range() {
        assert_eq!(sparkline(&[0, 0, 0]), "");
        let line = sparkline(&[0, 8, 0, 1, 0]);
        // Range buckets 1..=3: peak, gap, small.
        assert_eq!(line.chars().count(), 3);
        assert_eq!(line.chars().next(), Some('█'));
        assert_eq!(line.chars().nth(1), Some(' '));
        assert_eq!(line.chars().nth(2), Some('▁'));
    }

    #[test]
    fn reset_clears_everything() {
        let _g = lock(&TEST_LOCK);
        set_enabled(true);
        set_journal_enabled(true);
        counter_add("will.vanish", 1);
        event("will.vanish").emit();
        reset();
        let snap = snapshot();
        all_off();
        assert!(snap.counters.is_empty());
        assert_eq!(journal_len(), 0);
    }

    #[test]
    fn journal_records_events_and_span_tree() {
        let _g = lock(&TEST_LOCK);
        set_journal_enabled(true);
        reset();
        {
            let outer = span("outer.stage");
            let outer_id = outer.id();
            assert!(outer_id > 0);
            {
                let _inner = span("inner.stage");
                event("point.event").field("k", "v").emit();
            }
        }
        let dump = journal_drain();
        all_off();
        // Drop order: point event, inner span, outer span.
        assert_eq!(dump.dropped, 0);
        let kinds: Vec<&str> = dump.events.iter().map(|e| e.kind.as_str()).collect();
        assert_eq!(kinds, vec!["point.event", "span", "span"]);
        let point = &dump.events[0];
        let inner = &dump.events[1];
        let outer = &dump.events[2];
        assert_eq!(
            inner.field("name"),
            Some(&FieldValue::Str("inner.stage".into()))
        );
        assert_eq!(
            outer.field("name"),
            Some(&FieldValue::Str("outer.stage".into()))
        );
        // The tree: outer is root, inner's parent is outer, the point
        // event's parent is inner.
        assert_eq!(outer.parent, 0);
        assert_eq!(inner.parent, outer.span);
        assert_eq!(point.parent, inner.span);
        assert!(matches!(inner.field("dur_ns"), Some(FieldValue::U64(_))));
    }

    #[test]
    fn journal_capacity_bounds_and_counts_drops() {
        let _g = lock(&TEST_LOCK);
        set_journal_enabled(true);
        reset();
        set_journal_capacity(3);
        for i in 0..5u64 {
            event("cap.test").field("i", i).emit();
        }
        let dump = journal_drain();
        set_journal_capacity(DEFAULT_JOURNAL_CAPACITY);
        all_off();
        assert_eq!(dump.events.len(), 3);
        assert_eq!(dump.dropped, 2);
        // Drop-oldest ring: the survivors are the *newest* three.
        let kept: Vec<u64> = dump.events.iter().map(|e| e.seq).collect();
        assert_eq!(kept, vec![2, 3, 4]);
        let jsonl = dump.to_jsonl();
        assert_eq!(jsonl.lines().count(), 4, "3 events + dropped marker");
        assert!(jsonl.contains("\"journal.dropped\""));
        assert!(jsonl.contains("\"dropped\":2"));
    }

    #[test]
    fn journal_tail_resumes_without_gaps_or_duplicates() {
        let _g = lock(&TEST_LOCK);
        set_journal_enabled(true);
        reset();
        for i in 0..6u64 {
            event("tail.test").field("i", i).emit();
        }
        // Page through with max=4: two reads cover everything exactly once.
        let first = journal_tail(0, 4);
        assert_eq!(first.missed, 0);
        assert_eq!(
            first.events.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
        assert_eq!(first.next, 4);
        let second = journal_tail(first.next, 4);
        assert_eq!(
            second.events.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![4, 5]
        );
        assert_eq!(second.next, 6);
        // Caught up: an empty tail parks the cursor at the head.
        let third = journal_tail(second.next, 4);
        assert!(third.events.is_empty());
        assert_eq!(third.next, 6);
        // Tails are non-destructive: the events are all still there.
        assert_eq!(journal_len(), 6);
        let dump = journal_drain();
        all_off();
        assert_eq!(dump.events.len(), 6);
    }

    #[test]
    fn journal_tail_reports_missed_events_after_wraparound() {
        let _g = lock(&TEST_LOCK);
        set_journal_enabled(true);
        reset();
        set_journal_capacity(3);
        for i in 0..8u64 {
            event("wrap.test").field("i", i).emit();
        }
        // Ring holds seqs 5..=7; a cursor at 1 missed 4 events (1..=4).
        let tail = journal_tail(1, 100);
        set_journal_capacity(DEFAULT_JOURNAL_CAPACITY);
        all_off();
        assert_eq!(
            tail.events.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![5, 6, 7]
        );
        assert_eq!(tail.missed, 4);
        assert_eq!(tail.next, 8);
    }

    #[test]
    fn request_id_is_stamped_onto_journal_events() {
        let _g = lock(&TEST_LOCK);
        set_journal_enabled(true);
        reset();
        event("rid.none").emit();
        set_request_id(Some("3-42".to_string()));
        event("rid.some").field("k", 1u64).emit();
        {
            let _s = span("rid.span");
        }
        set_request_id(None);
        event("rid.cleared").emit();
        let dump = journal_drain();
        all_off();
        assert_eq!(dump.events[0].field("rid"), None);
        assert_eq!(
            dump.events[1].field("rid"),
            Some(&FieldValue::Str("3-42".into()))
        );
        // Span-close events inside the request window carry it too.
        assert_eq!(dump.events[2].kind, "span");
        assert_eq!(
            dump.events[2].field("rid"),
            Some(&FieldValue::Str("3-42".into()))
        );
        assert_eq!(dump.events[3].field("rid"), None);
    }

    #[test]
    fn labeled_metrics_aggregate_and_normalize_label_order() {
        let _g = lock(&TEST_LOCK);
        set_enabled(true);
        reset();
        counter_add_labeled(
            "serve.http.requests",
            &[("route", "/healthz"), ("status", "200")],
            2,
        );
        // Reversed label order is the same series.
        counter_add_labeled(
            "serve.http.requests",
            &[("status", "200"), ("route", "/healthz")],
            3,
        );
        counter_add_labeled(
            "serve.http.requests",
            &[("route", "/healthz"), ("status", "404")],
            1,
        );
        gauge_set_labeled("serve.loop.connections", &[("shard", "0")], 7.0);
        gauge_add_labeled("serve.loop.connections", &[("shard", "0")], -2.0);
        hist_record_labeled("serve.http.latency", &[("route", "/match")], 100);
        hist_record_labeled("serve.http.latency", &[("route", "/match")], 300);
        let snap = snapshot();
        all_off();
        let family = &snap.labeled_counters["serve.http.requests"];
        assert_eq!(family.len(), 2);
        let ok_series = vec![
            ("route".to_string(), "/healthz".to_string()),
            ("status".to_string(), "200".to_string()),
        ];
        assert_eq!(family[&ok_series], 5);
        let conns = &snap.labeled_gauges["serve.loop.connections"];
        assert_eq!(conns[&vec![("shard".to_string(), "0".to_string())]], 5.0);
        let lat = &snap.labeled_hists["serve.http.latency"]
            [&vec![("route".to_string(), "/match".to_string())]];
        assert_eq!(lat.count, 2);
        assert_eq!(lat.total_ns, 400);
        assert_eq!(lat.min_ns, 100);
        assert_eq!(lat.max_ns, 300);
        // And the JSON snapshot carries the labeled families.
        let json = snap.to_json();
        assert!(json.contains("\"labeled_counters\""), "{json}");
        assert!(
            json.contains(r#"{"labels": {"route": "/healthz", "status": "200"}, "value": 5}"#),
            "{json}"
        );
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn labeled_metrics_are_noops_when_disabled() {
        let _g = lock(&TEST_LOCK);
        all_off();
        reset();
        counter_add_labeled("off.counter", &[("a", "b")], 1);
        gauge_set_labeled("off.gauge", &[("a", "b")], 1.0);
        gauge_add_labeled("off.gauge", &[("a", "b")], 1.0);
        hist_record_labeled("off.hist", &[("a", "b")], 1);
        let snap = snapshot();
        assert!(snap.labeled_counters.is_empty());
        assert!(snap.labeled_gauges.is_empty());
        assert!(snap.labeled_hists.is_empty());
    }

    #[test]
    fn event_jsonl_shape() {
        let e = Event {
            seq: 7,
            ts_us: 1234,
            kind: "model.em.iter".into(),
            span: 0,
            parent: 3,
            fields: vec![
                ("iter".into(), FieldValue::U64(2)),
                ("ll".into(), FieldValue::F64(-15.25)),
                ("init".into(), FieldValue::Str("smo\"oth".into())),
                ("converged".into(), FieldValue::Bool(false)),
                ("bad".into(), FieldValue::F64(f64::INFINITY)),
                ("neg".into(), FieldValue::I64(-4)),
            ],
        };
        let line = e.to_json_line();
        assert!(line.starts_with("{\"seq\":7,\"ts_us\":1234,\"kind\":\"model.em.iter\""));
        assert!(line.contains("\"span\":0,\"parent\":3"));
        assert!(line.contains("\"iter\":2"));
        assert!(line.contains("\"ll\":-15.25"));
        assert!(line.contains("\"init\":\"smo\\\"oth\""));
        assert!(line.contains("\"converged\":false"));
        assert!(line.contains("\"bad\":null"));
        assert!(line.contains("\"neg\":-4"));
        assert_eq!(line.matches('{').count(), line.matches('}').count());
    }

    #[test]
    fn journal_off_metrics_on_is_independent() {
        let _g = lock(&TEST_LOCK);
        set_enabled(true);
        set_journal_enabled(false);
        reset();
        {
            let s = span("only.metrics");
            assert_eq!(s.id(), 0, "no journal id without the journal");
        }
        event("only.metrics").emit();
        let snap = snapshot();
        all_off();
        assert_eq!(snap.spans["only.metrics"].count, 1);
        assert_eq!(journal_len(), 0);
    }

    #[test]
    fn metric_name_convention() {
        for good in [
            "autolf.score_grid",
            "model.panda.em_iters.snorkel",
            "lf.matrix.apply",
            "text.token_cache.hits",
            "exec.sections",
        ] {
            assert!(is_valid_metric_name(good), "{good}");
        }
        for bad in [
            "single",
            "Upper.case",
            "trailing.",
            ".leading",
            "sp ace.x",
            "dash-ed.x",
            "a..b",
            "",
        ] {
            assert!(!is_valid_metric_name(bad), "{bad:?}");
        }
    }

    #[test]
    fn log_mode_parses_env() {
        // Serialized with the registry lock: env is process-global too.
        let _g = lock(&TEST_LOCK);
        std::env::remove_var(LOG_ENV);
        assert_eq!(log_mode(), LogMode::Off);
        std::env::set_var(LOG_ENV, "summary");
        assert_eq!(log_mode(), LogMode::Summary);
        std::env::set_var(LOG_ENV, "spans");
        assert_eq!(log_mode(), LogMode::Spans);
        std::env::set_var(LOG_ENV, "nonsense");
        assert_eq!(log_mode(), LogMode::Off);
        std::env::remove_var(LOG_ENV);
    }
}
