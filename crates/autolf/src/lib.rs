//! Automatically generated labeling functions (paper §2.1, feature 1.3).
//!
//! Panda leverages Auto-FuzzyJoin [Li et al., SIGMOD'21] to hand first-time
//! users a set of high-quality LFs without writing a line of code. The key
//! insight: one of the input tables is usually a **reference table** with
//! no (or few) duplicates — true for >90% of EM benchmarks [9]. Under that
//! assumption the precision of a similarity-join rule can be *estimated
//! without any labels*: if a join config maps one right record to several
//! distinct left records, at most one of those pairs can be correct, so
//! every extra assignment is a certain false positive.
//!
//! The generator:
//!
//! 1. enumerates the four-axis config lattice
//!    ([`panda_text::config::default_config_grid`]) over the task's shared
//!    text attributes,
//! 2. scores every candidate pair under every config (corpus statistics
//!    are built per attribute/tokenizer for TF-IDF configs),
//! 3. for each config picks the smallest threshold whose **estimated
//!    precision** ([`estimate`]) meets the target (smallest = maximal
//!    recall subject to precision),
//! 4. greedily unions configs in support order while the union's estimated
//!    precision holds ([`select`]),
//! 5. emits each survivor as a [`panda_lf::SimilarityLf`] named
//!    `auto_lf_<k>` (tagged [`panda_lf::lf::LfProvenance::Auto`]), with a
//!    proportional lower threshold so the LF also votes −1 on clearly
//!    dissimilar pairs.

pub mod estimate;
pub mod generate;
pub mod select;

pub use estimate::{estimate_precision, PrecisionEstimate};
pub use generate::{generate_auto_lfs, AutoLfConfig, GeneratedLf};
pub use select::greedy_select;
