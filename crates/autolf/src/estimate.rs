//! Label-free precision estimation under the reference-table assumption.

use panda_table::{CandidateSet, RecordId};
use std::collections::HashMap;

/// The outcome of estimating one join rule (config + threshold).
#[derive(Debug, Clone, PartialEq)]
pub struct PrecisionEstimate {
    /// Pairs the rule joins (score ≥ threshold).
    pub joined: usize,
    /// Uniqueness violations: joins beyond the first per right record.
    /// Each is a certain false positive if the left table is
    /// duplicate-free.
    pub violations: usize,
    /// `1 − violations / joined` (1.0 for an empty join).
    pub est_precision: f64,
    /// `joined − violations` — the estimated number of correct pairs,
    /// which doubles as the recall proxy used to rank configs.
    pub est_support: usize,
}

/// Estimate precision of the join `{pair : score(pair) ≥ threshold}`.
///
/// `scored` holds `(candidate index, score)` for every candidate pair;
/// `candidates` supplies the pair endpoints. The estimator counts, for
/// every right record, how many distinct left records it gets joined to —
/// a duplicate-free left table admits at most one correct assignment per
/// right record, so the surplus is a lower bound on false positives
/// (Auto-FuzzyJoin's core estimator).
pub fn estimate_precision(
    scored: &[(usize, f64)],
    candidates: &CandidateSet,
    threshold: f64,
) -> PrecisionEstimate {
    let mut per_right: HashMap<RecordId, u32> = HashMap::new();
    let mut joined = 0usize;
    for &(idx, score) in scored {
        if score < threshold {
            continue;
        }
        let pair = candidates.get(idx).expect("scored index in range");
        joined += 1;
        *per_right.entry(pair.right).or_insert(0) += 1;
    }
    let violations: usize = per_right
        .values()
        .map(|&c| (c.saturating_sub(1)) as usize)
        .sum();
    let est_precision = if joined == 0 {
        1.0
    } else {
        1.0 - violations as f64 / joined as f64
    };
    PrecisionEstimate {
        joined,
        violations,
        est_precision,
        est_support: joined - violations,
    }
}

/// Estimate the union of several join rules: the union of their joined
/// pair sets, evaluated with the same uniqueness counting.
pub fn estimate_union(joined_sets: &[&Vec<usize>], candidates: &CandidateSet) -> PrecisionEstimate {
    let mut seen = std::collections::HashSet::new();
    let mut per_right: HashMap<RecordId, u32> = HashMap::new();
    for set in joined_sets {
        for &idx in set.iter() {
            if !seen.insert(idx) {
                continue;
            }
            let pair = candidates.get(idx).expect("index in range");
            *per_right.entry(pair.right).or_insert(0) += 1;
        }
    }
    let joined = seen.len();
    let violations: usize = per_right
        .values()
        .map(|&c| (c.saturating_sub(1)) as usize)
        .sum();
    PrecisionEstimate {
        joined,
        violations,
        est_precision: if joined == 0 {
            1.0
        } else {
            1.0 - violations as f64 / joined as f64
        },
        est_support: joined - violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use panda_table::CandidatePair;

    fn cands() -> CandidateSet {
        // right record 0 is reachable from left 0 and left 1.
        CandidateSet::from_pairs([
            CandidatePair::new(0, 0),
            CandidatePair::new(1, 0),
            CandidatePair::new(1, 1),
            CandidatePair::new(2, 2),
        ])
    }

    #[test]
    fn clean_join_has_full_precision() {
        let scored = vec![(0, 0.9), (1, 0.2), (2, 0.8), (3, 0.95)];
        let e = estimate_precision(&scored, &cands(), 0.5);
        assert_eq!(e.joined, 3);
        assert_eq!(e.violations, 0);
        assert_eq!(e.est_precision, 1.0);
        assert_eq!(e.est_support, 3);
    }

    #[test]
    fn double_assignment_is_a_violation() {
        // Both left 0 and left 1 join right 0 → one must be wrong.
        let scored = vec![(0, 0.9), (1, 0.85), (2, 0.8), (3, 0.9)];
        let e = estimate_precision(&scored, &cands(), 0.5);
        assert_eq!(e.joined, 4);
        assert_eq!(e.violations, 1);
        assert!((e.est_precision - 0.75).abs() < 1e-12);
        assert_eq!(e.est_support, 3);
    }

    #[test]
    fn raising_threshold_raises_estimated_precision_here() {
        let scored = vec![(0, 0.9), (1, 0.55), (2, 0.8), (3, 0.9)];
        let loose = estimate_precision(&scored, &cands(), 0.5);
        let tight = estimate_precision(&scored, &cands(), 0.6);
        assert!(tight.est_precision > loose.est_precision);
        assert!(tight.joined < loose.joined);
    }

    #[test]
    fn empty_join_is_vacuously_precise() {
        let e = estimate_precision(&[(0, 0.1)], &cands(), 0.9);
        assert_eq!(e.joined, 0);
        assert_eq!(e.est_precision, 1.0);
        assert_eq!(e.est_support, 0);
    }

    #[test]
    fn union_counts_shared_right_records() {
        let a = vec![0usize, 3];
        let b = vec![1usize, 3]; // adds (1,0): right 0 now doubly assigned
        let e = estimate_union(&[&a, &b], &cands());
        assert_eq!(e.joined, 3);
        assert_eq!(e.violations, 1);
    }
}
