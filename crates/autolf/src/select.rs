//! Greedy precision-constrained union selection.

use crate::estimate::estimate_union;
use panda_table::CandidateSet;

/// One config that survived threshold search, ready for selection.
#[derive(Debug, Clone)]
pub struct SelectionInput {
    /// Candidate indices the rule joins at its chosen threshold.
    pub joined: Vec<usize>,
    /// Estimated support (recall proxy) of the rule alone.
    pub est_support: usize,
}

/// Greedily pick rules, best supported first, keeping the estimated
/// precision of the *union* at or above `precision_target` and requiring
/// every accepted rule to contribute at least `min_gain` new pairs.
/// Returns the indices of accepted rules.
pub fn greedy_select(
    inputs: &[SelectionInput],
    candidates: &CandidateSet,
    precision_target: f64,
    min_gain: usize,
    max_rules: usize,
) -> Vec<usize> {
    let mut order: Vec<usize> = (0..inputs.len()).collect();
    order.sort_by(|&a, &b| inputs[b].est_support.cmp(&inputs[a].est_support));

    let mut accepted: Vec<usize> = Vec::new();
    let mut union: std::collections::HashSet<usize> = std::collections::HashSet::new();
    for idx in order {
        if accepted.len() >= max_rules {
            break;
        }
        let gain = inputs[idx]
            .joined
            .iter()
            .filter(|p| !union.contains(p))
            .count();
        if gain < min_gain {
            continue;
        }
        // Tentatively add and re-estimate the union.
        let mut sets: Vec<&Vec<usize>> = accepted.iter().map(|&i| &inputs[i].joined).collect();
        sets.push(&inputs[idx].joined);
        let est = estimate_union(&sets, candidates);
        if est.est_precision >= precision_target {
            union.extend(inputs[idx].joined.iter().copied());
            accepted.push(idx);
        }
    }
    accepted
}

#[cfg(test)]
mod tests {
    use super::*;
    use panda_table::CandidatePair;

    fn cands(n: u32) -> CandidateSet {
        CandidateSet::from_pairs((0..n).map(|i| CandidatePair::new(i, i)))
    }

    #[test]
    fn picks_high_support_first_and_respects_cap() {
        let inputs = vec![
            SelectionInput {
                joined: vec![0, 1],
                est_support: 2,
            },
            SelectionInput {
                joined: vec![0, 1, 2, 3],
                est_support: 4,
            },
            SelectionInput {
                joined: vec![4],
                est_support: 1,
            },
        ];
        let picked = greedy_select(&inputs, &cands(6), 0.8, 1, 2);
        assert_eq!(picked[0], 1, "largest support first");
        assert_eq!(picked.len(), 2);
    }

    #[test]
    fn skips_rules_without_gain() {
        let inputs = vec![
            SelectionInput {
                joined: vec![0, 1, 2],
                est_support: 3,
            },
            SelectionInput {
                joined: vec![1, 2],
                est_support: 2,
            }, // subset
        ];
        let picked = greedy_select(&inputs, &cands(4), 0.5, 1, 8);
        assert_eq!(picked, vec![0]);
    }

    #[test]
    fn rejects_rules_that_break_union_precision() {
        // Rule 1 joins distinct rights; rule 2 joins the same right 0
        // from two lefts (half its pairs are violations once unioned).
        let candidates = CandidateSet::from_pairs([
            CandidatePair::new(0, 0),
            CandidatePair::new(1, 1),
            CandidatePair::new(2, 0), // same right as index 0
        ]);
        let inputs = vec![
            SelectionInput {
                joined: vec![0, 1],
                est_support: 2,
            },
            SelectionInput {
                joined: vec![2],
                est_support: 1,
            },
        ];
        let picked = greedy_select(&inputs, &candidates, 0.9, 1, 8);
        assert_eq!(
            picked,
            vec![0],
            "second rule would drop union precision to 2/3"
        );
    }
}
