//! The end-to-end auto-LF generator.

use crate::estimate::estimate_precision;
use crate::select::{greedy_select, SelectionInput};
use panda_lf::lf::LfProvenance;
use panda_lf::SimilarityLf;
use panda_table::{CandidateSet, Table, TablePair};
use panda_text::config::default_config_grid;
use panda_text::prepared::{ColumnKey, PreparedColumn, TokenCache, WeightKey};
use panda_text::preprocess::standard_pipeline;
use panda_text::tokenize::Tokenizer;
use panda_text::weight::SortedWeights;
use panda_text::{CorpusStats, SimilarityConfig, Weighting};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Generator knobs.
#[derive(Debug, Clone)]
pub struct AutoLfConfig {
    /// Estimated precision every emitted rule (and the union) must meet.
    pub precision_target: f64,
    /// Maximum LFs to emit.
    pub max_lfs: usize,
    /// Threshold grid searched per config (ascending).
    pub thresholds: Vec<f64>,
    /// Minimum estimated support for a rule to be considered.
    pub min_support: usize,
    /// Minimum new pairs a rule must add to the union.
    pub min_gain: usize,
    /// Attributes to join on; `None` auto-detects text attributes present
    /// in both schemas.
    pub attributes: Option<Vec<String>>,
    /// Attribute *pairs* `(left, right)` for schema-mismatched tasks
    /// (walmart `title` vs amazon `name`). Used in addition to
    /// `attributes` / the auto-detected shared set.
    pub attribute_pairs: Vec<(String, String)>,
    /// The emitted LF's −1 threshold as a fraction of its +1 threshold
    /// (0 disables the negative side).
    pub lower_ratio: f64,
}

impl Default for AutoLfConfig {
    fn default() -> Self {
        AutoLfConfig {
            precision_target: 0.85,
            max_lfs: 6,
            thresholds: (5..=19).map(|i| i as f64 * 0.05).collect(),
            min_support: 5,
            min_gain: 3,
            attributes: None,
            attribute_pairs: Vec::new(),
            lower_ratio: 0.3,
        }
    }
}

/// One emitted LF plus the evidence that justified it.
#[derive(Debug, Clone)]
pub struct GeneratedLf {
    /// The ready-to-register LF (`auto_lf_<k>`).
    pub lf: SimilarityLf,
    /// Estimated precision at the chosen threshold.
    pub est_precision: f64,
    /// Estimated correct pairs at the chosen threshold.
    pub est_support: usize,
    /// The config id (`lower+ws|space|uniform|jaccard`).
    pub config_id: String,
    /// Attribute the rule joins on (left side; right side may differ for
    /// schema-mismatched tasks, see [`GeneratedLf::right_attribute`]).
    pub attribute: String,
    /// Right-side attribute of the rule.
    pub right_attribute: String,
    /// Chosen +1 threshold.
    pub threshold: f64,
}

/// Attributes present as text in both schemas (id-ish columns excluded).
fn shared_text_attributes(tables: &TablePair) -> Vec<String> {
    tables
        .left
        .schema()
        .names()
        .filter(|n| tables.right.schema().contains(n))
        .filter(|n| {
            let lower = n.to_lowercase();
            lower != "id" && !lower.ends_with("_id")
        })
        .map(str::to_string)
        .collect()
}

/// Generate auto LFs for a task.
pub fn generate_auto_lfs(
    tables: &TablePair,
    candidates: &CandidateSet,
    cfg: &AutoLfConfig,
) -> Vec<GeneratedLf> {
    let _span = panda_obs::span("autolf.generate");
    let mut attr_pairs: Vec<(String, String)> = cfg
        .attributes
        .clone()
        .unwrap_or_else(|| shared_text_attributes(tables))
        .into_iter()
        .map(|a| (a.clone(), a))
        .collect();
    attr_pairs.extend(cfg.attribute_pairs.iter().cloned());
    let enumerated = attr_pairs.len();
    // Seen-set dedupe: duplicates need not be adjacent (e.g. an explicit
    // attribute pair repeating an auto-detected shared attribute).
    let mut seen_pairs: HashSet<(String, String)> = HashSet::new();
    attr_pairs.retain(|(l, r)| {
        tables.left.schema().contains(l)
            && tables.right.schema().contains(r)
            && seen_pairs.insert((l.clone(), r.clone()))
    });
    panda_obs::counter_add("autolf.attr_pairs_enumerated", enumerated as u64);
    panda_obs::counter_add(
        "autolf.attr_pairs_deduped",
        (enumerated - attr_pairs.len()) as u64,
    );
    if attr_pairs.is_empty() || candidates.is_empty() {
        return Vec::new();
    }

    let grid = default_config_grid();

    // ---- Prepare phase (serial): each (table, attribute, pipeline,
    // tokenizer) column is preprocessed/tokenized exactly once, weight
    // vectors are derived once per weighting, and TF-IDF corpus stats are
    // built lazily — only for the tokenizer classes some TF-IDF config in
    // the grid actually uses.
    let prepare_span = panda_obs::span("autolf.prepare");
    let mut cache = TokenCache::new();
    let mut texts: HashMap<(bool, String), Arc<Vec<String>>> = HashMap::new();
    let mut column_texts = |right: bool, attr: &str| -> Arc<Vec<String>> {
        texts
            .entry((right, attr.to_string()))
            .or_insert_with(|| {
                let table: &Table = if right { &tables.right } else { &tables.left };
                Arc::new(table.records().map(|rec| rec.text(attr)).collect())
            })
            .clone()
    };
    let side_name = |right: bool| if right { "right" } else { "left" };

    // Corpus stats per (attribute pair, word|gram): both sides' values of
    // the paired attributes form one corpus. Documents are cleaned with
    // the standard pipeline, independent of the scoring config's pipeline.
    let tfidf_grams: HashSet<bool> = grid
        .iter()
        .filter(|c| c.weighting == Weighting::TfIdf && c.measure.is_set_measure())
        .map(|c| matches!(c.tokenizer, Tokenizer::QGram(_)))
        .collect();
    let std_pipeline = standard_pipeline();
    let mut stats: HashMap<(String, String, bool), Arc<CorpusStats>> = HashMap::new();
    for (la, ra) in &attr_pairs {
        for &grams in &tfidf_grams {
            let tokenizer = if grams {
                Tokenizer::QGram(3)
            } else {
                Tokenizer::Whitespace
            };
            let mut s = CorpusStats::new();
            for (right, attr) in [(false, la), (true, ra)] {
                let col_texts = column_texts(right, attr);
                let col = cache.column_or_build(
                    ColumnKey::new(side_name(right), attr.clone(), &std_pipeline, tokenizer),
                    || col_texts.to_vec(),
                    &std_pipeline,
                    tokenizer,
                );
                col.add_documents(&mut s);
            }
            stats.insert((la.clone(), ra.clone(), grams), Arc::new(s));
        }
    }

    // One grid cell = one (attribute pair, config): everything the
    // scoring phase needs, resolved against the cache up front.
    struct Cell {
        attr: String,
        right_attr: String,
        config: SimilarityConfig,
        corpus: Option<Arc<CorpusStats>>,
        left_col: Arc<PreparedColumn>,
        right_col: Arc<PreparedColumn>,
        left_weights: Option<Arc<Vec<SortedWeights>>>,
        right_weights: Option<Arc<Vec<SortedWeights>>>,
    }
    let mut cells: Vec<Cell> = Vec::with_capacity(attr_pairs.len() * grid.len());
    for (la, ra) in &attr_pairs {
        for config in &grid {
            let grams = matches!(config.tokenizer, Tokenizer::QGram(_));
            let corpus = (config.weighting == Weighting::TfIdf && config.measure.is_set_measure())
                .then(|| stats[&(la.clone(), ra.clone(), grams)].clone());
            // Weighted set measures attach prebuilt per-record weight
            // vectors; everything else scores straight off the column.
            let weighted = matches!(
                config.measure,
                panda_text::Measure::Jaccard | panda_text::Measure::Cosine
            );
            let mut side = |right: bool, attr: &str| {
                let key =
                    ColumnKey::new(side_name(right), attr, &config.preprocess, config.tokenizer);
                let col_texts = column_texts(right, attr);
                let col = cache.column_or_build(
                    key.clone(),
                    || col_texts.to_vec(),
                    &config.preprocess,
                    config.tokenizer,
                );
                let weights = weighted.then(|| {
                    let corpus_id = corpus
                        .as_ref()
                        .map(|_| format!("{la}~{ra}|{}", if grams { "gram" } else { "word" }))
                        .unwrap_or_default();
                    cache.weights_or_build(
                        WeightKey {
                            column: key,
                            weighting: config.weighting.name().to_string(),
                            corpus: corpus_id,
                        },
                        config.weighting,
                        corpus.as_deref(),
                    )
                });
                (col, weights)
            };
            let (left_col, left_weights) = side(false, la);
            let (right_col, right_weights) = side(true, ra);
            cells.push(Cell {
                attr: la.clone(),
                right_attr: ra.clone(),
                config: config.clone(),
                corpus,
                left_col,
                right_col,
                left_weights,
                right_weights,
            });
        }
    }

    drop(prepare_span);
    panda_obs::counter_add("autolf.tfidf_corpora_built", stats.len() as u64);
    panda_obs::counter_add("autolf.grid_cells", cells.len() as u64);

    // ---- Score phase (parallel): every candidate under every grid cell,
    // then the threshold search. Cells are independent; results come back
    // in cell order, so survivors match the serial nested-loop order.
    struct Survivor {
        attr: String,
        right_attr: String,
        config: SimilarityConfig,
        corpus: Option<Arc<CorpusStats>>,
        threshold: f64,
        est_precision: f64,
        est_support: usize,
        joined: Vec<usize>,
    }
    let score_span = panda_obs::span("autolf.score_grid");
    let survivors: Vec<Survivor> = panda_exec::par_map_indexed(&cells, |_, cell| {
        let scored: Vec<(usize, f64)> = candidates
            .iter()
            .map(|(idx, pair)| {
                let li = pair.left.0 as usize;
                let ri = pair.right.0 as usize;
                if cell.left_col.is_blank(li) || cell.right_col.is_blank(ri) {
                    (idx, -1.0) // missing text never joins
                } else {
                    let a = match &cell.left_weights {
                        Some(w) => cell.left_col.record_weighted(li, w),
                        None => cell.left_col.record(li),
                    };
                    let b = match &cell.right_weights {
                        Some(w) => cell.right_col.record_weighted(ri, w),
                        None => cell.right_col.record(ri),
                    };
                    (idx, cell.config.score_prepared(&a, &b))
                }
            })
            .collect();

        // Smallest threshold meeting the precision target = max recall
        // subject to precision. `best` tracks the cell's strongest
        // estimate across the grid for the prune decision record.
        let mut best = (0.0f64, 0usize);
        for &theta in &cfg.thresholds {
            let est = estimate_precision(&scored, candidates, theta);
            if est.est_precision > best.0 {
                best = (est.est_precision, est.est_support);
            }
            if est.est_precision >= cfg.precision_target && est.est_support >= cfg.min_support {
                let joined = scored
                    .iter()
                    .filter(|(_, s)| *s >= theta)
                    .map(|(i, _)| *i)
                    .collect();
                if panda_obs::journal_enabled() {
                    panda_obs::event("autolf.cell")
                        .field("decision", "keep")
                        .field("attr", cell.attr.as_str())
                        .field("right_attr", cell.right_attr.as_str())
                        .field("config", cell.config.id())
                        .field("threshold", theta)
                        .field("est_precision", est.est_precision)
                        .field("est_support", est.est_support)
                        .emit();
                }
                return Some(Survivor {
                    attr: cell.attr.clone(),
                    right_attr: cell.right_attr.clone(),
                    config: cell.config.clone(),
                    corpus: cell.corpus.clone(),
                    threshold: theta,
                    est_precision: est.est_precision,
                    est_support: est.est_support,
                    joined,
                });
            }
        }
        if panda_obs::journal_enabled() {
            // Prune record: the cell's best estimate anywhere on the
            // threshold grid, so a near-miss is distinguishable from a
            // hopeless config when debugging LF coverage.
            panda_obs::event("autolf.cell")
                .field("decision", "prune")
                .field("attr", cell.attr.as_str())
                .field("right_attr", cell.right_attr.as_str())
                .field("config", cell.config.id())
                .field("est_precision", best.0)
                .field("est_support", best.1)
                .emit();
        }
        None
    })
    .into_iter()
    .flatten()
    .collect();
    drop(score_span);
    panda_obs::counter_add("autolf.survivors", survivors.len() as u64);

    // Greedy union selection.
    let select_span = panda_obs::span("autolf.select");
    let inputs: Vec<SelectionInput> = survivors
        .iter()
        .map(|s| SelectionInput {
            joined: s.joined.clone(),
            est_support: s.est_support,
        })
        .collect();
    let mut picked = greedy_select(
        &inputs,
        candidates,
        cfg.precision_target,
        cfg.min_gain,
        cfg.max_lfs,
    );

    // Data programming wants *multiple* voters: a single LF cannot carry a
    // labeling model. When the union-gain criterion leaves fewer than
    // three LFs, pad with the next-best survivors (highest support first,
    // one per distinct (attribute, config) so the padding stays diverse);
    // correlated-but-distinct LFs are fine — the labeling model discounts
    // redundancy.
    if picked.len() < 3 {
        let mut order: Vec<usize> = (0..survivors.len()).collect();
        order.sort_by(|&a, &b| survivors[b].est_support.cmp(&survivors[a].est_support));
        for idx in order {
            if picked.len() >= 3.min(cfg.max_lfs.max(1)) {
                break;
            }
            let dup = picked.iter().any(|&p| {
                survivors[p].attr == survivors[idx].attr
                    && survivors[p].config.id() == survivors[idx].config.id()
            });
            if !dup && !picked.contains(&idx) {
                picked.push(idx);
            }
        }
    }

    drop(select_span);
    panda_obs::counter_add("autolf.emitted", picked.len() as u64);
    if panda_obs::journal_enabled() {
        for (k, &idx) in picked.iter().enumerate() {
            let s = &survivors[idx];
            panda_obs::event("autolf.emit")
                .field("name", format!("auto_lf_{k}"))
                .field("attr", s.attr.as_str())
                .field("right_attr", s.right_attr.as_str())
                .field("config", s.config.id())
                .field("threshold", s.threshold)
                .field("est_precision", s.est_precision)
                .field("est_support", s.est_support)
                .emit();
        }
    }

    picked
        .into_iter()
        .enumerate()
        .map(|(k, idx)| {
            let s = &survivors[idx];
            let lower = if cfg.lower_ratio > 0.0 {
                s.threshold * cfg.lower_ratio
            } else {
                -1.0
            };
            // `> upper` vs `≥ theta`: nudge upper below theta so pairs at
            // exactly the chosen threshold still vote +1.
            let mut lf = SimilarityLf::new(
                format!("auto_lf_{k}"),
                s.attr.clone(),
                s.config.clone(),
                s.threshold - 1e-9,
                lower,
            )
            .with_attrs(s.attr.clone(), s.right_attr.clone())
            .with_provenance(LfProvenance::Auto);
            if let Some(corpus) = &s.corpus {
                lf = lf.with_corpus(corpus.clone());
            }
            GeneratedLf {
                lf,
                est_precision: s.est_precision,
                est_support: s.est_support,
                config_id: s.config.id(),
                attribute: s.attr.clone(),
                right_attribute: s.right_attr.clone(),
                threshold: s.threshold,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use panda_datasets::{generate, DatasetFamily, GeneratorConfig};
    use panda_embed::{Blocker, EmbeddingLshBlocker};
    use panda_lf::{LabelMatrix, LabelingFunction, LfRegistry};

    fn abt_task() -> (TablePair, CandidateSet) {
        let tables = generate(
            DatasetFamily::AbtBuy,
            &GeneratorConfig::new(77).with_entities(120),
        );
        let cands = EmbeddingLshBlocker::new(7).candidates(&tables);
        (tables, cands)
    }

    #[test]
    fn generates_lfs_on_abt_buy() {
        let (tables, cands) = abt_task();
        let lfs = generate_auto_lfs(&tables, &cands, &AutoLfConfig::default());
        assert!(!lfs.is_empty(), "should find at least one viable config");
        assert!(lfs.len() <= 6);
        for (k, g) in lfs.iter().enumerate() {
            assert_eq!(g.lf.name(), format!("auto_lf_{k}"));
            assert!(g.est_precision >= 0.85);
            assert!(g.est_support >= 5);
            assert_eq!(g.lf.provenance(), LfProvenance::Auto);
        }
    }

    #[test]
    fn estimated_precision_tracks_true_precision() {
        let (tables, cands) = abt_task();
        let lfs = generate_auto_lfs(&tables, &cands, &AutoLfConfig::default());
        let gold = tables.gold.as_ref().unwrap();
        for g in &lfs {
            // True precision of the +1 votes of this LF.
            let mut tp = 0usize;
            let mut pos = 0usize;
            for (_, pair) in cands.iter() {
                let p = tables.pair_ref(pair).unwrap();
                if g.lf.label(&p) == panda_lf::Label::Match {
                    pos += 1;
                    if gold.contains(&pair) {
                        tp += 1;
                    }
                }
            }
            assert!(pos > 0);
            let true_p = tp as f64 / pos as f64;
            assert!(
                true_p >= g.est_precision - 0.25,
                "estimator shouldn't wildly overpromise: est {:.2} true {:.2} ({})",
                g.est_precision,
                true_p,
                g.config_id
            );
        }
    }

    #[test]
    fn auto_lfs_power_a_useful_label_model() {
        use panda_model::{LabelModel, PandaModel};
        let (tables, cands) = abt_task();
        let lfs = generate_auto_lfs(&tables, &cands, &AutoLfConfig::default());
        let mut reg = LfRegistry::new();
        for g in lfs {
            reg.upsert(Arc::new(g.lf));
        }
        let mut matrix = LabelMatrix::new();
        let report = matrix.apply(&reg, &tables, &cands);
        assert!(report.failed.is_empty());
        let gamma = PandaModel::new().fit_predict(&matrix, Some(&cands));
        let gold = panda_eval::gold_vector(&tables, &cands);
        let m = panda_eval::metrics::metrics_at_half(&gamma, &gold);
        assert!(
            m.f1 > 0.5,
            "auto LFs alone should reach F1 > 0.5 on abt-buy-like data, got {:.3}",
            m.f1
        );
    }

    #[test]
    fn respects_attribute_override_and_empty_candidates() {
        let (tables, _) = abt_task();
        let empty = CandidateSet::new();
        let lfs = generate_auto_lfs(&tables, &empty, &AutoLfConfig::default());
        assert!(lfs.is_empty());

        let cfg = AutoLfConfig {
            attributes: Some(vec!["name".to_string()]),
            ..AutoLfConfig::default()
        };
        let cands = EmbeddingLshBlocker::new(7).candidates(&tables);
        let lfs = generate_auto_lfs(&tables, &cands, &cfg);
        for g in &lfs {
            assert_eq!(g.attribute, "name");
        }
    }
}

#[cfg(test)]
mod pair_tests {
    use super::*;
    use panda_datasets::{generate, DatasetFamily, GeneratorConfig};
    use panda_embed::{Blocker, EmbeddingLshBlocker};
    use panda_lf::LabelingFunction;

    /// Walmart-Amazon has NO shared text attribute, so auto-detection
    /// yields nothing — attribute pairs unlock the task.
    #[test]
    fn attribute_pairs_enable_schema_mismatched_tasks() {
        let tables = generate(
            DatasetFamily::WalmartAmazon,
            &GeneratorConfig::new(55).with_entities(120),
        );
        let cands = EmbeddingLshBlocker::new(55).candidates(&tables);

        let without = generate_auto_lfs(&tables, &cands, &AutoLfConfig::default());
        // Only "price" is shared (numeric; similarity configs on its text
        // rendering rarely clear the precision bar) — the interesting
        // signal needs the pairs.
        let with_pairs = generate_auto_lfs(
            &tables,
            &cands,
            &AutoLfConfig {
                attribute_pairs: vec![
                    ("title".into(), "name".into()),
                    ("modelno".into(), "model".into()),
                ],
                ..AutoLfConfig::default()
            },
        );
        // Without pairs only the shared "price" column is joinable; with
        // pairs the generator finds cross-attribute rules.
        assert!(without.iter().all(|g| g.attribute == g.right_attribute));
        assert!(
            with_pairs.iter().any(|g| g.attribute != g.right_attribute),
            "pairs produce cross-attribute rules"
        );
        // The emitted LF actually reads both attributes.
        let g = with_pairs
            .iter()
            .find(|g| g.attribute == "title")
            .expect("a title/name rule survives");
        let pair = cands.iter().next().unwrap().1;
        let _ = g.lf.label(&tables.pair_ref(pair).unwrap());
    }
}
