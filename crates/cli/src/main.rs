//! `panda` — the command-line face of the system.
//!
//! ```text
//! panda generate --family abt-buy --entities 300 --seed 1 --out data/
//! panda match --left data/abt-buy_left.csv --right data/abt-buy_right.csv \
//!             [--gold data/abt-buy_gold.csv] [--model panda|snorkel|majority] \
//!             [--threshold 0.5] [--no-auto-lfs] [--out matches.csv]
//! panda serve --addr 127.0.0.1:7700
//! panda families
//! ```
//!
//! `match` runs the full weakly-supervised pipeline (blocking → auto-LF
//! discovery → labeling model) on two CSV tables and writes the predicted
//! match pairs; with `--gold` it also scores against ground truth.

mod args;
mod commands;
mod report;

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = argv.split_first() else {
        eprintln!("{}", commands::USAGE);
        return ExitCode::FAILURE;
    };
    let result = match command.as_str() {
        "generate" => commands::generate(rest),
        "match" => commands::run_match(rest),
        "serve" => commands::serve(rest),
        "report" => report::run_report(rest),
        "promcheck" => commands::promcheck(rest),
        "families" => commands::families(),
        "help" | "--help" | "-h" => {
            println!("{}", commands::USAGE);
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n\n{}", commands::USAGE)),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}
